//! Plain-text report formatting: the tables the `repro` binary prints and
//! EXPERIMENTS.md embeds.

/// Geometric mean of a slice of positive values ("average improvement"
/// figures in the paper are computed over the eight applications).
///
/// Returns 0.0 for an empty slice or when any value is non-positive: a
/// degenerate run (zero cycles, empty column) must surface as an obviously
/// wrong summary value, not abort a whole batch mid-report.
///
/// Non-finite values (NaN / infinity) mark *failed* cells — a panicked or
/// timed-out run in a Result-first batch — and are skipped so the mean
/// summarizes the cells that completed. A column where *every* value is
/// non-finite yields NaN, which renders as an error marker.
///
/// ```
/// use grit_metrics::geomean;
/// assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
/// assert_eq!(geomean(&[1.0, 0.0]), 0.0);
/// assert!((geomean(&[1.0, f64::NAN, 4.0]) - 2.0).abs() < 1e-12);
/// assert!(geomean(&[f64::NAN]).is_nan());
/// ```
pub fn geomean(values: &[f64]) -> f64 {
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if finite.is_empty() {
        return if values.is_empty() { 0.0 } else { f64::NAN };
    }
    if finite.iter().any(|&v| v <= 0.0) {
        return 0.0;
    }
    let acc: f64 = finite.iter().map(|&v| v.ln()).sum();
    (acc / finite.len() as f64).exp()
}

/// Normalizes each value to a baseline: `baseline / value` (cycle counts
/// become speedups, as every figure in the paper is plotted).
///
/// A zero value (a run that never completed) normalizes to 0.0 instead of
/// dividing by zero, keeping report generation total.
pub fn normalize_to(baseline: u64, values: &[u64]) -> Vec<f64> {
    values
        .iter()
        .map(|&v| {
            if v == 0 {
                0.0
            } else {
                baseline as f64 / v as f64
            }
        })
        .collect()
}

/// A labelled numeric table rendered to aligned text, Markdown or CSV.
///
/// ```
/// use grit_metrics::Table;
/// let mut t = Table::new("Fig 1", vec!["OT".into(), "AC".into()]);
/// t.push_row("BFS", vec![1.0, 1.3]);
/// let text = t.to_text();
/// assert!(text.contains("BFS"));
/// assert!(t.to_csv().starts_with("app,OT,AC"));
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Table {
    title: String,
    columns: Vec<String>,
    rows: Vec<(String, Vec<f64>)>,
}

impl Table {
    /// A table titled `title` with the given value-column headers.
    pub fn new<S: Into<String>>(title: S, columns: Vec<String>) -> Self {
        Table {
            title: title.into(),
            columns,
            rows: Vec::new(),
        }
    }

    /// Appends a labelled row.
    ///
    /// # Panics
    ///
    /// Panics if the value count does not match the column count.
    pub fn push_row<S: Into<String>>(&mut self, label: S, values: Vec<f64>) {
        assert_eq!(
            values.len(),
            self.columns.len(),
            "row has {} values for {} columns",
            values.len(),
            self.columns.len()
        );
        self.rows.push((label.into(), values));
    }

    /// Appends a geometric-mean summary row over all current rows. A
    /// column containing any non-positive value summarizes to 0.0 (see
    /// [`geomean`]).
    pub fn push_geomean_row(&mut self) {
        let mut means = Vec::with_capacity(self.columns.len());
        for c in 0..self.columns.len() {
            let col: Vec<f64> = self.rows.iter().map(|(_, v)| v[c]).collect();
            means.push(geomean(&col));
        }
        self.rows.push(("GEOMEAN".into(), means));
    }

    /// Table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Row labels and values.
    pub fn rows(&self) -> &[(String, Vec<f64>)] {
        &self.rows
    }

    /// Column headers.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Finds a cell by row label and column header.
    pub fn cell(&self, row: &str, col: &str) -> Option<f64> {
        let c = self.columns.iter().position(|x| x == col)?;
        let r = self.rows.iter().find(|(label, _)| label == row)?;
        r.1.get(c).copied()
    }

    /// How a non-finite (failed-cell) value renders in every output
    /// format.
    pub const ERROR_MARKER: &'static str = "err!";

    /// Renders as aligned monospace text with a title line.
    pub fn to_text(&self) -> String {
        let label_w = self
            .rows
            .iter()
            .map(|(l, _)| l.len())
            .chain(std::iter::once(3))
            .max()
            .unwrap_or(3);
        let col_w: Vec<usize> = self.columns.iter().map(|c| c.len().max(8)).collect();
        let mut out = format!("== {} ==\n", self.title);
        out.push_str(&format!("{:<label_w$}", ""));
        for (c, w) in self.columns.iter().zip(&col_w) {
            out.push_str(&format!("  {c:>w$}"));
        }
        out.push('\n');
        for (label, values) in &self.rows {
            out.push_str(&format!("{label:<label_w$}"));
            for (v, w) in values.iter().zip(&col_w) {
                if v.is_finite() {
                    out.push_str(&format!("  {v:>w$.3}"));
                } else {
                    out.push_str(&format!("  {:>w$}", Table::ERROR_MARKER));
                }
            }
            out.push('\n');
        }
        out
    }

    /// Renders as CSV with an `app` label column.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("app");
        for c in &self.columns {
            out.push(',');
            out.push_str(c);
        }
        out.push('\n');
        for (label, values) in &self.rows {
            out.push_str(label);
            for v in values {
                if v.is_finite() {
                    out.push_str(&format!(",{v:.6}"));
                } else {
                    out.push(',');
                    out.push_str(Table::ERROR_MARKER);
                }
            }
            out.push('\n');
        }
        out
    }

    /// Renders as a GitHub Markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::from("| app |");
        for c in &self.columns {
            out.push_str(&format!(" {c} |"));
        }
        out.push_str("\n|---|");
        for _ in &self.columns {
            out.push_str("---|");
        }
        out.push('\n');
        for (label, values) in &self.rows {
            out.push_str(&format!("| {label} |"));
            for v in values {
                if v.is_finite() {
                    out.push_str(&format!(" {v:.3} |"));
                } else {
                    out.push_str(&format!(" {} |", Table::ERROR_MARKER));
                }
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert_eq!(geomean(&[]), 0.0);
        assert!((geomean(&[2.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 8.0]) - 2.828_427).abs() < 1e-5);
    }

    #[test]
    fn geomean_degenerate_inputs_yield_zero() {
        assert_eq!(geomean(&[1.0, 0.0]), 0.0);
        assert_eq!(geomean(&[2.0, -1.0]), 0.0);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn normalize_makes_speedups() {
        let v = normalize_to(100, &[100, 50, 200]);
        assert_eq!(v, vec![1.0, 2.0, 0.5]);
    }

    #[test]
    fn normalize_zero_value_yields_zero_not_infinity() {
        assert_eq!(normalize_to(100, &[0, 50]), vec![0.0, 2.0]);
        assert_eq!(normalize_to(0, &[10]), vec![0.0]);
        assert_eq!(normalize_to(100, &[]), Vec::<f64>::new());
    }

    #[test]
    fn geomean_row_with_zero_column_does_not_panic() {
        let mut t = Table::new("T", vec!["a".into()]);
        t.push_row("x", vec![0.0]);
        t.push_geomean_row();
        assert_eq!(t.cell("GEOMEAN", "a"), Some(0.0));
    }

    #[test]
    fn table_round_trip() {
        let mut t = Table::new("T", vec!["a".into(), "b".into()]);
        t.push_row("x", vec![1.0, 2.0]);
        t.push_row("y", vec![4.0, 8.0]);
        t.push_geomean_row();
        assert_eq!(t.cell("x", "b"), Some(2.0));
        assert_eq!(t.cell("GEOMEAN", "a"), Some(2.0));
        assert_eq!(t.cell("missing", "a"), None);
        assert_eq!(t.cell("x", "missing"), None);
        assert!(t.to_text().contains("== T =="));
        assert!(t.to_markdown().contains("| x | 1.000 | 2.000 |"));
        let csv = t.to_csv();
        assert!(csv.lines().count() == 4);
    }

    #[test]
    fn failed_cells_render_as_error_marker() {
        let mut t = Table::new("T", vec!["a".into(), "b".into()]);
        t.push_row("ok", vec![1.5, 2.0]);
        t.push_row("bad", vec![f64::NAN, 4.0]);
        t.push_geomean_row();
        // Geomean skips the NaN cell but keeps the finite one.
        assert!((t.cell("GEOMEAN", "a").unwrap() - 1.5).abs() < 1e-12);
        assert!((t.cell("GEOMEAN", "b").unwrap() - 8.0f64.sqrt()).abs() < 1e-12);
        assert!(t.to_text().contains(Table::ERROR_MARKER));
        assert!(t.to_csv().contains(",err!"));
        assert!(t.to_markdown().contains("| err! |"));
        // Finite cells are untouched.
        assert!(t.to_text().contains("1.500"));
    }

    #[test]
    #[should_panic(expected = "columns")]
    fn row_arity_checked() {
        let mut t = Table::new("T", vec!["a".into()]);
        t.push_row("x", vec![1.0, 2.0]);
    }
}
