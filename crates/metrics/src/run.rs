//! Whole-run metrics aggregation.

use std::collections::HashMap;

use grit_sim::Scheme;

use crate::breakdown::LatencyBreakdown;

/// GPU page-fault and placement-event counters (Fig. 18 and §VI-A).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct FaultCounters {
    /// Local page faults sent to the UVM driver.
    pub local_faults: u64,
    /// Page protection faults (writes to read-only replicas).
    pub protection_faults: u64,
    /// Pages migrated between memories.
    pub migrations: u64,
    /// Page replicas created.
    pub duplications: u64,
    /// Write-collapse events (replica invalidation storms).
    pub collapses: u64,
    /// Pages evicted due to capacity (oversubscription).
    pub evictions: u64,
    /// Placement-scheme changes applied (GRIT / Griffin activity).
    pub scheme_changes: u64,
}

impl FaultCounters {
    /// Total GPU page faults: local + protection (the Fig. 18 metric).
    pub fn total_faults(&self) -> u64 {
        self.local_faults + self.protection_faults
    }
}

/// Distribution of placement schemes over L2-TLB-missing accesses
/// (Fig. 19): which scheme governed the page at the time of each miss.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SchemeMix {
    /// Misses to pages governed by on-touch migration.
    pub on_touch: u64,
    /// Misses to pages governed by access-counter migration.
    pub access_counter: u64,
    /// Misses to pages governed by duplication.
    pub duplication: u64,
}

impl SchemeMix {
    /// Records one L2-TLB-missing access under `scheme`.
    pub fn record(&mut self, scheme: Scheme) {
        match scheme {
            Scheme::OnTouch => self.on_touch += 1,
            Scheme::AccessCounter => self.access_counter += 1,
            Scheme::Duplication => self.duplication += 1,
        }
    }

    /// Total recorded misses.
    pub fn total(&self) -> u64 {
        self.on_touch + self.access_counter + self.duplication
    }

    /// `(on_touch, access_counter, duplication)` fractions.
    pub fn fractions(&self) -> (f64, f64, f64) {
        let t = self.total();
        if t == 0 {
            return (0.0, 0.0, 0.0);
        }
        (
            self.on_touch as f64 / t as f64,
            self.access_counter as f64 / t as f64,
            self.duplication as f64 / t as f64,
        )
    }
}

/// Everything one simulation run produces.
#[derive(Clone, Debug, Default)]
pub struct RunMetrics {
    /// Simulated execution time (max over GPUs of their finish cycle).
    pub total_cycles: u64,
    /// Total accesses replayed.
    pub accesses: u64,
    /// Accesses satisfied from the local memory.
    pub local_accesses: u64,
    /// Accesses that crossed NVLink to a peer.
    pub remote_accesses: u64,
    /// Six-way page-handling latency attribution (Fig. 3).
    pub breakdown: LatencyBreakdown,
    /// Fault/event counters (Fig. 18).
    pub faults: FaultCounters,
    /// Scheme usage at L2 TLB misses (Fig. 19).
    pub scheme_mix: SchemeMix,
    /// NVLink payload bytes.
    pub nvlink_bytes: u64,
    /// PCIe payload bytes.
    pub pcie_bytes: u64,
    /// Peak page-oversubscription ratio observed: resident+evicted demand
    /// over capacity, max across GPUs (GPS comparison, §VI-C2).
    pub oversubscription_rate: f64,
    /// Free-form auxiliary series keyed by name (figure-specific data).
    pub aux: HashMap<String, Vec<f64>>,
}

impl RunMetrics {
    /// Speedup of this run relative to a baseline runtime.
    ///
    /// # Panics
    ///
    /// Panics if this run has zero cycles.
    pub fn speedup_vs(&self, baseline_cycles: u64) -> f64 {
        assert!(self.total_cycles > 0, "run produced no cycles");
        baseline_cycles as f64 / self.total_cycles as f64
    }

    /// Fraction of accesses that were remote.
    pub fn remote_frac(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.remote_accesses as f64 / self.accesses as f64
        }
    }

    /// Stores an auxiliary named series.
    pub fn set_aux<S: Into<String>>(&mut self, key: S, values: Vec<f64>) {
        self.aux.insert(key.into(), values);
    }

    /// Fetches an auxiliary named series.
    pub fn aux(&self, key: &str) -> Option<&[f64]> {
        self.aux.get(key).map(Vec::as_slice)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_totals() {
        let f = FaultCounters {
            local_faults: 3,
            protection_faults: 4,
            ..Default::default()
        };
        assert_eq!(f.total_faults(), 7);
    }

    #[test]
    fn scheme_mix_fractions() {
        let mut m = SchemeMix::default();
        m.record(Scheme::OnTouch);
        m.record(Scheme::OnTouch);
        m.record(Scheme::Duplication);
        m.record(Scheme::AccessCounter);
        let (ot, ac, d) = m.fractions();
        assert!((ot - 0.5).abs() < 1e-12);
        assert!((ac - 0.25).abs() < 1e-12);
        assert!((d - 0.25).abs() < 1e-12);
        assert_eq!(m.total(), 4);
    }

    #[test]
    fn empty_scheme_mix_is_zero() {
        assert_eq!(SchemeMix::default().fractions(), (0.0, 0.0, 0.0));
    }

    #[test]
    fn speedup_and_remote_frac() {
        let m = RunMetrics {
            total_cycles: 50,
            accesses: 10,
            remote_accesses: 4,
            ..Default::default()
        };
        assert!((m.speedup_vs(100) - 2.0).abs() < 1e-12);
        assert!((m.remote_frac() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn aux_round_trip() {
        let mut m = RunMetrics::default();
        m.set_aux("per_gpu", vec![1.0, 2.0]);
        assert_eq!(m.aux("per_gpu"), Some(&[1.0, 2.0][..]));
        assert_eq!(m.aux("missing"), None);
    }

    #[test]
    #[should_panic(expected = "no cycles")]
    fn speedup_requires_cycles() {
        let _ = RunMetrics::default().speedup_vs(10);
    }
}
