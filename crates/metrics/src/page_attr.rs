//! Per-page attribute tracking: private vs shared, read vs read-write
//! (paper §IV-B, Figs. 4 and 9).

use grit_sim::{AccessKind, FxHashMap, GpuId, GpuSet, PageId};

#[derive(Clone, Copy, Debug, Default)]
struct PageRecord {
    accessors: GpuSet,
    written: bool,
    accesses: u64,
}

/// Aggregated attribute percentages, the quantities plotted in Figs. 4 & 9.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct PageAttrSummary {
    /// Pages touched at all.
    pub total_pages: u64,
    /// Pages accessed by exactly one GPU over the whole run.
    pub private_pages: u64,
    /// Pages accessed by more than one GPU.
    pub shared_pages: u64,
    /// Accesses that went to private pages.
    pub accesses_to_private: u64,
    /// Accesses that went to shared pages.
    pub accesses_to_shared: u64,
    /// Pages never written.
    pub read_pages: u64,
    /// Pages written at least once.
    pub read_write_pages: u64,
    /// Accesses that went to read-only pages.
    pub accesses_to_read: u64,
    /// Accesses that went to read-write pages.
    pub accesses_to_read_write: u64,
    /// Pages that are both shared and read-write (the hard class of §VI-A).
    pub shared_read_write_pages: u64,
}

impl PageAttrSummary {
    /// Fraction of pages that are shared.
    pub fn shared_page_frac(&self) -> f64 {
        frac(self.shared_pages, self.total_pages)
    }

    /// Fraction of accesses going to shared pages.
    pub fn shared_access_frac(&self) -> f64 {
        frac(
            self.accesses_to_shared,
            self.accesses_to_private + self.accesses_to_shared,
        )
    }

    /// Fraction of pages that are read-write.
    pub fn read_write_page_frac(&self) -> f64 {
        frac(self.read_write_pages, self.total_pages)
    }

    /// Fraction of accesses going to read-write pages.
    pub fn read_write_access_frac(&self) -> f64 {
        frac(
            self.accesses_to_read_write,
            self.accesses_to_read + self.accesses_to_read_write,
        )
    }

    /// Fraction of pages that are shared *and* read-write.
    pub fn shared_read_write_frac(&self) -> f64 {
        frac(self.shared_read_write_pages, self.total_pages)
    }
}

fn frac(n: u64, d: u64) -> f64 {
    if d == 0 {
        0.0
    } else {
        n as f64 / d as f64
    }
}

/// Tracks whole-run page attributes.
///
/// Definitions follow the paper exactly: a *private page* is accessed by
/// one GPU during the entire execution; a *read page* never sees a write.
///
/// ```
/// use grit_metrics::PageAttrTracker;
/// use grit_sim::{AccessKind, GpuId, PageId};
///
/// let mut t = PageAttrTracker::new();
/// t.record(GpuId::new(0), PageId(1), AccessKind::Read);
/// t.record(GpuId::new(1), PageId(1), AccessKind::Write);
/// t.record(GpuId::new(0), PageId(2), AccessKind::Read);
/// let s = t.summary();
/// assert_eq!(s.shared_pages, 1);
/// assert_eq!(s.private_pages, 1);
/// assert_eq!(s.read_write_pages, 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct PageAttrTracker {
    pages: FxHashMap<PageId, PageRecord>,
}

impl PageAttrTracker {
    /// An empty tracker.
    pub fn new() -> Self {
        PageAttrTracker::default()
    }

    /// Records one access.
    pub fn record(&mut self, gpu: GpuId, vpn: PageId, kind: AccessKind) {
        let rec = self.pages.entry(vpn).or_default();
        rec.accessors.insert(gpu);
        rec.written |= kind.is_write();
        rec.accesses += 1;
    }

    /// Whether the page has been touched by more than one GPU so far.
    pub fn is_shared(&self, vpn: PageId) -> bool {
        self.pages.get(&vpn).is_some_and(|r| r.accessors.len() > 1)
    }

    /// Whether the page has been written so far.
    pub fn is_written(&self, vpn: PageId) -> bool {
        self.pages.get(&vpn).is_some_and(|r| r.written)
    }

    /// Number of distinct pages touched.
    pub fn pages_touched(&self) -> usize {
        self.pages.len()
    }

    /// The most-accessed page with at least `min_sharers` distinct GPU
    /// accessors — how the Fig. 5/10 drivers pick "a certain page" to
    /// track. Deterministic: ties break toward the lowest VPN.
    pub fn hottest(&self, min_sharers: usize) -> Option<PageId> {
        self.pages
            .iter()
            .filter(|(_, r)| r.accessors.len() >= min_sharers)
            .max_by_key(|(vpn, r)| (r.accesses, std::cmp::Reverse(vpn.vpn())))
            .map(|(vpn, _)| *vpn)
    }

    /// Like [`PageAttrTracker::hottest`] but restricted to pages with at
    /// least one write (Fig. 10 tracks a read-write page).
    pub fn hottest_written(&self, min_sharers: usize) -> Option<PageId> {
        self.pages
            .iter()
            .filter(|(_, r)| r.accessors.len() >= min_sharers && r.written)
            .max_by_key(|(vpn, r)| (r.accesses, std::cmp::Reverse(vpn.vpn())))
            .map(|(vpn, _)| *vpn)
    }

    /// Iterates `(page, sharer count, written, accesses)` for every page
    /// touched — profile data for oracle-style placement.
    pub fn iter_pages(&self) -> impl Iterator<Item = (PageId, usize, bool, u64)> + '_ {
        self.pages
            .iter()
            .map(|(vpn, r)| (*vpn, r.accessors.len(), r.written, r.accesses))
    }

    /// Exports every page record as `(vpn, accessor bitmask, written,
    /// accesses)`, sorted by VPN — a stable wire form for on-disk result
    /// stores. [`PageAttrTracker::from_exported`] inverts it exactly.
    pub fn export_pages(&self) -> Vec<(u64, u16, bool, u64)> {
        let mut rows: Vec<_> = self
            .pages
            .iter()
            .map(|(vpn, r)| (vpn.vpn(), r.accessors.bits(), r.written, r.accesses))
            .collect();
        rows.sort_unstable_by_key(|&(vpn, ..)| vpn);
        rows
    }

    /// Rebuilds a tracker from [`PageAttrTracker::export_pages`] rows.
    pub fn from_exported(rows: &[(u64, u16, bool, u64)]) -> Self {
        let mut t = PageAttrTracker::new();
        for &(vpn, bits, written, accesses) in rows {
            t.pages.insert(
                PageId(vpn),
                PageRecord {
                    accessors: GpuSet::from_bits(bits),
                    written,
                    accesses,
                },
            );
        }
        t
    }

    /// Aggregates the whole-run summary.
    pub fn summary(&self) -> PageAttrSummary {
        let mut s = PageAttrSummary::default();
        for rec in self.pages.values() {
            s.total_pages += 1;
            let shared = rec.accessors.len() > 1;
            if shared {
                s.shared_pages += 1;
                s.accesses_to_shared += rec.accesses;
            } else {
                s.private_pages += 1;
                s.accesses_to_private += rec.accesses;
            }
            if rec.written {
                s.read_write_pages += 1;
                s.accesses_to_read_write += rec.accesses;
                if shared {
                    s.shared_read_write_pages += 1;
                }
            } else {
                s.read_pages += 1;
                s.accesses_to_read += rec.accesses;
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(i: u8) -> GpuId {
        GpuId::new(i)
    }

    #[test]
    fn empty_summary_is_zero() {
        let s = PageAttrTracker::new().summary();
        assert_eq!(s.total_pages, 0);
        assert_eq!(s.shared_page_frac(), 0.0);
        assert_eq!(s.read_write_access_frac(), 0.0);
    }

    #[test]
    fn private_vs_shared_classification() {
        let mut t = PageAttrTracker::new();
        for _ in 0..10 {
            t.record(g(0), PageId(1), AccessKind::Read);
        }
        t.record(g(0), PageId(2), AccessKind::Read);
        t.record(g(1), PageId(2), AccessKind::Read);
        let s = t.summary();
        assert_eq!(s.private_pages, 1);
        assert_eq!(s.shared_pages, 1);
        assert_eq!(s.accesses_to_private, 10);
        assert_eq!(s.accesses_to_shared, 2);
        assert!((s.shared_page_frac() - 0.5).abs() < 1e-12);
        assert!((s.shared_access_frac() - 2.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn read_write_classification_counts_all_accesses() {
        let mut t = PageAttrTracker::new();
        t.record(g(0), PageId(1), AccessKind::Read);
        t.record(g(0), PageId(1), AccessKind::Write);
        t.record(g(0), PageId(1), AccessKind::Read);
        let s = t.summary();
        assert_eq!(s.read_write_pages, 1);
        assert_eq!(s.accesses_to_read_write, 3);
        assert!(t.is_written(PageId(1)));
    }

    #[test]
    fn shared_read_write_intersection() {
        let mut t = PageAttrTracker::new();
        t.record(g(0), PageId(1), AccessKind::Write);
        t.record(g(1), PageId(1), AccessKind::Read);
        t.record(g(0), PageId(2), AccessKind::Write); // private RW
        t.record(g(0), PageId(3), AccessKind::Read);
        t.record(g(1), PageId(3), AccessKind::Read); // shared read
        let s = t.summary();
        assert_eq!(s.shared_read_write_pages, 1);
        assert!((s.shared_read_write_frac() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn export_import_round_trip() {
        let mut t = PageAttrTracker::new();
        t.record(g(0), PageId(7), AccessKind::Write);
        t.record(g(1), PageId(7), AccessKind::Read);
        t.record(g(2), PageId(3), AccessKind::Read);
        t.record(g(2), PageId(3), AccessKind::Read);
        let rows = t.export_pages();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0, 3); // sorted by vpn
        let back = PageAttrTracker::from_exported(&rows);
        assert_eq!(back.summary(), t.summary());
        assert_eq!(back.export_pages(), rows);
        assert!(back.is_shared(PageId(7)));
        assert!(back.is_written(PageId(7)));
        assert_eq!(back.hottest(1), t.hottest(1));
    }

    #[test]
    fn incremental_queries() {
        let mut t = PageAttrTracker::new();
        t.record(g(0), PageId(9), AccessKind::Read);
        assert!(!t.is_shared(PageId(9)));
        t.record(g(2), PageId(9), AccessKind::Read);
        assert!(t.is_shared(PageId(9)));
        assert_eq!(t.pages_touched(), 1);
    }
}
