//! Offline shim for the subset of the [criterion](https://docs.rs/criterion)
//! API this workspace's benches use.
//!
//! The build container has no crate-registry access, so the real criterion
//! crate cannot be fetched. This shim keeps `cargo bench` working with the
//! same bench sources: it times each `bench_function` for real (warm-up,
//! then `sample_size` samples with a calibrated iteration count) and prints
//! a `min / mean / max` per-iteration summary. There is no statistical
//! analysis, plotting, or baseline comparison.

use std::time::{Duration, Instant};

/// Re-export-compatible opaque-value barrier.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver, handed to every target function.
#[derive(Clone, Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Disables plot generation (a no-op here; kept for API parity).
    pub fn without_plots(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 20,
            warm_up_time: Duration::from_millis(500),
            measurement_time: Duration::from_secs(2),
        }
    }

    /// Benchmarks a function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut g = self.benchmark_group(String::new());
        g.bench_function(id, f);
        g.finish();
        self
    }
}

/// A named set of benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Time spent running the body before measurement starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Target total measurement time across all samples.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs and reports one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = if self.name.is_empty() {
            id
        } else {
            format!("{}/{}", self.name, id)
        };

        // Warm up: keep invoking the body until the warm-up budget is spent,
        // and use the observed cost to calibrate iterations per sample.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            let mut b = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample = ((budget / per_iter.max(1e-9)) as u64).clamp(1, 10_000_000);

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters: iters_per_sample,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            samples.push(b.elapsed.as_secs_f64() / iters_per_sample as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite sample times"));
        let min = samples[0];
        let max = samples[samples.len() - 1];
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        println!(
            "{label:<48} time: [{} {} {}]  ({} samples x {} iters)",
            fmt_time(min),
            fmt_time(mean),
            fmt_time(max),
            samples.len(),
            iters_per_sample
        );
        self
    }

    /// Ends the group (reports are printed eagerly; kept for API parity).
    pub fn finish(&mut self) {}
}

/// Times the closure handed to [`Bencher::iter`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `routine` for this sample's iteration count, timing only the
    /// routine itself (setup code before `iter` is excluded).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} us", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{:.3} s", secs)
    }
}

/// Declares a bench group entry point, mirroring criterion's two forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Arguments (e.g. cargo's `--bench` flag or name filters) are
            // accepted and ignored; every benchmark in the binary runs.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_reports_and_runs_body() {
        let mut c = Criterion::default().without_plots();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        g.warm_up_time(Duration::from_millis(1));
        g.measurement_time(Duration::from_millis(5));
        let mut runs = 0u64;
        g.bench_function("counter", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        g.finish();
        assert!(runs > 0);
    }

    #[test]
    fn time_formatting_covers_magnitudes() {
        assert!(fmt_time(2e-9).ends_with("ns"));
        assert!(fmt_time(2e-6).ends_with("us"));
        assert!(fmt_time(2e-3).ends_with("ms"));
        assert!(fmt_time(2.0).ends_with("s"));
    }
}
