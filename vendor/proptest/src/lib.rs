//! Offline shim for the subset of the [proptest](https://docs.rs/proptest)
//! API this workspace uses.
//!
//! The container this repository builds in has no network access to a crate
//! registry, so the real proptest crate cannot be fetched. This shim keeps
//! the property tests compiling and *running* with the same source text:
//! strategies generate deterministic pseudo-random values, `proptest!`
//! expands to a loop over `cases` generated inputs, and `prop_assert*` /
//! `prop_assume!` report failures through [`TestCaseError`].
//!
//! Differences from upstream, by design:
//! * no shrinking — a failure reports the exact generated inputs instead;
//! * generation is deterministic per test (seeded from the test name), so
//!   failures always reproduce;
//! * only the strategy combinators used by this workspace are implemented
//!   (ranges, tuples, `Just`, `prop_map`, `prop_oneof!`, `any`,
//!   `prop::collection::vec`).

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic generator backing all strategies (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded from an arbitrary string (the test name), so each
    /// property test sees a distinct but fully reproducible sequence.
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name bytes.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform usize in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }
}

/// Why a single generated case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The property is violated for these inputs.
    Fail(String),
    /// The inputs do not satisfy a `prop_assume!`; the case is skipped.
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given reason.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// A rejection (skipped case) with the given reason.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "test case failed: {r}"),
            TestCaseError::Reject(r) => write!(f, "test case rejected: {r}"),
        }
    }
}

/// Per-block configuration, set via `#![proptest_config(..)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted cases each property must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// A generator of values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map {
            source: self,
            func: f,
        }
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    source: S,
    func: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.func)(self.source.generate(rng))
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )+};
}
int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategies {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )+};
}
float_range_strategies!(f32, f64);

macro_rules! tuple_strategies {
    ($(($($S:ident . $i:tt),+);)+) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )+};
}
tuple_strategies! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
    (A.0, B.1, C.2, D.3, E.4, F.5);
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6);
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
}

/// Types with a canonical "any value" generator, used by [`any`].
pub trait Arbitrary {
    /// Generates one arbitrary value.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}
int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary_value(rng: &mut TestRng) -> u128 {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Arbitrary for i128 {
    fn arbitrary_value(rng: &mut TestRng) -> i128 {
        u128::arbitrary_value(rng) as i128
    }
}

macro_rules! tuple_arbitrary {
    ($(($($T:ident),+);)+) => {$(
        impl<$($T: Arbitrary),+> Arbitrary for ($($T,)+) {
            fn arbitrary_value(rng: &mut TestRng) -> Self {
                ($($T::arbitrary_value(rng),)+)
            }
        }
    )+};
}
tuple_arbitrary! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
    (A, B, C, D, E, F);
    (A, B, C, D, E, F, G);
    (A, B, C, D, E, F, G, H);
    (A, B, C, D, E, F, G, H, I);
    (A, B, C, D, E, F, G, H, I, J);
    (A, B, C, D, E, F, G, H, I, J, K);
    (A, B, C, D, E, F, G, H, I, J, K, L);
}

/// Strategy producing arbitrary values of `T`; see [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

/// A strategy generating arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// A boxed generator for one weighted `prop_oneof!` arm.
pub type ArmFn<T> = Box<dyn Fn(&mut TestRng) -> T>;

/// Weighted choice between alternative strategies; built by `prop_oneof!`.
pub struct Union<T> {
    arms: Vec<(u32, ArmFn<T>)>,
    total: u32,
}

impl<T> Union<T> {
    /// A union over the given `(weight, generator)` arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty or all weights are zero.
    pub fn new(arms: Vec<(u32, ArmFn<T>)>) -> Self {
        let total = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof! needs at least one weighted arm");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total as usize) as u32;
        for (w, arm) in &self.arms {
            if pick < *w {
                return arm(rng);
            }
            pick -= w;
        }
        unreachable!("weighted pick within total")
    }
}

/// Boxes one `prop_oneof!` arm; keeps the macro expansion free of type
/// ascription.
pub fn weighted_arm<S>(weight: u32, strat: S) -> (u32, ArmFn<S::Value>)
where
    S: Strategy + 'static,
{
    (weight, Box::new(move |rng| strat.generate(rng)))
}

/// `prop::collection` — sized collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Inclusive length bounds for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from a [`SizeRange`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi - self.size.lo + 1;
            let len = self.size.lo + rng.below(span.max(1));
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates vectors of `element` values with lengths in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Namespace mirror so `prop::collection::vec(..)` works via the prelude.
pub mod prop {
    pub use crate::collection;
}

/// The conventional glob import: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Asserts a condition inside a `proptest!` body, reporting the generated
/// inputs on failure instead of panicking immediately.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts two expressions are equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            lhs == rhs,
            "assertion failed: {:?} == {:?} (from `{}` and `{}`)",
            lhs,
            rhs,
            stringify!($lhs),
            stringify!($rhs)
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(lhs == rhs, "{} ({:?} != {:?})", format!($($fmt)+), lhs, rhs);
    }};
}

/// Asserts two expressions are unequal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            lhs != rhs,
            "assertion failed: {:?} != {:?} (from `{}` and `{}`)",
            lhs,
            rhs,
            stringify!($lhs),
            stringify!($rhs)
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(lhs != rhs, "{} (both {:?})", format!($($fmt)+), lhs);
    }};
}

/// Skips the current case when its inputs do not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::reject(format!($($fmt)+)));
        }
    };
}

/// Weighted (or uniform) choice among strategies producing one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::weighted_arm(($weight) as u32, $strat)),+])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::weighted_arm(1u32, $strat)),+])
    };
}

/// Defines property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running `cases` generated inputs through the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            #[allow(clippy::redundant_closure_call, unused_mut)]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                let mut accepted: u32 = 0;
                let mut rejected: u32 = 0;
                let reject_cap = config.cases.saturating_mul(64).max(1024);
                while accepted < config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                    let inputs = format!(
                        concat!("{{ " $(, stringify!($arg), " = {:?}, ")* , "}}")
                        $(, &$arg)*
                    );
                    let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                        (move || {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    match outcome {
                        ::core::result::Result::Ok(()) => accepted += 1,
                        ::core::result::Result::Err($crate::TestCaseError::Reject(why)) => {
                            rejected += 1;
                            assert!(
                                rejected < reject_cap,
                                "{}: too many prop_assume! rejections (last: {})",
                                stringify!($name),
                                why
                            );
                        }
                        ::core::result::Result::Err($crate::TestCaseError::Fail(why)) => {
                            panic!(
                                "property {} failed after {} passing case(s): {}\n  inputs: {}",
                                stringify!($name),
                                accepted,
                                why,
                                inputs
                            );
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::from_name("ranges");
        for _ in 0..1000 {
            let v = (3u64..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let w = (5usize..=5).generate(&mut rng);
            assert_eq!(w, 5);
            let f = (0.25f64..1.5).generate(&mut rng);
            assert!((0.25..1.5).contains(&f));
        }
    }

    #[test]
    fn generation_is_deterministic_per_name() {
        let mut a = crate::TestRng::from_name("x");
        let mut b = crate::TestRng::from_name("x");
        let s = prop::collection::vec(any::<u32>(), 1..8);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }

    #[test]
    fn oneof_honors_weights() {
        let mut rng = crate::TestRng::from_name("weights");
        let s = prop_oneof![9 => Just(true), 1 => Just(false)];
        let hits = (0..1000).filter(|_| s.generate(&mut rng)).count();
        assert!(hits > 800, "expected ~900 true picks, got {hits}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_roundtrip(x in 0u64..100, flip in any::<bool>(), v in prop::collection::vec(0u8..4, 0..6)) {
            prop_assume!(x != 13);
            prop_assert!(x < 100);
            prop_assert_eq!(flip, flip);
            prop_assert_ne!(x, 13u64);
            prop_assert!(v.len() < 6, "len {} out of bounds", v.len());
        }

        #[test]
        fn tuple_and_map_strategies(pair in ((0u64..8), any::<bool>()).prop_map(|(a, b)| (a * 2, b))) {
            prop_assert!(pair.0 % 2 == 0);
        }
    }
}
