//! # grit
//!
//! Top-level crate of the GRIT reproduction (HPCA 2024: *GRIT — Enhancing
//! Multi-GPU Performance with Fine-Grained Dynamic Page Placement*).
//!
//! This crate assembles the substrate crates into a runnable multi-GPU
//! system ([`Simulation`]) and hosts one experiment driver per figure of
//! the paper ([`experiments`]), used by both the `repro` binary and the
//! Criterion benches in `grit-bench`.
//!
//! * `grit-sim` — time, ids, access streams, Table I configuration
//! * `grit-mem` — caches, TLBs, page walkers, DRAM occupancy
//! * `grit-interconnect` — NVLink/PCIe fabric
//! * `grit-uvm` — the UVM driver and placement mechanisms
//! * `grit-core` — **GRIT** itself (PA-Table, PA-Cache, NAP)
//! * `grit-baselines` — first-touch, Ideal, Griffin, GPS, Trans-FW,
//!   tree prefetcher
//! * `grit-workloads` — the eight Table II benchmarks + two DNNs
//! * `grit-metrics` — latency breakdowns, fault counters, reports
//!
//! # Quickstart
//!
//! ```
//! use grit::prelude::*;
//!
//! let cfg = SimConfig::default();
//! let workload = WorkloadBuilder::new(App::Gemm).scale(0.02).build();
//! let policy = GritPolicy::new(GritConfig::full(&cfg), workload.footprint_pages);
//! let sim = Simulation::try_new(cfg, workload, Box::new(policy)).unwrap();
//! let out = sim.try_run().unwrap();
//! assert!(out.metrics.total_cycles > 0);
//! ```
//!
//! Batches of cells run through the Result-first [`experiments::run_batch`]
//! API: each cell yields `Result<RunOutput, CellError>`, so a panicking or
//! timed-out cell becomes a marked table row instead of aborting the
//! campaign (see `DESIGN.md` §11).

#![warn(missing_docs)]

pub mod experiments;
pub mod runner;
pub mod service;

pub use runner::{ObserverConfig, RunObserver, RunOutput, Simulation, SimulationBuilder};

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use grit_baselines::{
        apply_acud, apply_transfw, FirstTouchPolicy, GpsPolicy, GriffinDpcPolicy, IdealPolicy,
        TreePrefetcher,
    };
    pub use grit_core::{GritConfig, GritPolicy};
    pub use grit_metrics::{geomean, LatencyClass, Table};
    pub use grit_serve::{
        CampaignOutcome, CellResult, ServeClient, ServeOptions, ServeSummary, SERVE_SCHEMA,
    };
    pub use grit_sim::{
        Access, AccessKind, CancelToken, CellError, ConfigError, Cycle, GpuId, GritError, PageId,
        RunSpec, Scheme, SimConfig, PAGE_SIZE_2M, PAGE_SIZE_4K,
    };
    pub use grit_uvm::{PlacementPolicy, StaticPolicy, UvmDriver};
    pub use grit_workloads::{App, MultiGpuWorkload, WorkloadBuilder};

    pub use crate::experiments::{
        run_batch, run_batch_with, run_grid, BatchOptions, CellResultExt, CellSpec, ExpConfig,
        PolicyKind, PolicySpec,
    };
    pub use crate::runner::{ObserverConfig, RunOutput, Simulation, SimulationBuilder};
    pub use crate::service::{parse_spec_cell, run_spec, spec_runner, spec_runner_with};
}
