//! Extension sensitivity sweeps (beyond the paper): how robust is GRIT's
//! advantage to the substrate parameters the paper holds fixed?
//!
//! * **Memory capacity** — §III-B fixes per-GPU memory at 70 % of the
//!   footprint; replication-based placement lives or dies by this.
//! * **Remote-access throughput** — the peer-request issue gap decides the
//!   on-touch-vs-remote tradeoff at the heart of every scheme comparison.
//! * **Memory-level parallelism** — the CU-abstraction window; fault
//!   latency tolerance scales with it.

use grit_metrics::Table;
use grit_sim::{Scheme, SimConfig};
use grit_workloads::App;

use super::{run_batch, CellResultExt, CellSpec, ExpConfig, PolicyKind};

/// Capacity ratios swept.
pub const CAPACITIES: [f64; 4] = [0.4, 0.55, 0.7, 1.0];
/// Remote issue gaps swept (cycles between peer requests).
pub const REMOTE_GAPS: [u64; 4] = [15, 45, 90, 180];
/// MLP windows swept (outstanding memory operations per GPU).
pub const MLP_WINDOWS: [usize; 4] = [12, 24, 48, 96];

/// Representative application set for the sweeps: one per pattern class.
fn sweep_apps() -> [App; 4] {
    [App::Bfs, App::Gemm, App::Fir, App::St]
}

/// Runs one sweep: for every `(app, cfg)` point, GRIT's speedup over
/// on-touch under that system configuration.
fn sweep(title: &str, cols: Vec<String>, cfgs: &[SimConfig], exp: &ExpConfig) -> Table {
    let mut table = Table::new(title, cols);
    let cells: Vec<CellSpec> = sweep_apps()
        .into_iter()
        .flat_map(|app| {
            cfgs.iter().flat_map(move |cfg| {
                [
                    CellSpec::new(app, PolicyKind::Static(Scheme::OnTouch), exp)
                        .with_cfg(cfg.clone()),
                    CellSpec::new(app, PolicyKind::GRIT, exp).with_cfg(cfg.clone()),
                ]
            })
        })
        .collect();
    let outputs = run_batch(&cells);
    let per_app = 2 * cfgs.len();
    for (app, chunk) in sweep_apps().into_iter().zip(outputs.chunks(per_app)) {
        let row: Vec<f64> =
            chunk.chunks(2).map(|pair| pair[0].cycles() / pair[1].cycles()).collect();
        table.push_row(app.abbr(), row);
    }
    table.push_geomean_row();
    table
}

/// Sweep per-GPU memory capacity.
pub fn run_capacity(exp: &ExpConfig) -> Table {
    let cols = CAPACITIES.iter().map(|c| format!("{:.0}%", 100.0 * c)).collect();
    let cfgs: Vec<SimConfig> = CAPACITIES
        .iter()
        .map(|&c| SimConfig {
            capacity_ratio: c,
            ..SimConfig::default()
        })
        .collect();
    sweep(
        "Extension: GRIT gain over on-touch vs per-GPU memory capacity",
        cols,
        &cfgs,
        exp,
    )
}

/// Sweep the peer-request issue gap.
pub fn run_remote_gap(exp: &ExpConfig) -> Table {
    let cols = REMOTE_GAPS.iter().map(|g| format!("gap={g}")).collect();
    let cfgs: Vec<SimConfig> = REMOTE_GAPS
        .iter()
        .map(|&g| {
            let mut cfg = SimConfig::default();
            cfg.lat.remote_issue_gap = g;
            cfg
        })
        .collect();
    sweep(
        "Extension: GRIT gain over on-touch vs remote-access throughput",
        cols,
        &cfgs,
        exp,
    )
}

/// Sweep the per-GPU MLP window.
pub fn run_mlp(exp: &ExpConfig) -> Table {
    let cols = MLP_WINDOWS.iter().map(|w| format!("mlp={w}")).collect();
    let cfgs: Vec<SimConfig> = MLP_WINDOWS
        .iter()
        .map(|&w| SimConfig {
            mlp_window: w,
            ..SimConfig::default()
        })
        .collect();
    sweep(
        "Extension: GRIT gain over on-touch vs memory-level parallelism",
        cols,
        &cfgs,
        exp,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grit_gain_is_robust_across_capacity() {
        let t = run_capacity(&ExpConfig::quick());
        for (label, row) in t.rows() {
            if label == "GEOMEAN" {
                // Positive on average at every capacity point.
                for (i, v) in row.iter().enumerate() {
                    assert!(*v > 0.9, "capacity point {i}: geomean gain {v}");
                }
            }
        }
        // Abundant memory helps the duplication-leaning apps most: BFS's
        // gain at 100% capacity must be at least its gain at 40%.
        assert!(
            t.cell("BFS", "100%").unwrap() >= t.cell("BFS", "40%").unwrap() * 0.9,
            "more memory must not collapse BFS's replication gain"
        );
    }

    #[test]
    fn remote_throughput_shifts_but_never_flips_st() {
        // ST converges to access-counter placement under GRIT, so its gain
        // over on-touch is largest when remote access is cheap and shrinks
        // as the peer fabric gets slower — but it must stay a win at every
        // point of the sweep.
        let t = run_remote_gap(&ExpConfig::quick());
        let cheap = t.cell("ST", "gap=15").unwrap();
        let costly = t.cell("ST", "gap=180").unwrap();
        assert!(
            cheap > 1.0 && costly > 1.0,
            "ST gain must persist: {cheap}/{costly}"
        );
        assert!(
            cheap >= costly,
            "remote-bound ST should benefit most from a cheap fabric: {cheap} vs {costly}"
        );
    }

    #[test]
    fn mlp_window_does_not_flip_the_result() {
        let t = run_mlp(&ExpConfig::quick());
        for w in MLP_WINDOWS {
            let g = t.cell("GEOMEAN", &format!("mlp={w}")).unwrap();
            assert!(g > 0.9, "mlp={w}: geomean gain {g}");
        }
    }
}
