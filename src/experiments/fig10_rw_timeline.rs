//! Fig. 10: read/write access mix over time for one read-write page of ST
//! — read-only intervals followed by read-write intervals, the temporal
//! variation that makes a static duplication decision wrong.

use grit_metrics::Table;
use grit_sim::Scheme;
use grit_workloads::App;

use super::{CellSpec, ExpConfig, PolicyKind};
use crate::runner::ObserverConfig;

/// Runs the figure for `app` (the paper uses ST).
pub fn run_app(app: App, exp: &ExpConfig) -> Table {
    let base = CellSpec::new(app, PolicyKind::Static(Scheme::OnTouch), exp);
    let scout = base.run();
    let page = scout
        .attrs
        .hottest_written(2)
        .expect("workload must have a shared read-write page");
    let interval = (scout.metrics.total_cycles / 32).max(1);
    let obs = ObserverConfig {
        track_page: Some(page),
        interval_cycles: interval,
        ..Default::default()
    };
    let out = base.observed(obs).run();
    let observer = out.observer.expect("observer configured");
    let mut table = Table::new(
        format!(
            "Fig 10: read/write mix over time for {} of {}",
            page,
            app.abbr()
        ),
        vec!["reads%".into(), "writes%".into()],
    );
    for (i, fracs) in observer.page_rw.fractions().into_iter().enumerate() {
        table.push_row(
            format!("interval{i}"),
            fracs.iter().map(|f| 100.0 * f).collect(),
        );
    }
    table
}

/// The paper's exemplar: ST.
pub fn run(exp: &ExpConfig) -> Table {
    run_app(App::St, exp)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn st_page_has_read_only_and_rw_intervals() {
        let t = run(&ExpConfig::quick());
        let mut read_only = 0;
        let mut with_writes = 0;
        for (_, row) in t.rows() {
            let (r, w) = (row[0], row[1]);
            if r + w == 0.0 {
                continue;
            }
            if w == 0.0 {
                read_only += 1;
            } else {
                with_writes += 1;
            }
        }
        assert!(
            read_only >= 1,
            "ST must have read-only intervals (Fig 10: 0-8)"
        );
        assert!(
            with_writes >= 1,
            "ST must have read-write intervals (Fig 10: 9-31)"
        );
    }
}
