//! Fig. 20: component ablation — PA-Table only, PA-Table + PA-Cache, and
//! PA-Table + Neighboring-Aware Prediction, vs the full design, all
//! normalized to on-touch (paper averages: 31 % / 47 % / 44 %).

use grit_metrics::Table;
use grit_sim::Scheme;

use super::{run_grid, table2_apps, CellResultExt, ExpConfig, PolicyKind};

/// Ablation variants (plot order), ending with the full design.
pub fn variants() -> [(&'static str, PolicyKind); 4] {
    [
        (
            "pa-table",
            PolicyKind::Grit {
                threshold: 4,
                pa_cache: false,
                nap: false,
            },
        ),
        (
            "pa-table+cache",
            PolicyKind::Grit {
                threshold: 4,
                pa_cache: true,
                nap: false,
            },
        ),
        (
            "pa-table+nap",
            PolicyKind::Grit {
                threshold: 4,
                pa_cache: false,
                nap: true,
            },
        ),
        ("grit-full", PolicyKind::GRIT),
    ]
}

/// Runs the figure.
pub fn run(exp: &ExpConfig) -> Table {
    let cols: Vec<String> = variants().iter().map(|(n, _)| n.to_string()).collect();
    let mut table = Table::new(
        "Fig 20: GRIT component ablation (speedup over on-touch)",
        cols,
    );
    let mut policies = vec![PolicyKind::Static(Scheme::OnTouch)];
    policies.extend(variants().iter().map(|(_, p)| *p));
    let rows = run_grid(&table2_apps(), &policies, exp);
    for (app, runs) in table2_apps().into_iter().zip(&rows) {
        let base = runs[0].cycles();
        let row: Vec<f64> = runs[1..].iter().map(|r| base / r.cycles()).collect();
        table.push_row(app.abbr(), row);
    }
    table.push_geomean_row();
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn components_add_value_on_average() {
        let t = run(&ExpConfig::quick());
        let table_only = t.cell("GEOMEAN", "pa-table").unwrap();
        let with_cache = t.cell("GEOMEAN", "pa-table+cache").unwrap();
        let full = t.cell("GEOMEAN", "grit-full").unwrap();
        // The PA-Cache removes PA-Table memory latency from the fault
        // path: at least as fast on average.
        assert!(
            with_cache >= table_only * 0.999,
            "{with_cache} vs {table_only}"
        );
        // The full design is the best variant on average.
        for (name, _) in variants() {
            let v = t.cell("GEOMEAN", name).unwrap();
            assert!(full >= v * 0.98, "full {full} vs {name} {v}");
        }
    }
}
