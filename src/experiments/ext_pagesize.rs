//! Extension study: multi-page-size memory management (Mosaic-style).
//!
//! The paper's policies all manage memory in 4 KB pages. This study asks
//! what transparent 2 MB large pages do to them: every page-size mode
//! (`uniform4k`, `uniform2m`, `mixed`) is swept against three placement
//! policies over the Table II applications, through the resilient batch
//! harness. The key question is what happens when counter-group tracking
//! collapses to one counter per 2 MB frame — coalescing aliases all
//! sixteen 64 KB groups of a frame onto a single frame-keyed counter, so
//! migration decisions get coarser exactly when translation gets cheaper.
//!
//! Three tables come back:
//!
//! 1. **Speedup** — per-(mode, policy) geomean over apps of the mode's
//!    speedup over `uniform4k` *under the same policy*, so the value
//!    isolates the page-size mechanism from the policy's own benefit.
//!    The `uniform4k` row is 1 by construction.
//! 2. **TLB** — per-size L1/L2 hit rates, averaged over every run and
//!    GPU of the mode. The 2 MB columns are zero in `uniform4k` (no
//!    large-page TLBs exist there).
//! 3. **Activity** — coalesce/splinter/counter-trip totals summed over
//!    the mode's runs, straight from the `pagesize_counters` aux series.

use grit_metrics::{geomean, Table};
use grit_sim::{CellError, PageSizeMode, Scheme, SimConfig};
use grit_workloads::App;

use super::{run_batch, table2_apps, CellResultExt, CellSpec, ExpConfig, PolicyKind, PolicySpec};

use crate::runner::RunOutput;

/// Input enlargement factor, the Fig. 25 device: 2 MB frames only
/// coalesce when footprints span many whole frames, so the study grows
/// inputs the same way the paper does for its large-page evaluation
/// (§VI-B3). At the default `--scale 0.1` this puts every Table II app
/// at 1.5–25 whole frames.
pub const INPUT_ENLARGEMENT: f64 = 4.0;

/// The three tables of the study.
pub struct PagesizeStudy {
    /// Per-policy geomean speedup of each mode over `uniform4k`.
    pub speedup: Table,
    /// Per-size TLB hit rates averaged over the mode's runs.
    pub tlb: Table,
    /// Coalescing/splintering activity totals per mode.
    pub activity: Table,
}

fn policies() -> [PolicyKind; 3] {
    [
        PolicyKind::Static(Scheme::OnTouch),
        PolicyKind::Static(Scheme::AccessCounter),
        PolicyKind::GRIT,
    ]
}

/// Mean of one per-GPU aux series, or 0 when the run failed or the mode
/// never emitted it (uniform4k runs carry no 2 MB series).
fn aux_mean(r: &Result<RunOutput, CellError>, name: &str) -> f64 {
    r.output().and_then(|o| o.metrics.aux.get(name)).map_or(0.0, |v| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    })
}

/// One slot of the `pagesize_counters` aux series, summed over GPUs
/// (the driver emits one engine-wide series; sharded runs may append
/// per-shard copies, which summing also handles).
fn counter_slot(r: &Result<RunOutput, CellError>, slot: usize) -> f64 {
    r.output()
        .and_then(|o| o.metrics.aux.get("pagesize_counters"))
        .map_or(0.0, |v| v.iter().skip(slot).step_by(9).sum())
}

/// Runs the sweep over an explicit app set (tests shrink it; [`run`]
/// uses the full Table II set).
pub fn study(apps: &[App], exp: &ExpConfig) -> PagesizeStudy {
    let big = ExpConfig {
        scale: exp.scale * INPUT_ENLARGEMENT,
        ..*exp
    };
    // Cells are built literally (not via `CellSpec::new`) so each keeps
    // its explicit mode even under a `--page-size-mode` global override.
    let cell = |app: App, policy: PolicyKind, mode: PageSizeMode| CellSpec {
        app,
        policy: PolicySpec::Kind(policy),
        exp: big,
        cfg: SimConfig {
            page_size_mode: mode,
            ..SimConfig::default()
        },
        observer: None,
        prefetcher: None,
        trace: None,
    };
    let mut cells = Vec::new();
    for mode in PageSizeMode::ALL {
        for &app in apps {
            for policy in policies() {
                cells.push(cell(app, policy, mode));
            }
        }
    }
    let outputs = run_batch(&cells);

    let policy_cols: Vec<String> = policies().iter().map(|p| p.label()).collect();
    let mut speedup = Table::new(
        "ext-pagesize: speedup over uniform4k under the same policy",
        policy_cols,
    );
    let mut tlb = Table::new(
        "ext-pagesize: TLB hit rates by page size",
        vec![
            "l1-4k".into(),
            "l2-4k".into(),
            "l1-2m".into(),
            "l2-2m".into(),
        ],
    );
    let mut activity = Table::new(
        "ext-pagesize: large-page activity totals",
        vec![
            "coalesces".into(),
            "splinters".into(),
            "trips-base".into(),
            "trips-2m".into(),
            "aliased-groups".into(),
        ],
    );

    // Chunk layout mirrors the declaration loops: per mode, `apps.len()`
    // consecutive runs of `policies().len()` policies.
    let per_mode = apps.len() * policies().len();
    let base = &outputs[..per_mode];
    for (m, mode) in PageSizeMode::ALL.iter().enumerate() {
        let chunk = &outputs[m * per_mode..(m + 1) * per_mode];
        let speedups: Vec<f64> = (0..policies().len())
            .map(|p| {
                let per_app: Vec<f64> = (0..apps.len())
                    .map(|a| {
                        base[a * policies().len() + p].cycles()
                            / chunk[a * policies().len() + p].cycles()
                    })
                    .collect();
                geomean(&per_app)
            })
            .collect();
        speedup.push_row(mode.name(), speedups);

        let rates: Vec<f64> = [
            "tlb_l1_hit_rate",
            "tlb_l2_hit_rate",
            "tlb_l1_hit_rate_2m",
            "tlb_l2_hit_rate_2m",
        ]
        .iter()
        .map(|name| {
            let per_run: Vec<f64> = chunk.iter().map(|r| aux_mean(r, name)).collect();
            per_run.iter().sum::<f64>() / per_run.len().max(1) as f64
        })
        .collect();
        tlb.push_row(mode.name(), rates);

        let coalesces: f64 = chunk.iter().map(|r| counter_slot(r, 0)).sum();
        let splinters: f64 = chunk
            .iter()
            .map(|r| counter_slot(r, 1) + counter_slot(r, 2) + counter_slot(r, 3))
            .sum();
        let trips_base: f64 = chunk.iter().map(|r| counter_slot(r, 4)).sum();
        let trips_large: f64 = chunk.iter().map(|r| counter_slot(r, 5)).sum();
        let aliased: f64 = chunk.iter().map(|r| counter_slot(r, 6)).sum();
        activity.push_row(
            mode.name(),
            vec![coalesces, splinters, trips_base, trips_large, aliased],
        );
    }
    PagesizeStudy {
        speedup,
        tlb,
        activity,
    }
}

/// Runs the full study: every page-size mode × three policies × Table II.
pub fn run(exp: &ExpConfig) -> PagesizeStudy {
    study(&table2_apps(), exp)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExpConfig {
        ExpConfig {
            scale: 0.02,
            intensity: 0.5,
            seed: 0x70F0,
        }
    }

    /// Large enough (after [`INPUT_ENLARGEMENT`]) that footprints span
    /// several whole 2 MB frames — at `tiny()` scale no Table II app
    /// even reaches one frame, so nothing would coalesce.
    fn framed() -> ExpConfig {
        ExpConfig {
            scale: 0.0625,
            intensity: 0.5,
            seed: 0x70F0,
        }
    }

    #[test]
    fn uniform4k_row_is_exactly_one_and_others_are_finite() {
        let s = study(&[App::Bfs, App::Fir], &tiny());
        for p in policies() {
            let col = p.label();
            let base = s.speedup.cell("uniform4k", &col).unwrap();
            assert!((base - 1.0).abs() < 1e-12, "{col}: {base}");
            for mode in [PageSizeMode::Uniform2m, PageSizeMode::Mixed] {
                let v = s.speedup.cell(mode.name(), &col).unwrap();
                assert!(v.is_finite() && v > 0.0, "{} {col}: {v}", mode.name());
            }
        }
    }

    #[test]
    fn mixed_mode_both_coalesces_and_splinters_on_shared_apps() {
        // ST's per-GPU stencil rows coalesce; its halo exchanges at the
        // row boundaries then splinter frames back (false sharing).
        let s = study(&[App::St], &framed());
        let coalesces = s.activity.cell("mixed", "coalesces").unwrap();
        let splinters = s.activity.cell("mixed", "splinters").unwrap();
        assert!(coalesces > 0.0, "mixed mode must coalesce: {coalesces}");
        assert!(splinters > 0.0, "mixed mode must splinter: {splinters}");
        let aliased = s.activity.cell("mixed", "aliased-groups").unwrap();
        assert!(
            aliased > 0.0,
            "frame counter trips must alias groups: {aliased}"
        );
        let none = s.activity.cell("uniform4k", "coalesces").unwrap();
        assert!(none == 0.0, "uniform4k must never coalesce: {none}");
    }

    #[test]
    fn large_page_modes_report_2m_tlb_hit_rates() {
        let s = study(&[App::Fir], &framed());
        assert_eq!(s.tlb.cell("uniform4k", "l1-2m").unwrap(), 0.0);
        for mode in [PageSizeMode::Uniform2m, PageSizeMode::Mixed] {
            let l1 = s.tlb.cell(mode.name(), "l1-2m").unwrap();
            assert!(
                l1 > 0.5 && l1 <= 1.0,
                "{}: coalesced FIR streams should hit the 2 MB L1 hard: {l1}",
                mode.name()
            );
        }
    }
}
