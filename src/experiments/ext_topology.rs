//! Extension study: placement policies across interconnect topologies.
//!
//! The paper evaluates GRIT on an all-to-all NVLink node; this study asks
//! how its advantage holds up when the wires get shared. Every topology
//! from `grit-topo` is swept against GPU count with GRIT and the on-touch
//! baseline over the Table II applications, through the resilient batch
//! harness (so `--jobs`, `--resume` and `run_report.json` all apply).
//!
//! Two tables come back:
//!
//! 1. **Speedup** — per-(topology, GPU count) geomean of GRIT's speedup
//!    over on-touch *on the same topology*, so the value isolates the
//!    policy's benefit from the fabric's raw capability.
//! 2. **Queueing** — total fabric queue cycles of the GRIT runs,
//!    normalized to the all-to-all fabric at the same GPU count. Shared
//!    wires (ring hops, switch trunks, the hierarchical bottleneck) show
//!    up as ratios above 1.

use grit_metrics::{geomean, Table};
use grit_sim::{Scheme, SimConfig, TopologyConfig, TopologyKind};
use grit_workloads::App;

use super::{run_batch, table2_apps, CellResultExt, CellSpec, ExpConfig, PolicyKind, PolicySpec};

/// GPU counts swept against every topology.
pub const GPU_COUNTS: [usize; 2] = [4, 8];

/// The two tables of the study.
pub struct TopologyStudy {
    /// GRIT speedup over same-topology on-touch, geomean over apps.
    pub speedup: Table,
    /// GRIT-run fabric queue cycles normalized to all-to-all.
    pub queue: Table,
}

fn policies() -> [PolicyKind; 2] {
    [PolicyKind::Static(Scheme::OnTouch), PolicyKind::GRIT]
}

/// Total fabric queue cycles of one run, summed over wire classes
/// (nvlink, switch, inter-node, pcie).
fn queue_cycles(o: &crate::runner::RunOutput) -> f64 {
    o.metrics.aux.get("fabric_queue_cycles").map_or(0.0, |v| v.iter().sum())
}

/// Runs the sweep over an explicit app set and GPU counts (tests shrink
/// both; [`run`] uses the full Table II set).
pub fn study(apps: &[App], gpu_counts: &[usize], exp: &ExpConfig) -> TopologyStudy {
    // Cells are built literally (not via `CellSpec::new`) so each keeps
    // its explicit topology even under a `--topology` global override.
    let cell = |app: App, policy: PolicyKind, gpus: usize, kind: TopologyKind| CellSpec {
        app,
        policy: PolicySpec::Kind(policy),
        exp: *exp,
        cfg: SimConfig {
            topology: TopologyConfig::of(kind),
            ..SimConfig::with_gpus(gpus)
        },
        observer: None,
        prefetcher: None,
        trace: None,
    };
    let mut cells = Vec::new();
    for kind in TopologyKind::ALL {
        for &gpus in gpu_counts {
            for &app in apps {
                for policy in policies() {
                    cells.push(cell(app, policy, gpus, kind));
                }
            }
        }
    }
    let outputs = run_batch(&cells);

    let cols: Vec<String> = gpu_counts.iter().map(|n| format!("{n} GPUs")).collect();
    let mut speedup = Table::new(
        "ext-topology: GRIT speedup over same-topology on-touch",
        cols.clone(),
    );
    let mut queue = Table::new("ext-topology: GRIT fabric queue cycles vs all-to-all", cols);
    // Chunk layout mirrors the declaration loops: per (topology, gpus),
    // `apps.len()` consecutive (on-touch, grit) pairs.
    let per_combo = apps.len() * policies().len();
    let mut chunks = outputs.chunks(per_combo);
    let mut queue_rows: Vec<(&'static str, Vec<f64>)> = Vec::new();
    for kind in TopologyKind::ALL {
        let mut speedups = Vec::with_capacity(gpu_counts.len());
        let mut queues = Vec::with_capacity(gpu_counts.len());
        for _ in gpu_counts {
            let combo = chunks.next().expect("batch covers every combination");
            let per_app: Vec<f64> = combo
                .chunks(policies().len())
                .map(|pair| pair[0].cycles() / pair[1].cycles())
                .collect();
            speedups.push(geomean(&per_app));
            queues.push(
                combo.chunks(policies().len()).map(|pair| pair[1].metric(queue_cycles)).sum(),
            );
        }
        speedup.push_row(kind.name(), speedups);
        queue_rows.push((kind.name(), queues));
    }
    // Normalize queueing to the all-to-all row at the same GPU count.
    let base: Vec<f64> = queue_rows[0].1.iter().map(|&q: &f64| q.max(1.0)).collect();
    for (name, qs) in queue_rows {
        queue.push_row(name, qs.iter().zip(&base).map(|(q, b)| q / b).collect());
    }
    TopologyStudy { speedup, queue }
}

/// Runs the full study: every topology × [`GPU_COUNTS`] × Table II apps.
pub fn run(exp: &ExpConfig) -> TopologyStudy {
    study(&table2_apps(), &GPU_COUNTS, exp)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExpConfig {
        ExpConfig {
            scale: 0.02,
            intensity: 0.5,
            seed: 0x70F0,
        }
    }

    #[test]
    fn shared_topologies_queue_measurably_harder_than_all_to_all() {
        let s = study(&[App::Bfs, App::Fir], &[8], &tiny());
        let col = "8 GPUs";
        let all_to_all = s.queue.cell(TopologyKind::AllToAll.name(), col).unwrap();
        assert!((all_to_all - 1.0).abs() < 1e-12, "baseline row must be 1");
        for kind in [TopologyKind::Ring, TopologyKind::NvSwitch] {
            let q = s.queue.cell(kind.name(), col).unwrap();
            assert!(
                q > 1.05,
                "{} should queue measurably harder than all-to-all: {q}",
                kind.name()
            );
        }
    }

    #[test]
    fn grit_still_beats_on_touch_on_every_topology() {
        let s = study(&[App::Bfs, App::Fir], &[4], &tiny());
        for kind in TopologyKind::ALL {
            let v = s.speedup.cell(kind.name(), "4 GPUs").unwrap();
            assert!(v.is_finite() && v > 0.0, "{}: {v}", kind.name());
        }
    }
}
