//! Content-addressed on-disk result store for resumable campaigns.
//!
//! Each completed cell is stored as one JSON file named by the FNV-1a hash
//! of the cell's *resume key* — a canonical string derived from
//! `(app, exp-config, system config, policy, observer, code version)`.
//! An interrupted `repro ... --resume` run loads completed cells from the
//! store instead of re-simulating them; because the simulator is
//! deterministic, the loaded output is exactly what a fresh run would have
//! produced, so resumed and uninterrupted runs render byte-identical
//! tables at any `--jobs`.
//!
//! Eligibility is decided by [`super::batch::CellSpec::resume_key`]:
//! cells with opaque policy factories, prefetchers, or per-cell tracing
//! are never stored (their outputs can't be keyed or fully reconstructed),
//! and the batch executor disables the store entirely while a global
//! trace writer is active (trace events are not persisted).
//!
//! Robustness: writes are atomic (uniquely named temp file + rename, so
//! any number of threads or processes may race on one key — the losers'
//! renames just replace equivalent content), loads verify the schema
//! *and* the full key (hash collisions degrade to a re-run, never a
//! wrong result), and any unreadable or mistyped file is treated as a
//! cache miss.
//!
//! The store can be bounded ([`ResultStore::open_with`], wired to
//! `repro --store-max-bytes`): after every save it deterministically
//! evicts oldest-first — by modification time, ties broken by file name —
//! until the directory fits the budget. Long-lived stores (the
//! `repro serve` campaign service) therefore converge to an LRU-by-write
//! working set instead of growing without bound.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::SystemTime;

use grit_metrics::{AttrGrid, IntervalSeries, PageAttrTracker};
use grit_trace::{CellTiming, Json, MetricsReport};

use crate::runner::{RunObserver, RunOutput};

/// Schema tag of every store file; bump when the layout changes so stale
/// files are re-run instead of misparsed. v2: resume keys name cells by
/// their canonical `RunSpec` string instead of ad-hoc `Debug` fields.
pub const STORE_SCHEMA: &str = "grit-result-store/v2";

/// Distinguishes temp files written by racing threads of one process
/// (the process id alone is shared between them).
static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// FNV-1a 64-bit hash of the key string; the store's file name.
fn fnv1a64(key: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A directory of completed cell results, keyed by resume-key hash.
#[derive(Clone, Debug)]
pub struct ResultStore {
    dir: PathBuf,
    max_bytes: Option<u64>,
}

impl ResultStore {
    /// Opens (creating if needed) an unbounded store rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open(dir: &Path) -> io::Result<Self> {
        ResultStore::open_with(dir, None)
    }

    /// Opens (creating if needed) a store rooted at `dir`, bounded to
    /// `max_bytes` of result files (`None` = unbounded). The budget is
    /// enforced after every save by oldest-first eviction.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open_with(dir: &Path, max_bytes: Option<u64>) -> io::Result<Self> {
        fs::create_dir_all(dir)?;
        Ok(ResultStore {
            dir: dir.to_path_buf(),
            max_bytes,
        })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The store's size budget in bytes, if bounded.
    pub fn max_bytes(&self) -> Option<u64> {
        self.max_bytes
    }

    fn path_for(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{:016x}.json", fnv1a64(key)))
    }

    /// Loads the stored output for `key`, or `None` when absent,
    /// unreadable, schema-mismatched, or keyed by a colliding-but-different
    /// cell. Every failure mode degrades to "re-run the cell".
    pub fn load(&self, key: &str) -> Option<RunOutput> {
        let text = fs::read_to_string(self.path_for(key)).ok()?;
        let json = Json::parse(&text).ok()?;
        if json.get("schema")?.as_str()? != STORE_SCHEMA {
            return None;
        }
        if json.get("key")?.as_str()? != key {
            return None; // hash collision: treat as a miss
        }
        decode_output(&json)
    }

    /// Atomically persists a completed cell under `key`, then enforces
    /// the size budget. Concurrent writers — other threads of this
    /// process or other processes sharing the directory — may race on
    /// one key safely: each writes a uniquely named temp file
    /// (pid + per-process counter) and the rename is atomic, so the
    /// file is always one writer's complete output, never interleaved.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures (callers log and continue; a failed
    /// save only costs a future re-run).
    pub fn save(&self, key: &str, out: &RunOutput) -> io::Result<()> {
        let final_path = self.path_for(key);
        let tmp_path = final_path.with_extension(format!(
            "tmp-{}-{}",
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        fs::write(&tmp_path, encode_output(key, out).to_string())?;
        fs::rename(&tmp_path, &final_path)?;
        self.enforce_budget();
        Ok(())
    }

    /// Deletes result files oldest-first (modification time, ties broken
    /// by file name so the order is deterministic) until the store fits
    /// its budget. Unbounded stores no-op. Failures are swallowed: a
    /// fat store costs disk, not correctness, and racing evictors may
    /// legitimately delete the same file.
    fn enforce_budget(&self) {
        let Some(budget) = self.max_bytes else { return };
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return;
        };
        let mut files: Vec<(SystemTime, PathBuf, u64)> = entries
            .flatten()
            .filter(|e| e.path().extension().is_some_and(|x| x == "json"))
            .filter_map(|e| {
                let meta = e.metadata().ok()?;
                let mtime = meta.modified().ok()?;
                Some((mtime, e.path(), meta.len()))
            })
            .collect();
        let mut total: u64 = files.iter().map(|(_, _, len)| len).sum();
        if total <= budget {
            return;
        }
        files.sort();
        for (_, path, len) in files {
            if total <= budget {
                break;
            }
            let _ = fs::remove_file(&path);
            total = total.saturating_sub(len);
        }
    }
}

fn series_to_json(s: &IntervalSeries) -> Json {
    Json::Obj(vec![
        ("interval_cycles".into(), Json::UInt(s.interval_cycles())),
        ("buckets".into(), Json::UInt(s.buckets() as u64)),
        (
            "rows".into(),
            Json::Arr(
                s.iter()
                    .map(|(_, row)| Json::Arr(row.iter().map(|&v| Json::UInt(v)).collect()))
                    .collect(),
            ),
        ),
    ])
}

fn series_from_json(v: &Json) -> Option<IntervalSeries> {
    let interval = v.get("interval_cycles")?.as_u64()?;
    let buckets = v.get("buckets")?.as_u64()? as usize;
    if interval == 0 || buckets == 0 {
        return None;
    }
    let mut rows = Vec::new();
    for row in v.get("rows")?.as_arr()? {
        let counts: Option<Vec<u64>> = row.as_arr()?.iter().map(Json::as_u64).collect();
        rows.push(counts?);
    }
    Some(IntervalSeries::from_rows(interval, buckets, rows))
}

fn grid_to_json(g: &AttrGrid) -> Json {
    let cells = (0..g.intervals())
        .map(|i| {
            Json::Arr((0..g.page_bins()).map(|b| Json::UInt(u64::from(g.get(i, b)))).collect())
        })
        .collect();
    Json::Obj(vec![
        ("intervals".into(), Json::UInt(g.intervals() as u64)),
        ("page_bins".into(), Json::UInt(g.page_bins() as u64)),
        ("cells".into(), Json::Arr(cells)),
    ])
}

fn grid_from_json(v: &Json) -> Option<AttrGrid> {
    let intervals = v.get("intervals")?.as_u64()? as usize;
    let page_bins = v.get("page_bins")?.as_u64()? as usize;
    if intervals == 0 || page_bins == 0 {
        return None;
    }
    let mut g = AttrGrid::new(intervals, page_bins);
    for (i, row) in v.get("cells")?.as_arr()?.iter().enumerate() {
        for (b, code) in row.as_arr()?.iter().enumerate() {
            g.mark(i, b, u8::try_from(code.as_u64()?).ok()?);
        }
    }
    Some(g)
}

fn opt_to_json<T>(v: &Option<T>, f: impl Fn(&T) -> Json) -> Json {
    match v {
        Some(x) => f(x),
        None => Json::Null,
    }
}

fn encode_output(key: &str, out: &RunOutput) -> Json {
    let pages = Json::Arr(
        out.attrs
            .export_pages()
            .into_iter()
            .map(|(vpn, bits, written, accesses)| {
                Json::Arr(vec![
                    Json::UInt(vpn),
                    Json::UInt(u64::from(bits)),
                    Json::Bool(written),
                    Json::UInt(accesses),
                ])
            })
            .collect(),
    );
    let observer = opt_to_json(&out.observer, |obs| {
        Json::Obj(vec![
            ("page_by_gpu".into(), series_to_json(&obs.page_by_gpu)),
            ("page_rw".into(), series_to_json(&obs.page_rw)),
            (
                "grid_private_shared".into(),
                opt_to_json(&obs.grid_private_shared, grid_to_json),
            ),
            (
                "grid_read_rw".into(),
                opt_to_json(&obs.grid_read_rw, grid_to_json),
            ),
            (
                "grid_interval_cycles".into(),
                Json::UInt(obs.grid_interval_cycles),
            ),
            (
                "scheme_timeline".into(),
                opt_to_json(&obs.scheme_timeline, series_to_json),
            ),
        ])
    });
    Json::Obj(vec![
        ("schema".into(), Json::Str(STORE_SCHEMA.into())),
        ("key".into(), Json::Str(key.into())),
        (
            "timing".into(),
            Json::Obj(vec![
                (
                    "build_seconds".into(),
                    Json::Float(out.timing.build_seconds),
                ),
                ("sim_seconds".into(), Json::Float(out.timing.sim_seconds)),
                (
                    "workload_cache_hit".into(),
                    Json::Bool(out.timing.workload_cache_hit),
                ),
            ]),
        ),
        (
            "metrics".into(),
            MetricsReport::from_metrics(&out.metrics).to_json(),
        ),
        ("pages".into(), pages),
        ("observer".into(), observer),
    ])
}

fn decode_output(v: &Json) -> Option<RunOutput> {
    let metrics = MetricsReport::from_json(v.get("metrics")?).ok()?.to_metrics();
    let mut pages = Vec::new();
    for row in v.get("pages")?.as_arr()? {
        let row = row.as_arr()?;
        if row.len() != 4 {
            return None;
        }
        pages.push((
            row[0].as_u64()?,
            u16::try_from(row[1].as_u64()?).ok()?,
            row[2].as_bool()?,
            row[3].as_u64()?,
        ));
    }
    let attrs = PageAttrTracker::from_exported(&pages);
    let observer = match v.get("observer")? {
        Json::Null => None,
        obs => Some(RunObserver {
            page_by_gpu: series_from_json(obs.get("page_by_gpu")?)?,
            page_rw: series_from_json(obs.get("page_rw")?)?,
            grid_private_shared: match obs.get("grid_private_shared")? {
                Json::Null => None,
                g => Some(grid_from_json(g)?),
            },
            grid_read_rw: match obs.get("grid_read_rw")? {
                Json::Null => None,
                g => Some(grid_from_json(g)?),
            },
            grid_interval_cycles: obs.get("grid_interval_cycles")?.as_u64()?,
            scheme_timeline: match obs.get("scheme_timeline")? {
                Json::Null => None,
                s => Some(series_from_json(s)?),
            },
        }),
    };
    let timing = v.get("timing")?;
    Some(RunOutput {
        page_attrs: attrs.summary(),
        attrs,
        metrics,
        observer,
        timing: CellTiming {
            build_seconds: timing.get("build_seconds")?.as_f64()?,
            sim_seconds: timing.get("sim_seconds")?.as_f64()?,
            workload_cache_hit: timing.get("workload_cache_hit")?.as_bool()?,
            resumed: true,
        },
        events: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{run_cell, ExpConfig, PolicyKind};
    use grit_workloads::App;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("grit-store-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn save_load_round_trips_a_real_run() {
        let exp = ExpConfig {
            scale: 0.02,
            intensity: 0.5,
            seed: 0x7E57,
        };
        let out = run_cell(App::Bfs, PolicyKind::FirstTouch, &exp);
        let dir = tmp_dir("rt");
        let store = ResultStore::open(&dir).unwrap();
        store.save("some-key", &out).unwrap();
        let back = store.load("some-key").expect("stored result loads");
        assert_eq!(back.metrics.total_cycles, out.metrics.total_cycles);
        assert_eq!(back.metrics.faults, out.metrics.faults);
        assert_eq!(back.page_attrs, out.page_attrs);
        assert_eq!(back.attrs.export_pages(), out.attrs.export_pages());
        assert!(back.timing.resumed);
        assert!(back.events.is_none());
        // A different key misses even though the hash file exists for the
        // first one.
        assert!(store.load("другой-key").is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_files_degrade_to_miss() {
        let dir = tmp_dir("corrupt");
        let store = ResultStore::open(&dir).unwrap();
        fs::write(
            store.dir().join(format!("{:016x}.json", fnv1a64("k"))),
            "{ not json",
        )
        .unwrap();
        assert!(store.load("k").is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn hash_is_stable() {
        // FNV-1a reference value: hash("") = offset basis.
        assert_eq!(fnv1a64(""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a64("a"), fnv1a64("b"));
    }

    #[test]
    fn bounded_store_evicts_oldest_first() {
        let exp = ExpConfig {
            scale: 0.02,
            intensity: 0.5,
            seed: 0x7E57,
        };
        let out = run_cell(App::Bfs, PolicyKind::FirstTouch, &exp);

        // Same-length keys give same-size files, so the budget math is
        // exact: measure one file, then allow room for two and a half.
        let probe_dir = tmp_dir("evict-probe");
        let probe = ResultStore::open(&probe_dir).unwrap();
        probe.save("key-0", &out).unwrap();
        let file_size = fs::read_dir(&probe_dir)
            .unwrap()
            .flatten()
            .next()
            .unwrap()
            .metadata()
            .unwrap()
            .len();
        let _ = fs::remove_dir_all(&probe_dir);

        let dir = tmp_dir("evict");
        let store = ResultStore::open_with(&dir, Some(file_size * 5 / 2)).unwrap();
        assert_eq!(store.max_bytes(), Some(file_size * 5 / 2));
        for key in ["key-1", "key-2", "key-3"] {
            store.save(key, &out).unwrap();
            // Distinct mtimes so "oldest" is well defined on coarse
            // filesystem clocks.
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        assert!(
            store.load("key-1").is_none(),
            "oldest entry evicted once the third save broke the budget"
        );
        assert!(store.load("key-2").is_some(), "newer entries survive");
        assert!(store.load("key-3").is_some(), "newest entry survives");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_writers_on_one_key_never_corrupt() {
        let exp = ExpConfig {
            scale: 0.02,
            intensity: 0.5,
            seed: 0x7E57,
        };
        let out = run_cell(App::Bfs, PolicyKind::FirstTouch, &exp);
        let dir = tmp_dir("race");
        let store = ResultStore::open(&dir).unwrap();
        // Two writers race the same key repeatedly (the serve path: two
        // clients miss simultaneously, both re-run, both save). Whatever
        // the interleaving, the loser's rename replaces equivalent
        // content and every load in between sees one complete file.
        for _ in 0..25 {
            std::thread::scope(|s| {
                for _ in 0..2 {
                    s.spawn(|| store.save("shared-key", &out).unwrap());
                }
            });
            let back = store.load("shared-key").expect("file is never corrupt");
            assert_eq!(back.metrics.total_cycles, out.metrics.total_cycles);
        }
        // No temp-file litter: every writer's rename landed.
        let stray: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter(|e| e.path().extension().is_none_or(|x| x != "json"))
            .collect();
        assert!(stray.is_empty(), "leftover temp files: {stray:?}");
        let _ = fs::remove_dir_all(&dir);
    }
}
