//! Content-addressed on-disk result store for resumable campaigns.
//!
//! Each completed cell is stored as one JSON file named by the FNV-1a hash
//! of the cell's *resume key* — a canonical string derived from
//! `(app, exp-config, system config, policy, observer, code version)`.
//! An interrupted `repro ... --resume` run loads completed cells from the
//! store instead of re-simulating them; because the simulator is
//! deterministic, the loaded output is exactly what a fresh run would have
//! produced, so resumed and uninterrupted runs render byte-identical
//! tables at any `--jobs`.
//!
//! Eligibility is decided by [`super::batch::CellSpec::resume_key`]:
//! cells with opaque policy factories, prefetchers, or per-cell tracing
//! are never stored (their outputs can't be keyed or fully reconstructed),
//! and the batch executor disables the store entirely while a global
//! trace writer is active (trace events are not persisted).
//!
//! Robustness: writes are atomic (temp file + rename), loads verify the
//! schema *and* the full key (hash collisions degrade to a re-run, never a
//! wrong result), and any unreadable or mistyped file is treated as a
//! cache miss.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use grit_metrics::{AttrGrid, IntervalSeries, PageAttrTracker};
use grit_trace::{CellTiming, Json, MetricsReport};

use crate::runner::{RunObserver, RunOutput};

/// Schema tag of every store file; bump when the layout changes so stale
/// files are re-run instead of misparsed.
pub const STORE_SCHEMA: &str = "grit-result-store/v1";

/// FNV-1a 64-bit hash of the key string; the store's file name.
fn fnv1a64(key: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A directory of completed cell results, keyed by resume-key hash.
#[derive(Clone, Debug)]
pub struct ResultStore {
    dir: PathBuf,
}

impl ResultStore {
    /// Opens (creating if needed) a store rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open(dir: &Path) -> io::Result<Self> {
        fs::create_dir_all(dir)?;
        Ok(ResultStore {
            dir: dir.to_path_buf(),
        })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_for(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{:016x}.json", fnv1a64(key)))
    }

    /// Loads the stored output for `key`, or `None` when absent,
    /// unreadable, schema-mismatched, or keyed by a colliding-but-different
    /// cell. Every failure mode degrades to "re-run the cell".
    pub fn load(&self, key: &str) -> Option<RunOutput> {
        let text = fs::read_to_string(self.path_for(key)).ok()?;
        let json = Json::parse(&text).ok()?;
        if json.get("schema")?.as_str()? != STORE_SCHEMA {
            return None;
        }
        if json.get("key")?.as_str()? != key {
            return None; // hash collision: treat as a miss
        }
        decode_output(&json)
    }

    /// Atomically persists a completed cell under `key`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures (callers log and continue; a failed
    /// save only costs a future re-run).
    pub fn save(&self, key: &str, out: &RunOutput) -> io::Result<()> {
        let final_path = self.path_for(key);
        let tmp_path = final_path.with_extension(format!("tmp-{}", std::process::id()));
        fs::write(&tmp_path, encode_output(key, out).to_string())?;
        fs::rename(&tmp_path, &final_path)
    }
}

fn series_to_json(s: &IntervalSeries) -> Json {
    Json::Obj(vec![
        ("interval_cycles".into(), Json::UInt(s.interval_cycles())),
        ("buckets".into(), Json::UInt(s.buckets() as u64)),
        (
            "rows".into(),
            Json::Arr(
                s.iter()
                    .map(|(_, row)| Json::Arr(row.iter().map(|&v| Json::UInt(v)).collect()))
                    .collect(),
            ),
        ),
    ])
}

fn series_from_json(v: &Json) -> Option<IntervalSeries> {
    let interval = v.get("interval_cycles")?.as_u64()?;
    let buckets = v.get("buckets")?.as_u64()? as usize;
    if interval == 0 || buckets == 0 {
        return None;
    }
    let mut rows = Vec::new();
    for row in v.get("rows")?.as_arr()? {
        let counts: Option<Vec<u64>> = row.as_arr()?.iter().map(Json::as_u64).collect();
        rows.push(counts?);
    }
    Some(IntervalSeries::from_rows(interval, buckets, rows))
}

fn grid_to_json(g: &AttrGrid) -> Json {
    let cells = (0..g.intervals())
        .map(|i| {
            Json::Arr((0..g.page_bins()).map(|b| Json::UInt(u64::from(g.get(i, b)))).collect())
        })
        .collect();
    Json::Obj(vec![
        ("intervals".into(), Json::UInt(g.intervals() as u64)),
        ("page_bins".into(), Json::UInt(g.page_bins() as u64)),
        ("cells".into(), Json::Arr(cells)),
    ])
}

fn grid_from_json(v: &Json) -> Option<AttrGrid> {
    let intervals = v.get("intervals")?.as_u64()? as usize;
    let page_bins = v.get("page_bins")?.as_u64()? as usize;
    if intervals == 0 || page_bins == 0 {
        return None;
    }
    let mut g = AttrGrid::new(intervals, page_bins);
    for (i, row) in v.get("cells")?.as_arr()?.iter().enumerate() {
        for (b, code) in row.as_arr()?.iter().enumerate() {
            g.mark(i, b, u8::try_from(code.as_u64()?).ok()?);
        }
    }
    Some(g)
}

fn opt_to_json<T>(v: &Option<T>, f: impl Fn(&T) -> Json) -> Json {
    match v {
        Some(x) => f(x),
        None => Json::Null,
    }
}

fn encode_output(key: &str, out: &RunOutput) -> Json {
    let pages = Json::Arr(
        out.attrs
            .export_pages()
            .into_iter()
            .map(|(vpn, bits, written, accesses)| {
                Json::Arr(vec![
                    Json::UInt(vpn),
                    Json::UInt(u64::from(bits)),
                    Json::Bool(written),
                    Json::UInt(accesses),
                ])
            })
            .collect(),
    );
    let observer = opt_to_json(&out.observer, |obs| {
        Json::Obj(vec![
            ("page_by_gpu".into(), series_to_json(&obs.page_by_gpu)),
            ("page_rw".into(), series_to_json(&obs.page_rw)),
            (
                "grid_private_shared".into(),
                opt_to_json(&obs.grid_private_shared, grid_to_json),
            ),
            (
                "grid_read_rw".into(),
                opt_to_json(&obs.grid_read_rw, grid_to_json),
            ),
            (
                "grid_interval_cycles".into(),
                Json::UInt(obs.grid_interval_cycles),
            ),
            (
                "scheme_timeline".into(),
                opt_to_json(&obs.scheme_timeline, series_to_json),
            ),
        ])
    });
    Json::Obj(vec![
        ("schema".into(), Json::Str(STORE_SCHEMA.into())),
        ("key".into(), Json::Str(key.into())),
        (
            "timing".into(),
            Json::Obj(vec![
                (
                    "build_seconds".into(),
                    Json::Float(out.timing.build_seconds),
                ),
                ("sim_seconds".into(), Json::Float(out.timing.sim_seconds)),
                (
                    "workload_cache_hit".into(),
                    Json::Bool(out.timing.workload_cache_hit),
                ),
            ]),
        ),
        (
            "metrics".into(),
            MetricsReport::from_metrics(&out.metrics).to_json(),
        ),
        ("pages".into(), pages),
        ("observer".into(), observer),
    ])
}

fn decode_output(v: &Json) -> Option<RunOutput> {
    let metrics = MetricsReport::from_json(v.get("metrics")?).ok()?.to_metrics();
    let mut pages = Vec::new();
    for row in v.get("pages")?.as_arr()? {
        let row = row.as_arr()?;
        if row.len() != 4 {
            return None;
        }
        pages.push((
            row[0].as_u64()?,
            u16::try_from(row[1].as_u64()?).ok()?,
            row[2].as_bool()?,
            row[3].as_u64()?,
        ));
    }
    let attrs = PageAttrTracker::from_exported(&pages);
    let observer = match v.get("observer")? {
        Json::Null => None,
        obs => Some(RunObserver {
            page_by_gpu: series_from_json(obs.get("page_by_gpu")?)?,
            page_rw: series_from_json(obs.get("page_rw")?)?,
            grid_private_shared: match obs.get("grid_private_shared")? {
                Json::Null => None,
                g => Some(grid_from_json(g)?),
            },
            grid_read_rw: match obs.get("grid_read_rw")? {
                Json::Null => None,
                g => Some(grid_from_json(g)?),
            },
            grid_interval_cycles: obs.get("grid_interval_cycles")?.as_u64()?,
            scheme_timeline: match obs.get("scheme_timeline")? {
                Json::Null => None,
                s => Some(series_from_json(s)?),
            },
        }),
    };
    let timing = v.get("timing")?;
    Some(RunOutput {
        page_attrs: attrs.summary(),
        attrs,
        metrics,
        observer,
        timing: CellTiming {
            build_seconds: timing.get("build_seconds")?.as_f64()?,
            sim_seconds: timing.get("sim_seconds")?.as_f64()?,
            workload_cache_hit: timing.get("workload_cache_hit")?.as_bool()?,
            resumed: true,
        },
        events: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{run_cell, ExpConfig, PolicyKind};
    use grit_workloads::App;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("grit-store-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn save_load_round_trips_a_real_run() {
        let exp = ExpConfig {
            scale: 0.02,
            intensity: 0.5,
            seed: 0x7E57,
        };
        let out = run_cell(App::Bfs, PolicyKind::FirstTouch, &exp);
        let dir = tmp_dir("rt");
        let store = ResultStore::open(&dir).unwrap();
        store.save("some-key", &out).unwrap();
        let back = store.load("some-key").expect("stored result loads");
        assert_eq!(back.metrics.total_cycles, out.metrics.total_cycles);
        assert_eq!(back.metrics.faults, out.metrics.faults);
        assert_eq!(back.page_attrs, out.page_attrs);
        assert_eq!(back.attrs.export_pages(), out.attrs.export_pages());
        assert!(back.timing.resumed);
        assert!(back.events.is_none());
        // A different key misses even though the hash file exists for the
        // first one.
        assert!(store.load("другой-key").is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_files_degrade_to_miss() {
        let dir = tmp_dir("corrupt");
        let store = ResultStore::open(&dir).unwrap();
        fs::write(
            store.dir().join(format!("{:016x}.json", fnv1a64("k"))),
            "{ not json",
        )
        .unwrap();
        assert!(store.load("k").is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn hash_is_stable() {
        // FNV-1a reference value: hash("") = offset basis.
        assert_eq!(fnv1a64(""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a64("a"), fnv1a64("b"));
    }
}
