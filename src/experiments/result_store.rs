//! Content-addressed on-disk result store for resumable campaigns.
//!
//! Each completed cell is stored as one JSON file named by the FNV-1a hash
//! of the cell's *resume key* — a canonical string derived from
//! `(app, exp-config, system config, policy, observer, code version)`.
//! An interrupted `repro ... --resume` run loads completed cells from the
//! store instead of re-simulating them; because the simulator is
//! deterministic, the loaded output is exactly what a fresh run would have
//! produced, so resumed and uninterrupted runs render byte-identical
//! tables at any `--jobs`.
//!
//! Eligibility is decided by [`super::batch::CellSpec::resume_key`]:
//! cells with opaque policy factories, prefetchers, or per-cell tracing
//! are never stored (their outputs can't be keyed or fully reconstructed),
//! and the batch executor disables the store entirely while a global
//! trace writer is active (trace events are not persisted).
//!
//! Robustness: writes are atomic (uniquely named temp file + rename, so
//! any number of threads or processes may race on one key — the losers'
//! renames just replace equivalent content), and loads verify three
//! things about the file: the schema tag, an FNV-1a checksum over the
//! serialized payload (v3), and the full key (hash collisions degrade
//! to a re-run, never a wrong result). A file that fails any of those
//! checks — or does not parse at all — is **quarantined**: moved to a
//! `quarantine/` subdirectory so it is inspected at most once instead of
//! being re-parsed on every miss, and counted in [`ResultStore::counters`].
//! Files written under the previous `grit-result-store/v2` schema carry
//! no checksum and still load.
//!
//! The store can be bounded ([`ResultStore::open_with`], wired to
//! `repro --store-max-bytes`): after a save that pushes the *cached*
//! running size past the budget it deterministically evicts oldest-first
//! — by modification time, ties broken by file name — until the
//! directory fits. Loads bump the hit file's mtime (best effort), so
//! long-lived stores (the `repro serve` campaign service) converge to a
//! true LRU working set: an entry that is read often survives eviction
//! even if it was written long ago. The running size is maintained
//! incrementally; the directory is only fully rescanned on open and
//! after an eviction pass, so a hot save path is one `stat` + one
//! rename, not a directory walk.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::SystemTime;

use grit_metrics::{AttrGrid, IntervalSeries, PageAttrTracker};
use grit_trace::{CellTiming, Json, MetricsReport, StoreCounters};

use crate::runner::{RunObserver, RunOutput};

/// Schema tag of every store file; bump when the layout changes so stale
/// files are re-run instead of misparsed. v3: files carry an FNV-1a
/// checksum over the serialized payload, verified on load.
pub const STORE_SCHEMA: &str = "grit-result-store/v3";
/// The previous schema tag: same layout minus the checksum. Still
/// accepted by [`ResultStore::load`] so stores written by older builds
/// keep their contents.
pub const STORE_SCHEMA_V2: &str = "grit-result-store/v2";

/// Subdirectory (under the store root) holding files that failed an
/// integrity check on load.
pub const QUARANTINE_DIR: &str = "quarantine";

/// Distinguishes temp files written by racing threads of one process
/// (the process id alone is shared between them).
static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// FNV-1a 64-bit hash of the key string; the store's file name and the
/// payload checksum.
fn fnv1a64(key: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Process-shared traffic counters of one store directory; clones of a
/// [`ResultStore`] share them.
#[derive(Debug, Default)]
struct StoreStats {
    hits: AtomicU64,
    misses: AtomicU64,
    quarantined: AtomicU64,
    /// Full directory rescans performed (open + post-eviction); the
    /// incremental-size tests pin this so the hot save path can never
    /// silently regress to a walk per save.
    rescans: AtomicU64,
}

/// A directory of completed cell results, keyed by resume-key hash.
#[derive(Clone, Debug)]
pub struct ResultStore {
    dir: PathBuf,
    max_bytes: Option<u64>,
    stats: Arc<StoreStats>,
    /// Cached sum of result-file sizes, maintained incrementally across
    /// saves/quarantines and re-anchored by a full rescan on open and
    /// after every eviction pass. Only consulted when bounded; other
    /// processes sharing the directory drift it, which at worst delays
    /// an eviction pass until the next rescan re-anchors it.
    size_bytes: Arc<AtomicU64>,
}

impl ResultStore {
    /// Opens (creating if needed) an unbounded store rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open(dir: &Path) -> io::Result<Self> {
        ResultStore::open_with(dir, None)
    }

    /// Opens (creating if needed) a store rooted at `dir`, bounded to
    /// `max_bytes` of result files (`None` = unbounded). The budget is
    /// enforced after every save that pushes the running size past it,
    /// by oldest-first eviction.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open_with(dir: &Path, max_bytes: Option<u64>) -> io::Result<Self> {
        fs::create_dir_all(dir)?;
        let store = ResultStore {
            dir: dir.to_path_buf(),
            max_bytes,
            stats: Arc::new(StoreStats::default()),
            size_bytes: Arc::new(AtomicU64::new(0)),
        };
        if max_bytes.is_some() {
            store.rescan_size();
        }
        Ok(store)
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The quarantine directory (which may not exist yet).
    pub fn quarantine_dir(&self) -> PathBuf {
        self.dir.join(QUARANTINE_DIR)
    }

    /// The store's size budget in bytes, if bounded.
    pub fn max_bytes(&self) -> Option<u64> {
        self.max_bytes
    }

    /// Traffic counters since this store (or any clone of it) was
    /// opened: loads answered, loads that missed, and files quarantined.
    pub fn counters(&self) -> StoreCounters {
        StoreCounters {
            hits: self.stats.hits.load(Ordering::Relaxed),
            misses: self.stats.misses.load(Ordering::Relaxed),
            quarantined: self.stats.quarantined.load(Ordering::Relaxed),
        }
    }

    fn path_for(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{:016x}.json", fnv1a64(key)))
    }

    /// Loads the stored output for `key`, or `None` when absent or
    /// invalid. A present-but-invalid file (unparseable, bad checksum,
    /// wrong schema, or keyed by a colliding-but-different cell) is
    /// moved to `quarantine/` so it is never re-parsed; every failure
    /// mode degrades to "re-run the cell".
    pub fn load(&self, key: &str) -> Option<RunOutput> {
        let path = self.path_for(key);
        let Ok(text) = fs::read_to_string(&path) else {
            // Nothing on disk (the common cold miss): no file to blame.
            self.stats.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        match decode_checked(key, &text) {
            Some(out) => {
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                // LRU, not LRU-by-write: a hit refreshes the entry's
                // eviction age. Best effort — a racing evictor or a
                // read-only filesystem just leaves the old mtime.
                if let Ok(f) = fs::OpenOptions::new().append(true).open(&path) {
                    let _ = f.set_modified(SystemTime::now());
                }
                Some(out)
            }
            None => {
                self.quarantine(&path);
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Moves a failed file into the quarantine subdirectory (keeping its
    /// name) so it is inspected at most once. Racing quarantiners are
    /// harmless: one rename wins, the loser's failure is swallowed and
    /// not counted.
    fn quarantine(&self, path: &Path) {
        let Some(name) = path.file_name() else { return };
        let qdir = self.quarantine_dir();
        let _ = fs::create_dir_all(&qdir);
        let len = fs::metadata(path).map_or(0, |m| m.len());
        if fs::rename(path, qdir.join(name)).is_ok() {
            self.stats.quarantined.fetch_add(1, Ordering::Relaxed);
            if self.max_bytes.is_some() {
                let _ = self.size_bytes.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
                    Some(s.saturating_sub(len))
                });
            }
            eprintln!(
                "store: quarantined corrupt entry {} -> {}/",
                path.display(),
                QUARANTINE_DIR
            );
        }
    }

    /// Atomically persists a completed cell under `key`, then enforces
    /// the size budget. Concurrent writers — other threads of this
    /// process or other processes sharing the directory — may race on
    /// one key safely: each writes a uniquely named temp file
    /// (pid + per-process counter) and the rename is atomic, so the
    /// file is always one writer's complete output, never interleaved.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures (callers log and continue; a failed
    /// save only costs a future re-run).
    pub fn save(&self, key: &str, out: &RunOutput) -> io::Result<()> {
        let final_path = self.path_for(key);
        let tmp_path = final_path.with_extension(format!(
            "tmp-{}-{}",
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let encoded = encode_output(key, out).to_string();
        let new_len = encoded.len() as u64;
        fs::write(&tmp_path, encoded)?;
        // The rename may replace an equivalent earlier entry; account
        // for the delta, not the whole file.
        let old_len = fs::metadata(&final_path).map_or(0, |m| m.len());
        fs::rename(&tmp_path, &final_path)?;
        if self.max_bytes.is_some() {
            let _ = self.size_bytes.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
                Some(s.saturating_sub(old_len).saturating_add(new_len))
            });
            self.enforce_budget();
        }
        Ok(())
    }

    /// Re-anchors the cached running size with a full directory scan.
    fn rescan_size(&self) {
        self.stats.rescans.fetch_add(1, Ordering::Relaxed);
        let total = self.scan_files().iter().map(|(_, _, len)| len).sum();
        self.size_bytes.store(total, Ordering::Relaxed);
    }

    /// All result files as `(mtime, path, len)`. The quarantine
    /// subdirectory has no `.json` extension and is skipped.
    fn scan_files(&self) -> Vec<(SystemTime, PathBuf, u64)> {
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return Vec::new();
        };
        entries
            .flatten()
            .filter(|e| e.path().extension().is_some_and(|x| x == "json"))
            .filter_map(|e| {
                let meta = e.metadata().ok()?;
                let mtime = meta.modified().ok()?;
                Some((mtime, e.path(), meta.len()))
            })
            .collect()
    }

    /// Deletes result files oldest-first (modification time, ties broken
    /// by file name so the order is deterministic) until the store fits
    /// its budget. Only runs a directory scan when the cached size says
    /// the budget is broken. Failures are swallowed: a fat store costs
    /// disk, not correctness, and racing evictors may legitimately
    /// delete the same file.
    fn enforce_budget(&self) {
        let Some(budget) = self.max_bytes else { return };
        if self.size_bytes.load(Ordering::Relaxed) <= budget {
            return;
        }
        // The cache says we are over: rescan for ground truth (other
        // processes may have added or evicted files), evict, re-anchor.
        self.stats.rescans.fetch_add(1, Ordering::Relaxed);
        let mut files = self.scan_files();
        let mut total: u64 = files.iter().map(|(_, _, len)| len).sum();
        if total > budget {
            files.sort();
            for (_, path, len) in files {
                if total <= budget {
                    break;
                }
                let _ = fs::remove_file(&path);
                total = total.saturating_sub(len);
            }
        }
        self.size_bytes.store(total, Ordering::Relaxed);
    }

    #[cfg(test)]
    fn debug_rescans(&self) -> u64 {
        self.stats.rescans.load(Ordering::Relaxed)
    }
}

/// The canonical checksum input: the serialized payload object (the
/// four content fields, in fixed order). Built the same way at save
/// time (from the freshly encoded document) and at load time (from the
/// parsed one); [`Json`] printing is value-deterministic, so the two
/// texts agree exactly when the content does.
fn payload_text(v: &Json) -> Option<String> {
    Some(
        Json::Obj(vec![
            ("timing".into(), v.get("timing")?.clone()),
            ("metrics".into(), v.get("metrics")?.clone()),
            ("pages".into(), v.get("pages")?.clone()),
            ("observer".into(), v.get("observer")?.clone()),
        ])
        .to_string(),
    )
}

/// Parses, schema-checks, checksum-checks (v3) and key-checks one store
/// file. `None` means the file must not be served.
fn decode_checked(key: &str, text: &str) -> Option<RunOutput> {
    let json = Json::parse(text).ok()?;
    match json.get("schema")?.as_str()? {
        STORE_SCHEMA => {
            let expected = json.get("checksum")?.as_str()?;
            let actual = format!("{:016x}", fnv1a64(&payload_text(&json)?));
            if expected != actual {
                return None; // torn or bit-flipped payload
            }
        }
        STORE_SCHEMA_V2 => {} // pre-checksum file: key check only
        _ => return None,
    }
    if json.get("key")?.as_str()? != key {
        return None; // hash collision: treat as a miss
    }
    decode_output(&json)
}

fn series_to_json(s: &IntervalSeries) -> Json {
    Json::Obj(vec![
        ("interval_cycles".into(), Json::UInt(s.interval_cycles())),
        ("buckets".into(), Json::UInt(s.buckets() as u64)),
        (
            "rows".into(),
            Json::Arr(
                s.iter()
                    .map(|(_, row)| Json::Arr(row.iter().map(|&v| Json::UInt(v)).collect()))
                    .collect(),
            ),
        ),
    ])
}

fn series_from_json(v: &Json) -> Option<IntervalSeries> {
    let interval = v.get("interval_cycles")?.as_u64()?;
    let buckets = v.get("buckets")?.as_u64()? as usize;
    if interval == 0 || buckets == 0 {
        return None;
    }
    let mut rows = Vec::new();
    for row in v.get("rows")?.as_arr()? {
        let counts: Option<Vec<u64>> = row.as_arr()?.iter().map(Json::as_u64).collect();
        rows.push(counts?);
    }
    Some(IntervalSeries::from_rows(interval, buckets, rows))
}

fn grid_to_json(g: &AttrGrid) -> Json {
    let cells = (0..g.intervals())
        .map(|i| {
            Json::Arr((0..g.page_bins()).map(|b| Json::UInt(u64::from(g.get(i, b)))).collect())
        })
        .collect();
    Json::Obj(vec![
        ("intervals".into(), Json::UInt(g.intervals() as u64)),
        ("page_bins".into(), Json::UInt(g.page_bins() as u64)),
        ("cells".into(), Json::Arr(cells)),
    ])
}

fn grid_from_json(v: &Json) -> Option<AttrGrid> {
    let intervals = v.get("intervals")?.as_u64()? as usize;
    let page_bins = v.get("page_bins")?.as_u64()? as usize;
    if intervals == 0 || page_bins == 0 {
        return None;
    }
    let mut g = AttrGrid::new(intervals, page_bins);
    for (i, row) in v.get("cells")?.as_arr()?.iter().enumerate() {
        for (b, code) in row.as_arr()?.iter().enumerate() {
            g.mark(i, b, u8::try_from(code.as_u64()?).ok()?);
        }
    }
    Some(g)
}

fn opt_to_json<T>(v: &Option<T>, f: impl Fn(&T) -> Json) -> Json {
    match v {
        Some(x) => f(x),
        None => Json::Null,
    }
}

fn encode_output(key: &str, out: &RunOutput) -> Json {
    let pages = Json::Arr(
        out.attrs
            .export_pages()
            .into_iter()
            .map(|(vpn, bits, written, accesses)| {
                Json::Arr(vec![
                    Json::UInt(vpn),
                    Json::UInt(u64::from(bits)),
                    Json::Bool(written),
                    Json::UInt(accesses),
                ])
            })
            .collect(),
    );
    let observer = opt_to_json(&out.observer, |obs| {
        Json::Obj(vec![
            ("page_by_gpu".into(), series_to_json(&obs.page_by_gpu)),
            ("page_rw".into(), series_to_json(&obs.page_rw)),
            (
                "grid_private_shared".into(),
                opt_to_json(&obs.grid_private_shared, grid_to_json),
            ),
            (
                "grid_read_rw".into(),
                opt_to_json(&obs.grid_read_rw, grid_to_json),
            ),
            (
                "grid_interval_cycles".into(),
                Json::UInt(obs.grid_interval_cycles),
            ),
            (
                "scheme_timeline".into(),
                opt_to_json(&obs.scheme_timeline, series_to_json),
            ),
        ])
    });
    let mut doc = Json::Obj(vec![
        ("schema".into(), Json::Str(STORE_SCHEMA.into())),
        ("key".into(), Json::Str(key.into())),
        (
            "timing".into(),
            Json::Obj(vec![
                (
                    "build_seconds".into(),
                    Json::Float(out.timing.build_seconds),
                ),
                ("sim_seconds".into(), Json::Float(out.timing.sim_seconds)),
                (
                    "workload_cache_hit".into(),
                    Json::Bool(out.timing.workload_cache_hit),
                ),
            ]),
        ),
        (
            "metrics".into(),
            MetricsReport::from_metrics(&out.metrics).to_json(),
        ),
        ("pages".into(), pages),
        ("observer".into(), observer),
    ]);
    let checksum = format!(
        "{:016x}",
        fnv1a64(&payload_text(&doc).expect("encoded document carries all payload fields"))
    );
    if let Json::Obj(fields) = &mut doc {
        fields.push(("checksum".into(), Json::Str(checksum)));
    }
    doc
}

fn decode_output(v: &Json) -> Option<RunOutput> {
    let metrics = MetricsReport::from_json(v.get("metrics")?).ok()?.to_metrics();
    let mut pages = Vec::new();
    for row in v.get("pages")?.as_arr()? {
        let row = row.as_arr()?;
        if row.len() != 4 {
            return None;
        }
        pages.push((
            row[0].as_u64()?,
            u16::try_from(row[1].as_u64()?).ok()?,
            row[2].as_bool()?,
            row[3].as_u64()?,
        ));
    }
    let attrs = PageAttrTracker::from_exported(&pages);
    let observer = match v.get("observer")? {
        Json::Null => None,
        obs => Some(RunObserver {
            page_by_gpu: series_from_json(obs.get("page_by_gpu")?)?,
            page_rw: series_from_json(obs.get("page_rw")?)?,
            grid_private_shared: match obs.get("grid_private_shared")? {
                Json::Null => None,
                g => Some(grid_from_json(g)?),
            },
            grid_read_rw: match obs.get("grid_read_rw")? {
                Json::Null => None,
                g => Some(grid_from_json(g)?),
            },
            grid_interval_cycles: obs.get("grid_interval_cycles")?.as_u64()?,
            scheme_timeline: match obs.get("scheme_timeline")? {
                Json::Null => None,
                s => Some(series_from_json(s)?),
            },
        }),
    };
    let timing = v.get("timing")?;
    Some(RunOutput {
        page_attrs: attrs.summary(),
        attrs,
        metrics,
        observer,
        timing: CellTiming {
            build_seconds: timing.get("build_seconds")?.as_f64()?,
            sim_seconds: timing.get("sim_seconds")?.as_f64()?,
            workload_cache_hit: timing.get("workload_cache_hit")?.as_bool()?,
            resumed: true,
        },
        events: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{run_cell, ExpConfig, PolicyKind};
    use grit_workloads::App;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("grit-store-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn tiny_output() -> RunOutput {
        let exp = ExpConfig {
            scale: 0.02,
            intensity: 0.5,
            seed: 0x7E57,
        };
        run_cell(App::Bfs, PolicyKind::FirstTouch, &exp)
    }

    #[test]
    fn save_load_round_trips_a_real_run() {
        let out = tiny_output();
        let dir = tmp_dir("rt");
        let store = ResultStore::open(&dir).unwrap();
        store.save("some-key", &out).unwrap();
        let back = store.load("some-key").expect("stored result loads");
        assert_eq!(back.metrics.total_cycles, out.metrics.total_cycles);
        assert_eq!(back.metrics.faults, out.metrics.faults);
        assert_eq!(back.page_attrs, out.page_attrs);
        assert_eq!(back.attrs.export_pages(), out.attrs.export_pages());
        assert!(back.timing.resumed);
        assert!(back.events.is_none());
        // A different key misses even though the hash file exists for the
        // first one.
        assert!(store.load("другой-key").is_none());
        assert_eq!(store.counters().hits, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn v2_files_without_checksum_still_load() {
        let out = tiny_output();
        let dir = tmp_dir("v2");
        let store = ResultStore::open(&dir).unwrap();
        // Rewrite a fresh v3 file as its v2 equivalent: v2 schema tag,
        // no checksum field — exactly what an older build left behind.
        store.save("old-key", &out).unwrap();
        let path = store.path_for("old-key");
        let text = fs::read_to_string(&path).unwrap();
        let mut doc = Json::parse(&text).unwrap();
        if let Json::Obj(fields) = &mut doc {
            fields.retain(|(k, _)| k != "checksum");
            fields[0].1 = Json::Str(STORE_SCHEMA_V2.into());
        }
        fs::write(&path, doc.to_string()).unwrap();
        let back = store.load("old-key").expect("v2 file loads");
        assert_eq!(back.metrics.total_cycles, out.metrics.total_cycles);
        assert_eq!(
            store.counters().quarantined,
            0,
            "a valid v2 file is not corrupt"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_files_are_quarantined_exactly_once() {
        let out = tiny_output();
        let dir = tmp_dir("corrupt");
        let store = ResultStore::open(&dir).unwrap();

        // Three flavours of damage: not JSON at all, a truncated valid
        // file, and a single flipped payload byte (checksum catches it).
        fs::write(store.path_for("garbage"), "{ not json").unwrap();
        store.save("truncated", &out).unwrap();
        let tpath = store.path_for("truncated");
        let text = fs::read_to_string(&tpath).unwrap();
        fs::write(&tpath, &text[..text.len() / 2]).unwrap();
        store.save("bitflip", &out).unwrap();
        let bpath = store.path_for("bitflip");
        let flipped = fs::read_to_string(&bpath)
            .unwrap()
            .replace("\"total_cycles\":", "\"total_cycles\":1");
        fs::write(&bpath, flipped).unwrap();

        for key in ["garbage", "truncated", "bitflip"] {
            assert!(store.load(key).is_none(), "{key} must not be served");
        }
        assert_eq!(store.counters().quarantined, 3);
        let quarantined = fs::read_dir(store.quarantine_dir()).unwrap().count();
        assert_eq!(quarantined, 3, "all three damaged files moved aside");

        // Second pass: the files are gone from the main directory, so
        // the misses are plain cold misses — nothing is re-parsed or
        // re-quarantined.
        for key in ["garbage", "truncated", "bitflip"] {
            assert!(store.load(key).is_none());
        }
        assert_eq!(
            store.counters().quarantined,
            3,
            "quarantine happens exactly once"
        );
        assert_eq!(store.counters().misses, 6);

        // The slot is usable again: a fresh save round-trips.
        store.save("garbage", &out).unwrap();
        assert!(store.load("garbage").is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checksum_mismatch_never_serves_altered_content() {
        let out = tiny_output();
        let dir = tmp_dir("altered");
        let store = ResultStore::open(&dir).unwrap();
        store.save("k", &out).unwrap();
        // An "attacker" (or cosmic ray) that keeps the JSON well-formed
        // still loses: the payload no longer matches the checksum.
        let path = store.path_for("k");
        let text = fs::read_to_string(&path).unwrap();
        let tampered = text.replace("\"sim_seconds\":", "\"sim_seconds\":1e3,\"x\":");
        assert_ne!(tampered, text, "tamper point must exist");
        fs::write(&path, tampered).unwrap();
        assert!(store.load("k").is_none(), "tampered payload served");
        assert_eq!(store.counters().quarantined, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn hash_is_stable() {
        // FNV-1a reference value: hash("") = offset basis.
        assert_eq!(fnv1a64(""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a64("a"), fnv1a64("b"));
    }

    #[test]
    fn bounded_store_evicts_oldest_first() {
        let out = tiny_output();

        // Same-length keys give same-size files, so the budget math is
        // exact: measure one file, then allow room for two and a half.
        let probe_dir = tmp_dir("evict-probe");
        let probe = ResultStore::open(&probe_dir).unwrap();
        probe.save("key-0", &out).unwrap();
        let file_size = fs::read_dir(&probe_dir)
            .unwrap()
            .flatten()
            .next()
            .unwrap()
            .metadata()
            .unwrap()
            .len();
        let _ = fs::remove_dir_all(&probe_dir);

        let dir = tmp_dir("evict");
        let store = ResultStore::open_with(&dir, Some(file_size * 5 / 2)).unwrap();
        assert_eq!(store.max_bytes(), Some(file_size * 5 / 2));
        for key in ["key-1", "key-2", "key-3"] {
            store.save(key, &out).unwrap();
            // Distinct mtimes so "oldest" is well defined on coarse
            // filesystem clocks.
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        assert!(
            store.load("key-1").is_none(),
            "oldest entry evicted once the third save broke the budget"
        );
        assert!(store.load("key-2").is_some(), "newer entries survive");
        assert!(store.load("key-3").is_some(), "newest entry survives");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn hot_entries_survive_eviction() {
        let out = tiny_output();
        let probe_dir = tmp_dir("lru-probe");
        let probe = ResultStore::open(&probe_dir).unwrap();
        probe.save("key-0", &out).unwrap();
        let file_size = fs::read_dir(&probe_dir)
            .unwrap()
            .flatten()
            .next()
            .unwrap()
            .metadata()
            .unwrap()
            .len();
        let _ = fs::remove_dir_all(&probe_dir);

        let dir = tmp_dir("lru");
        let store = ResultStore::open_with(&dir, Some(file_size * 5 / 2)).unwrap();
        store.save("key-1", &out).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
        store.save("key-2", &out).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
        // key-1 is the older *write*, but it is read again — the hit
        // bumps its mtime past key-2's, so the write-cold key-2 is the
        // eviction victim when key-3 breaks the budget.
        assert!(store.load("key-1").is_some());
        std::thread::sleep(std::time::Duration::from_millis(20));
        store.save("key-3", &out).unwrap();
        assert!(
            store.load("key-1").is_some(),
            "a repeatedly-hit entry was evicted as if cold"
        );
        assert!(
            store.load("key-2").is_none(),
            "the cold entry is the victim"
        );
        assert!(store.load("key-3").is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bounded_saves_track_size_incrementally_without_rescans() {
        let out = tiny_output();
        let dir = tmp_dir("incr");
        // Budget far above 1000 entries: no save may trigger eviction,
        // so the only permitted rescan is the one at open. This is the
        // bench guard for the hot path — a regression back to
        // scan-per-save trips the counter, not a flaky timer.
        let store = ResultStore::open_with(&dir, Some(u64::MAX)).unwrap();
        assert_eq!(store.debug_rescans(), 1, "open anchors the size cache");
        for i in 0..1000 {
            store.save(&format!("key-{i:04}"), &out).unwrap();
        }
        assert_eq!(
            store.debug_rescans(),
            1,
            "saves under budget must not rescan the directory"
        );
        // The incremental size agrees with the filesystem.
        let actual: u64 = store.scan_files().iter().map(|(_, _, len)| len).sum();
        assert_eq!(store.size_bytes.load(Ordering::Relaxed), actual);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_writers_on_one_key_never_corrupt() {
        let out = tiny_output();
        let dir = tmp_dir("race");
        let store = ResultStore::open(&dir).unwrap();
        // Two writers race the same key repeatedly (the serve path: two
        // clients miss simultaneously, both re-run, both save). Whatever
        // the interleaving, the loser's rename replaces equivalent
        // content and every load in between sees one complete file.
        for _ in 0..25 {
            std::thread::scope(|s| {
                for _ in 0..2 {
                    s.spawn(|| store.save("shared-key", &out).unwrap());
                }
            });
            let back = store.load("shared-key").expect("file is never corrupt");
            assert_eq!(back.metrics.total_cycles, out.metrics.total_cycles);
        }
        // No temp-file litter: every writer's rename landed.
        let stray: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter(|e| e.path().extension().is_none_or(|x| x != "json"))
            .filter(|e| e.path().is_file())
            .collect();
        assert!(stray.is_empty(), "leftover temp files: {stray:?}");
        let _ = fs::remove_dir_all(&dir);
    }
}
