//! Fig. 5: per-interval distribution of the GPUs accessing one hot shared
//! page — producer–consumer sharing in C2D (one GPU per interval, handing
//! off) vs all-shared in ST (every GPU throughout).

use grit_metrics::Table;
use grit_sim::{PageId, Scheme, SimConfig};
use grit_workloads::App;

use super::{run_batch, CellResultExt, CellSpec, ExpConfig, PolicyKind};
use crate::runner::{ObserverConfig, RunOutput};

fn scout_cell(app: App, exp: &ExpConfig) -> CellSpec {
    // Pass 1: find the page to track (the paper picks "a certain page"
    // with significant sharing).
    CellSpec::new(app, PolicyKind::Static(Scheme::OnTouch), exp)
}

fn tracked_cell(app: App, scout: &RunOutput, exp: &ExpConfig) -> (PageId, CellSpec) {
    let page = scout.attrs.hottest(2).expect("workload must have at least one shared page");
    // Pass 2: rerun with the tracked-page observer. The interval shrinks
    // with the scaled runs so several intervals land inside the page's
    // active window (producer-consumer pages live in a narrow span).
    let interval = (scout.metrics.total_cycles / 192).max(1);
    let obs = ObserverConfig {
        track_page: Some(page),
        interval_cycles: interval,
        ..Default::default()
    };
    (page, scout_cell(app, exp).observed(obs))
}

fn table_for(app: App, page: PageId, out: &RunOutput) -> Table {
    let observer = out.observer.as_ref().expect("observer configured");
    let gpus = SimConfig::default().num_gpus;
    let cols: Vec<String> = (0..gpus).map(|g| format!("GPU{g}")).collect();
    let mut table = Table::new(
        format!("Fig 5: access mix over time for {} of {}", page, app.abbr()),
        cols,
    );
    for (i, fracs) in observer.page_by_gpu.fractions().into_iter().enumerate() {
        table.push_row(
            format!("interval{i}"),
            fracs.iter().map(|f| 100.0 * f).collect(),
        );
    }
    table
}

/// Per-interval GPU access fractions for the hottest shared page of `app`.
pub fn run_app(app: App, exp: &ExpConfig) -> Table {
    let scout = scout_cell(app, exp).run();
    let (page, cell) = tracked_cell(app, &scout, exp);
    table_for(app, page, &cell.run())
}

fn failed_table(app: App) -> Table {
    let mut t = Table::new(
        format!(
            "Fig 5: access mix over time for {} (cell failed)",
            app.abbr()
        ),
        vec!["error".into()],
    );
    t.push_row("cell", vec![f64::NAN]);
    t
}

/// Runs the figure for the paper's two exemplars, C2D and ST. Both
/// scout passes run as one batch, then both observed passes. An app whose
/// scout or observed run failed yields a one-cell error table instead of
/// aborting the figure.
pub fn run(exp: &ExpConfig) -> Vec<Table> {
    let apps = [App::C2d, App::St];
    let scouts = run_batch(&apps.map(|a| scout_cell(a, exp)));
    let picked: Vec<Option<(PageId, CellSpec)>> = apps
        .iter()
        .zip(&scouts)
        .map(|(app, scout)| scout.output().map(|s| tracked_cell(*app, s, exp)))
        .collect();
    let cells: Vec<CellSpec> = picked.iter().flatten().map(|(_, c)| c.clone()).collect();
    let outputs = run_batch(&cells);
    let mut out_iter = outputs.iter();
    apps.iter()
        .zip(&picked)
        .map(|(app, pick)| match pick {
            Some((page, _)) => match out_iter.next().and_then(CellResultExt::output) {
                Some(out) => table_for(*app, *page, out),
                None => failed_table(*app),
            },
            None => failed_table(*app),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn st_page_is_touched_by_multiple_gpus_over_time() {
        let t = run_app(App::St, &ExpConfig::quick());
        let mut gpus_seen = std::collections::HashSet::new();
        for (_, row) in t.rows() {
            for (g, &v) in row.iter().enumerate() {
                if v > 0.0 {
                    gpus_seen.insert(g);
                }
            }
        }
        assert!(gpus_seen.len() >= 2, "ST hot page must be shared over time");
    }

    #[test]
    fn rows_are_percentages() {
        let t = run_app(App::C2d, &ExpConfig::quick());
        for (_, row) in t.rows() {
            let sum: f64 = row.iter().sum();
            assert!(sum <= 100.0 + 1e-6);
        }
    }
}
