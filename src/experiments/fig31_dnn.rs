//! Fig. 31: GRIT on model-parallel DNN training — VGG16 and ResNet18 —
//! normalized to their on-touch baselines (paper: 15 % and 18 %).

use grit_metrics::Table;
use grit_sim::Scheme;
use grit_workloads::App;

use super::{run_grid, CellResultExt, ExpConfig, PolicyKind};

/// Runs the figure.
pub fn run(exp: &ExpConfig) -> Table {
    let mut table = Table::new(
        "Fig 31: DNN model parallelism (speedup over on-touch)",
        vec!["on-touch".into(), "grit".into()],
    );
    let policies = [PolicyKind::Static(Scheme::OnTouch), PolicyKind::GRIT];
    let rows = run_grid(&App::DNN, &policies, exp);
    for (app, runs) in App::DNN.into_iter().zip(&rows) {
        table.push_row(
            app.abbr(),
            vec![runs[0].metric(|_| 1.0), runs[0].cycles() / runs[1].cycles()],
        );
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grit_helps_dnn_training() {
        let t = run(&ExpConfig::quick());
        for (label, row) in t.rows() {
            assert!(
                row[1] > 0.95,
                "{label}: GRIT must not hurt DNNs, got {}",
                row[1]
            );
        }
        // At least one model shows a clear gain.
        assert!(t.rows().iter().any(|(_, r)| r[1] > 1.0));
    }
}
