//! Fig. 28: comparison to the combination of Griffin-DPC and Trans-FW
//! (fewer migrations + cheaper fault handling), normalized to the
//! combination. The paper reports GRIT 18 % ahead: GRIT removes remote
//! accesses and migrations that Trans-FW only makes cheaper.

use grit_baselines::apply_transfw;
use grit_metrics::Table;
use grit_sim::SimConfig;

use super::{run_batch, table2_apps, CellResultExt, CellSpec, ExpConfig, PolicyKind};

/// Runs the figure.
pub fn run(exp: &ExpConfig) -> Table {
    let mut combo_cfg = SimConfig::default();
    apply_transfw(&mut combo_cfg);
    let mut table = Table::new(
        "Fig 28: GRIT vs Griffin-DPC + Trans-FW (speedup over the combination)",
        vec!["dpc+transfw".into(), "grit".into()],
    );
    let cells: Vec<CellSpec> = table2_apps()
        .into_iter()
        .flat_map(|app| {
            [
                CellSpec::new(app, PolicyKind::GriffinDpc, exp).with_cfg(combo_cfg.clone()),
                CellSpec::new(app, PolicyKind::GRIT, exp),
            ]
        })
        .collect();
    let outputs = run_batch(&cells);
    for (app, chunk) in table2_apps().into_iter().zip(outputs.chunks(2)) {
        table.push_row(
            app.abbr(),
            vec![
                chunk[0].metric(|_| 1.0),
                chunk[0].cycles() / chunk[1].cycles(),
            ],
        );
    }
    table.push_geomean_row();
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grit_beats_the_combination_on_average() {
        // Adaptation amortizes with run length; use the calibrated default.
        let t = run(&ExpConfig::default());
        let g = t.cell("GEOMEAN", "grit").unwrap();
        assert!(g > 1.0, "GRIT must beat Griffin-DPC+Trans-FW: {g}");
    }
}
