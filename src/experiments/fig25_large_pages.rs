//! Fig. 25: GRIT with 2 MB pages and enlarged inputs, normalized to the
//! 2 MB on-touch baseline. Large pages mix read and read-write data inside
//! one translation unit (false sharing), so GRIT's edge shrinks relative
//! to the 4 KB configuration (§VI-B3: 23 % vs 60 %).

use grit_metrics::Table;
use grit_sim::{Scheme, SimConfig, PAGE_SIZE_2M};

use super::{run_batch, table2_apps, CellResultExt, CellSpec, ExpConfig, PolicyKind};

/// Input enlargement factor (the paper grows footprints to 0.5–3 GB to
/// keep a meaningful number of 2 MB pages).
pub const INPUT_ENLARGEMENT: f64 = 16.0;

/// Runs the figure.
pub fn run(exp: &ExpConfig) -> Table {
    let cfg = SimConfig {
        page_size: PAGE_SIZE_2M,
        ..SimConfig::default()
    };
    let big = ExpConfig {
        scale: exp.scale * INPUT_ENLARGEMENT,
        ..*exp
    };
    let mut table = Table::new(
        "Fig 25: 2MB pages with enlarged inputs (speedup over 2MB on-touch)",
        vec!["on-touch".into(), "grit".into()],
    );
    let policies = [PolicyKind::Static(Scheme::OnTouch), PolicyKind::GRIT];
    let cells: Vec<CellSpec> = table2_apps()
        .into_iter()
        .flat_map(|app| {
            let cfg = cfg.clone();
            policies
                .into_iter()
                .map(move |p| CellSpec::new(app, p, &big).with_cfg(cfg.clone()))
        })
        .collect();
    let outputs = run_batch(&cells);
    for (app, chunk) in table2_apps().into_iter().zip(outputs.chunks(policies.len())) {
        let base = chunk[0].cycles();
        table.push_row(
            app.abbr(),
            vec![chunk[0].metric(|_| 1.0), base / chunk[1].cycles()],
        );
    }
    table.push_geomean_row();
    table
}

/// Convenience: the 4 KB-page GRIT-vs-on-touch average for the same
/// enlarged inputs, used to show the 2 MB edge is smaller.
pub fn gain_4k(exp: &ExpConfig) -> f64 {
    let big = ExpConfig {
        scale: exp.scale * INPUT_ENLARGEMENT / 8.0,
        ..*exp
    };
    let policies = [PolicyKind::Static(Scheme::OnTouch), PolicyKind::GRIT];
    let cells: Vec<CellSpec> = table2_apps()
        .into_iter()
        .flat_map(|app| policies.into_iter().map(move |p| CellSpec::new(app, p, &big)))
        .collect();
    let outputs = run_batch(&cells);
    let speedups: Vec<f64> = outputs
        .chunks(policies.len())
        .map(|chunk| chunk[0].cycles() / chunk[1].cycles())
        .collect();
    grit_metrics::geomean(&speedups)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grit_still_helps_with_2mb_pages() {
        let t = run(&ExpConfig::quick());
        let g = t.cell("GEOMEAN", "grit").unwrap();
        assert!(g > 1.0, "GRIT must retain a gain with 2MB pages: {g}");
    }

    #[test]
    fn large_pages_reduce_the_gain_versus_4kb() {
        // The §VI-B3 claim: false sharing inside 2 MB translation units
        // shrinks GRIT's edge relative to the 4 KB configuration.
        let exp = ExpConfig::quick();
        let t = run(&exp);
        let gain_2m = t.cell("GEOMEAN", "grit").unwrap();
        let gain_4kb = gain_4k(&exp);
        assert!(
            gain_2m < gain_4kb,
            "2MB gain ({gain_2m}) must trail the 4KB gain ({gain_4kb})"
        );
    }
}
