//! Extension study: placement policies under injected hardware faults.
//!
//! The paper evaluates GRIT on healthy hardware; this study asks how
//! gracefully each policy degrades when the node gets sick. Three
//! deterministic fault scenarios from `grit-inject` — whole-fabric
//! bandwidth degradation, transient full-fabric outages, and ECC frame
//! retirement — are swept against GPU count with GRIT, on-touch and
//! first-touch over the Table II applications, through the resilient
//! batch harness (so `--jobs`, `--resume` and `run_report.json` all
//! apply).
//!
//! The table reports, per (policy, scenario) row and GPU-count column,
//! the geomean slowdown relative to the *same policy on healthy
//! hardware* — so the value isolates how much of the policy's
//! performance survives the fault, not the fault's raw cost.

use grit_metrics::{geomean, Table};
use grit_sim::{InjectConfig, Scheme, SimConfig};
use grit_trace::ResilienceReport;
use grit_workloads::App;

use super::{run_batch, table2_apps, CellResultExt, CellSpec, ExpConfig, PolicyKind, PolicySpec};
use crate::runner::RunOutput;

/// GPU counts swept against every scenario.
pub const GPU_COUNTS: [usize; 3] = [2, 4, 8];

/// The fault scenarios, as GPU-count-independent inject specs
/// (`wire=*` targets every wire of whatever fabric the cell builds;
/// `pct=` scales retirement to the GPU's actual capacity).
pub const SCENARIOS: [(&str, &str); 4] = [
    ("none", ""),
    // Every wire runs at a quarter of nominal bandwidth for the bulk of
    // the run.
    ("degraded", "degrade@50000:wire=*:frac=0.25:for=1000000000"),
    // Two transient full-fabric outages: migrations block, retry, and
    // fall back while the windows last.
    (
        "outage",
        "outage@50000:wire=*:for=300000;outage@1000000:wire=*:for=300000",
    ),
    // ECC retires 30 % of two GPUs' DRAM frames early in the run.
    (
        "retirement",
        "retire@100000:gpu=0:pct=30;retire@200000:gpu=1:pct=30",
    ),
];

/// The study's outputs.
pub struct ResilienceStudy {
    /// Geomean slowdown vs the same policy on healthy hardware, one row
    /// per `policy/scenario`, one column per GPU count.
    pub slowdown: Table,
    /// Aggregated fault-injection outcome counters over every injected
    /// run, one [`ResilienceReport`] per scenario (scenario `none` stays
    /// all-zero).
    pub counters: Vec<(&'static str, ResilienceReport)>,
}

fn policies() -> [(&'static str, PolicyKind); 3] {
    [
        ("first-touch", PolicyKind::FirstTouch),
        ("on-touch", PolicyKind::Static(Scheme::OnTouch)),
        ("grit", PolicyKind::GRIT),
    ]
}

/// The resilience counters of one run (all-zero when uninjected).
fn resilience_of(o: &RunOutput) -> ResilienceReport {
    let aux: Vec<(String, Vec<f64>)> =
        o.metrics.aux.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
    ResilienceReport::from_aux(&aux)
}

fn add(acc: &mut ResilienceReport, r: ResilienceReport) {
    acc.faults_injected += r.faults_injected;
    acc.recoveries += r.recoveries;
    acc.frames_retired += r.frames_retired;
    acc.pages_force_evicted += r.pages_force_evicted;
    acc.storm_stalled_faults += r.storm_stalled_faults;
    acc.migrations_blocked += r.migrations_blocked;
    acc.migration_retries += r.migration_retries;
    acc.retry_successes += r.retry_successes;
    acc.fallback_remote += r.fallback_remote;
    acc.host_staged += r.host_staged;
    acc.invariant_checks += r.invariant_checks;
}

/// Runs the sweep over an explicit app set and GPU counts (tests shrink
/// both; [`run`] uses the full Table II set).
pub fn study(apps: &[App], gpu_counts: &[usize], exp: &ExpConfig) -> ResilienceStudy {
    // Cells are built literally (not via `CellSpec::new`) so each keeps
    // its explicit fault schedule even under an `--inject` global
    // override.
    let cell = |app: App, policy: PolicyKind, gpus: usize, spec: &str| CellSpec {
        app,
        policy: PolicySpec::Kind(policy),
        exp: *exp,
        cfg: SimConfig {
            inject: InjectConfig::parse(spec).expect("scenario specs are valid"),
            ..SimConfig::with_gpus(gpus)
        },
        observer: None,
        prefetcher: None,
        trace: None,
    };
    let mut cells = Vec::new();
    for (_, spec) in SCENARIOS {
        for &gpus in gpu_counts {
            for &app in apps {
                for (_, policy) in policies() {
                    cells.push(cell(app, policy, gpus, spec));
                }
            }
        }
    }
    let outputs = run_batch(&cells);

    let cols: Vec<String> = gpu_counts.iter().map(|n| format!("{n} GPUs")).collect();
    let mut slowdown = Table::new(
        "ext-resilience: geomean slowdown vs same-policy healthy run",
        cols,
    );
    // Chunk layout mirrors the declaration loops: per (scenario, gpus),
    // `apps.len()` consecutive policy triples.
    let per_combo = apps.len() * policies().len();
    let per_scenario = per_combo * gpu_counts.len();
    let healthy = &outputs[..per_scenario];
    let mut counters: Vec<(&'static str, ResilienceReport)> = Vec::new();
    for (s, (scenario, _)) in SCENARIOS.iter().enumerate() {
        let block = &outputs[s * per_scenario..(s + 1) * per_scenario];
        let mut acc = ResilienceReport::default();
        for out in block {
            if let Some(o) = out.output() {
                add(&mut acc, resilience_of(o));
            }
        }
        counters.push((scenario, acc));
        if s == 0 {
            continue; // the healthy scenario is the baseline, ratio 1.
        }
        for (p, (pname, _)) in policies().iter().enumerate() {
            let mut row = Vec::with_capacity(gpu_counts.len());
            for (g, _) in gpu_counts.iter().enumerate() {
                let per_app: Vec<f64> = (0..apps.len())
                    .map(|a| {
                        let idx = g * per_combo + a * policies().len() + p;
                        block[idx].cycles() / healthy[idx].cycles()
                    })
                    .collect();
                row.push(geomean(&per_app));
            }
            slowdown.push_row(format!("{pname}/{scenario}"), row);
        }
    }
    ResilienceStudy { slowdown, counters }
}

/// Runs the full study: every scenario × [`GPU_COUNTS`] × Table II apps.
pub fn run(exp: &ExpConfig) -> ResilienceStudy {
    study(&table2_apps(), &GPU_COUNTS, exp)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExpConfig {
        ExpConfig {
            scale: 0.02,
            intensity: 0.5,
            seed: 0xFA01,
        }
    }

    #[test]
    fn faults_slow_runs_down_but_never_break_them() {
        let s = study(&[App::Bfs, App::Fir], &[4], &tiny());
        for (policy, _) in policies() {
            for scenario in ["degraded", "outage", "retirement"] {
                let v = s.slowdown.cell(&format!("{policy}/{scenario}"), "4 GPUs").unwrap();
                assert!(v.is_finite() && v > 0.0, "{policy}/{scenario}: {v}");
            }
        }
        // Whole-fabric degradation must cost something somewhere.
        let d = s.slowdown.cell("on-touch/degraded", "4 GPUs").unwrap();
        assert!(d > 1.0, "quarter-bandwidth wires must slow on-touch: {d}");
    }

    #[test]
    fn every_blocked_migration_resolves_in_every_scenario() {
        let s = study(&[App::Bfs], &[2, 4], &tiny());
        let outage = s.counters.iter().find(|(n, _)| *n == "outage").unwrap().1;
        assert!(outage.faults_injected > 0, "outage transitions must fire");
        assert!(
            outage.all_blocked_resolved(),
            "blocked migrations must resolve: {outage:?}"
        );
        let none = s.counters.iter().find(|(n, _)| *n == "none").unwrap().1;
        assert_eq!(
            (none.faults_injected, none.migrations_blocked),
            (0, 0),
            "healthy runs must stay untouched"
        );
        let ret = s.counters.iter().find(|(n, _)| *n == "retirement").unwrap().1;
        assert!(ret.frames_retired > 0, "retirement must shrink DRAM");
    }
}
