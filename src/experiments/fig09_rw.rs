//! Fig. 9: percentage of accesses going to read pages vs read-write pages,
//! per application.

use grit_metrics::Table;
use grit_sim::Scheme;

use super::{run_batch, table2_apps, CellResultExt, CellSpec, ExpConfig, PolicyKind};

/// Runs the figure.
pub fn run(exp: &ExpConfig) -> Table {
    let mut table = Table::new(
        "Fig 9: accesses to read vs read-write pages (%)",
        vec![
            "read-pages".into(),
            "rw-pages".into(),
            "acc-read".into(),
            "acc-rw".into(),
            "shared-rw-pages".into(),
        ],
    );
    let cells: Vec<CellSpec> = table2_apps()
        .into_iter()
        .map(|app| CellSpec::new(app, PolicyKind::Static(Scheme::OnTouch), exp))
        .collect();
    let outputs = run_batch(&cells);
    for (app, out) in table2_apps().into_iter().zip(&outputs) {
        let row = match out.output() {
            Some(o) => {
                let s = o.page_attrs;
                vec![
                    100.0 * (1.0 - s.read_write_page_frac()),
                    100.0 * s.read_write_page_frac(),
                    100.0 * (1.0 - s.read_write_access_frac()),
                    100.0 * s.read_write_access_frac(),
                    100.0 * s.shared_read_write_frac(),
                ]
            }
            None => vec![f64::NAN; 5],
        };
        table.push_row(app.abbr(), row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_intensity_matches_paper() {
        let t = run(&ExpConfig::quick());
        // BFS and GEMM are read-dominated (substantial read-shared pages).
        assert!(t.cell("BFS", "acc-read").unwrap() > 50.0);
        assert!(t.cell("GEMM", "acc-read").unwrap() > 40.0);
        // BS, ST are write-heavy (page duplication unprofitable).
        assert!(t.cell("BS", "acc-rw").unwrap() > 60.0);
        assert!(t.cell("ST", "acc-rw").unwrap() > 60.0);
    }

    #[test]
    fn shared_rw_ranking_matches_section_6a() {
        // §VI-A: ST, BS, C2D have significant shared read-write pages
        // (99 %, 56 %, 42 %); FIR has essentially none.
        let t = run(&ExpConfig::quick());
        let st = t.cell("ST", "shared-rw-pages").unwrap();
        let fir = t.cell("FIR", "shared-rw-pages").unwrap();
        assert!(st > 50.0, "ST shared-RW {st}");
        assert!(fir < 20.0, "FIR shared-RW {fir}");
    }
}
