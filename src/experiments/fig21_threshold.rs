//! Fig. 21: fault-threshold sensitivity (2/4/8/16), normalized to on-touch.
//! The paper reports 53 % / 60 % / 59 % / 48 % average improvements —
//! saturating at threshold 4.

use grit_metrics::Table;
use grit_sim::Scheme;

use super::{run_grid, table2_apps, CellResultExt, ExpConfig, PolicyKind};

/// Thresholds swept by the figure.
pub const THRESHOLDS: [u8; 4] = [2, 4, 8, 16];

/// Runs the figure.
pub fn run(exp: &ExpConfig) -> Table {
    let cols: Vec<String> = THRESHOLDS.iter().map(|t| format!("t={t}")).collect();
    let mut table = Table::new(
        "Fig 21: fault-threshold sensitivity (speedup over on-touch)",
        cols,
    );
    let mut policies = vec![PolicyKind::Static(Scheme::OnTouch)];
    policies.extend(THRESHOLDS.iter().map(|&t| PolicyKind::Grit {
        threshold: t,
        pa_cache: true,
        nap: true,
    }));
    let rows = run_grid(&table2_apps(), &policies, exp);
    for (app, runs) in table2_apps().into_iter().zip(&rows) {
        let base = runs[0].cycles();
        let row: Vec<f64> = runs[1..].iter().map(|r| base / r.cycles()).collect();
        table.push_row(app.abbr(), row);
    }
    table.push_geomean_row();
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_4_is_near_optimal() {
        let t = run(&ExpConfig::quick());
        let means: Vec<f64> = THRESHOLDS
            .iter()
            .map(|th| t.cell("GEOMEAN", &format!("t={th}")).unwrap())
            .collect();
        let best = means.iter().cloned().fold(f64::MIN, f64::max);
        // The default threshold (4) must be within a few percent of the
        // best of the sweep (paper: the gain saturates at 4).
        assert!(means[1] >= 0.93 * best, "t=4 {} vs best {best}", means[1]);
        // A very large threshold delays adaptation and loses performance
        // relative to the best setting.
        assert!(means[3] <= best + 1e-9);
    }
}
