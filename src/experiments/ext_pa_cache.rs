//! Extension ablation (beyond the paper): PA-Cache capacity sweep.
//!
//! The paper fixes the PA-Cache at 64 entries and reports its area as
//! negligible; this sweep justifies the choice — a small cache already
//! absorbs nearly all PA-Table traffic because fault bursts are highly
//! page-local, and growing it past 64 entries buys almost nothing.

use grit_metrics::Table;
use grit_sim::Scheme;

use super::{run_grid, table2_apps, CellResultExt, ExpConfig, PolicyKind};

/// PA-Cache capacities swept (entries; 4-way sets).
pub const CAPACITIES: [usize; 4] = [16, 64, 256, 1024];

/// Runs the sweep: speedup over on-touch per capacity, plus the no-cache
/// ablation.
pub fn run(exp: &ExpConfig) -> Table {
    let mut cols: Vec<String> = vec!["no-cache".into()];
    cols.extend(CAPACITIES.iter().map(|c| format!("{c}e")));
    let mut table = Table::new(
        "Extension: PA-Cache capacity sweep (speedup over on-touch)",
        cols,
    );
    let mut policies = vec![
        PolicyKind::Static(Scheme::OnTouch),
        PolicyKind::Grit {
            threshold: 4,
            pa_cache: false,
            nap: true,
        },
    ];
    policies.extend(CAPACITIES.iter().map(|&entries| PolicyKind::GritWithCache { entries }));
    let rows = run_grid(&table2_apps(), &policies, exp);
    for (app, runs) in table2_apps().into_iter().zip(&rows) {
        let base = runs[0].cycles();
        let row: Vec<f64> = runs[1..].iter().map(|r| base / r.cycles()).collect();
        table.push_row(app.abbr(), row);
    }
    table.push_geomean_row();
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixty_four_entries_suffice() {
        let t = run(&ExpConfig::quick());
        let at_64 = t.cell("GEOMEAN", "64e").unwrap();
        let at_1024 = t.cell("GEOMEAN", "1024e").unwrap();
        let no_cache = t.cell("GEOMEAN", "no-cache").unwrap();
        // The paper-sized cache captures essentially all of the benefit...
        assert!(
            at_64 >= 0.98 * at_1024,
            "64 entries must be within 2% of 1024: {at_64} vs {at_1024}"
        );
        // ...and having a cache is at least as good as not having one.
        assert!(at_64 >= 0.99 * no_cache, "{at_64} vs no-cache {no_cache}");
    }
}
