//! Figs. 6–8: page-attribute-over-time grids. Fig. 6 shows private/shared
//! per page bin over time for GEMM, Fig. 7 read/read-write for GEMM,
//! Fig. 8 private/shared for ST. The load-bearing observation (§IV-C) is
//! that *neighboring pages share attributes* — quantified here as the
//! horizontal neighbor-agreement of each grid.

use grit_metrics::{AttrGrid, Table};
use grit_sim::Scheme;
use grit_workloads::App;

use super::{run_batch, CellResultExt, CellSpec, ExpConfig, PolicyKind};
use crate::runner::{ObserverConfig, RunOutput};

/// Grids for one application.
pub struct AppGrids {
    /// The application.
    pub app: App,
    /// Private(1)/shared(2) grid.
    pub private_shared: AttrGrid,
    /// Read(1)/read-write(2) grid.
    pub read_rw: AttrGrid,
}

fn scout_cell(app: App, exp: &ExpConfig) -> CellSpec {
    CellSpec::new(app, PolicyKind::Static(Scheme::OnTouch), exp)
}

fn grid_cell(app: App, scout: &RunOutput, exp: &ExpConfig, bins: usize) -> CellSpec {
    // The scout run sizes the 50 intervals to the execution length.
    let interval = (scout.metrics.total_cycles / 50).max(1);
    let obs = ObserverConfig {
        track_page: None,
        interval_cycles: interval,
        grid_page_bins: bins,
        grid_intervals: 50,
        scheme_timeline: false,
    };
    scout_cell(app, exp).observed(obs)
}

fn grids_from(app: App, out: &RunOutput) -> AppGrids {
    let observer = out.observer.as_ref().expect("grids configured");
    AppGrids {
        app,
        private_shared: observer.grid_private_shared.clone().expect("ps grid"),
        read_rw: observer.grid_read_rw.clone().expect("rw grid"),
    }
}

/// Records the grids for `app` with `bins` page bins.
pub fn grids_for(app: App, exp: &ExpConfig, bins: usize) -> AppGrids {
    let scout = scout_cell(app, exp).run();
    grids_from(app, &grid_cell(app, &scout, exp, bins).run())
}

/// Runs Figs. 6–8 and reports neighbor agreement plus attribute mix.
/// Each distinct application records its grids once (Figs. 6 and 7 read
/// the same GEMM run), and the scout/grid passes run batched.
pub fn run(exp: &ExpConfig) -> Table {
    let apps = [App::Gemm, App::St];
    let scouts = run_batch(&apps.map(|a| scout_cell(a, exp)));
    let picked: Vec<Option<CellSpec>> = apps
        .iter()
        .zip(&scouts)
        .map(|(app, scout)| scout.output().map(|s| grid_cell(*app, s, exp, 64)))
        .collect();
    let cells: Vec<CellSpec> = picked.iter().flatten().cloned().collect();
    let outputs = run_batch(&cells);
    let mut out_iter = outputs.iter();
    let mut grids = apps.iter().zip(&picked).map(|(app, pick)| {
        pick.as_ref()
            .and_then(|_| out_iter.next())
            .and_then(CellResultExt::output)
            .map(|o| grids_from(*app, o))
    });
    let gemm = grids.next().flatten();
    let st = grids.next().flatten();

    let mut table = Table::new(
        "Figs 6-8: page-attribute grids (neighbor agreement & attribute mix)",
        vec![
            "neighbor-agreement".into(),
            "frac-attr-1".into(),
            "frac-attr-2".into(),
        ],
    );
    for (label, grid) in [
        (
            "GEMM private/shared (Fig 6)",
            gemm.as_ref().map(|g| &g.private_shared),
        ),
        (
            "GEMM read/read-write (Fig 7)",
            gemm.as_ref().map(|g| &g.read_rw),
        ),
        (
            "ST private/shared (Fig 8)",
            st.as_ref().map(|g| &g.private_shared),
        ),
    ] {
        let row = match grid {
            Some(g) => vec![
                g.neighbor_agreement(),
                g.frac_of_touched(1),
                g.frac_of_touched(2),
            ],
            None => vec![f64::NAN; 3],
        };
        table.push_row(label, row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neighboring_pages_agree() {
        // The §IV-C claim GRIT's NAP is built on: neighboring pages show
        // the same attributes the vast majority of the time.
        let t = run(&ExpConfig::quick());
        for (label, row) in t.rows() {
            assert!(
                row[0] > 0.8,
                "{label}: neighbor agreement {} too low",
                row[0]
            );
        }
    }

    #[test]
    fn gemm_has_both_attribute_classes() {
        let g = grids_for(App::Gemm, &ExpConfig::quick(), 64);
        assert!(
            g.private_shared.frac_of_touched(1) > 0.05,
            "private pages exist"
        );
        assert!(
            g.private_shared.frac_of_touched(2) > 0.05,
            "shared pages exist"
        );
    }
}
