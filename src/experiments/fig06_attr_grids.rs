//! Figs. 6–8: page-attribute-over-time grids. Fig. 6 shows private/shared
//! per page bin over time for GEMM, Fig. 7 read/read-write for GEMM,
//! Fig. 8 private/shared for ST. The load-bearing observation (§IV-C) is
//! that *neighboring pages share attributes* — quantified here as the
//! horizontal neighbor-agreement of each grid.

use grit_metrics::{AttrGrid, Table};
use grit_sim::{Scheme, SimConfig};
use grit_workloads::App;

use super::{run_cell, run_cell_with, ExpConfig, PolicyKind};
use crate::runner::ObserverConfig;

/// Grids for one application.
pub struct AppGrids {
    /// The application.
    pub app: App,
    /// Private(1)/shared(2) grid.
    pub private_shared: AttrGrid,
    /// Read(1)/read-write(2) grid.
    pub read_rw: AttrGrid,
}

/// Records the grids for `app` with `bins` page bins.
pub fn grids_for(app: App, exp: &ExpConfig, bins: usize) -> AppGrids {
    // Scout run sizes the 50 intervals to the execution length.
    let scout = run_cell(app, PolicyKind::Static(Scheme::OnTouch), exp);
    let interval = (scout.metrics.total_cycles / 50).max(1);
    let obs = ObserverConfig {
        track_page: None,
        interval_cycles: interval,
        grid_page_bins: bins,
        grid_intervals: 50,
        scheme_timeline: false,
    };
    let out = run_cell_with(
        app,
        PolicyKind::Static(Scheme::OnTouch),
        exp,
        SimConfig::default(),
        Some(obs),
    );
    let observer = out.observer.expect("grids configured");
    AppGrids {
        app,
        private_shared: observer.grid_private_shared.expect("ps grid"),
        read_rw: observer.grid_read_rw.expect("rw grid"),
    }
}

/// Runs Figs. 6–8 and reports neighbor agreement plus attribute mix.
pub fn run(exp: &ExpConfig) -> Table {
    let mut table = Table::new(
        "Figs 6-8: page-attribute grids (neighbor agreement & attribute mix)",
        vec![
            "neighbor-agreement".into(),
            "frac-attr-1".into(),
            "frac-attr-2".into(),
        ],
    );
    for (label, grid) in [
        ("GEMM private/shared (Fig 6)", grids_for(App::Gemm, exp, 64).private_shared),
        ("GEMM read/read-write (Fig 7)", grids_for(App::Gemm, exp, 64).read_rw),
        ("ST private/shared (Fig 8)", grids_for(App::St, exp, 64).private_shared),
    ] {
        table.push_row(
            label,
            vec![grid.neighbor_agreement(), grid.frac_of_touched(1), grid.frac_of_touched(2)],
        );
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neighboring_pages_agree() {
        // The §IV-C claim GRIT's NAP is built on: neighboring pages show
        // the same attributes the vast majority of the time.
        let t = run(&ExpConfig::quick());
        for (label, row) in t.rows() {
            assert!(row[0] > 0.8, "{label}: neighbor agreement {} too low", row[0]);
        }
    }

    #[test]
    fn gemm_has_both_attribute_classes() {
        let g = grids_for(App::Gemm, &ExpConfig::quick(), 64);
        assert!(g.private_shared.frac_of_touched(1) > 0.05, "private pages exist");
        assert!(g.private_shared.frac_of_touched(2) > 0.05, "shared pages exist");
    }
}
