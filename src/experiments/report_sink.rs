//! Process-wide run-report collector.
//!
//! The `repro` binary runs figure drivers that know nothing about report
//! files; this module gives the batch executor a place to deposit what it
//! observed (cells, timings, cache behaviour) so that one `run_report.json`
//! / `BENCH_run.json` can be assembled after all targets finish. Recording
//! is off by default and every `record_*` call is a cheap no-op until
//! [`enable`] flips the switch, so figure drivers and tests pay nothing.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use grit_sim::CellError;
use grit_trace::{
    BatchProfile, BenchSummary, CellReport, CycleProfile, HeadlineSpeedups, MetricsReport,
    PhaseEntry, ProfileReport, RunReport, SeriesReport, SpeculationReport, StoreCounters,
    TargetTiming,
};

use crate::runner::RunOutput;

use super::batch::CellSpec;
use super::ExpConfig;

static ENABLED: AtomicBool = AtomicBool::new(false);

struct CollectorState {
    targets: Vec<TargetTiming>,
    batches: Vec<BatchProfile>,
    cells: Vec<CellReport>,
    headline: Option<HeadlineSpeedups>,
    fig18_fault_geomean: Option<f64>,
    store: StoreCounters,
}

static STATE: Mutex<CollectorState> = Mutex::new(CollectorState {
    targets: Vec::new(),
    batches: Vec::new(),
    cells: Vec::new(),
    headline: None,
    fig18_fault_geomean: None,
    store: StoreCounters {
        hits: 0,
        misses: 0,
        quarantined: 0,
    },
});

fn state() -> std::sync::MutexGuard<'static, CollectorState> {
    STATE.lock().expect("report collector poisoned")
}

/// Turns recording on for the rest of the process (the `repro` binary
/// calls this when `--metrics-out` or `--emit-bench-json` is given).
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Whether [`enable`] has been called.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Records one executed cell. Called by the batch executor in declaration
/// order, so `seq` doubles as the trace-stream cell sequence number.
pub fn record_cell(spec: &CellSpec, out: &RunOutput) {
    if !enabled() {
        return;
    }
    let mut series = Vec::new();
    if let Some(obs) = &out.observer {
        series.push(SeriesReport::from_series("page_by_gpu", &obs.page_by_gpu));
        series.push(SeriesReport::from_series("page_rw", &obs.page_rw));
        if let Some(timeline) = &obs.scheme_timeline {
            series.push(SeriesReport::from_series("scheme_timeline", timeline));
        }
    }
    let mut st = state();
    let seq = st.cells.len() as u64;
    st.cells.push(CellReport {
        seq,
        app: spec.app.to_string(),
        policy: spec.policy_label(),
        num_gpus: spec.cfg.num_gpus as u64,
        page_size: spec.cfg.page_size,
        scale: spec.exp.scale,
        intensity: spec.exp.intensity,
        seed: spec.exp.seed,
        build_seconds: out.timing.build_seconds,
        sim_seconds: out.timing.sim_seconds,
        workload_cache_hit: out.timing.workload_cache_hit,
        events_recorded: out.events.as_ref().map_or(0, |e| e.len() as u64),
        status: if out.timing.resumed { "resumed" } else { "ok" }.into(),
        error: None,
        spec: Some(spec.to_run_spec().canonical()),
        metrics: MetricsReport::from_metrics(&out.metrics),
        series,
    });
}

/// Records a failed cell as a structured error row: zeroed metrics, a
/// machine-readable `status` label and the human-readable error message.
/// Called by the batch executor in declaration order alongside
/// [`record_cell`], so failed cells keep their sequence slot.
pub fn record_cell_error(spec: &CellSpec, err: &CellError) {
    if !enabled() {
        return;
    }
    let mut st = state();
    let seq = st.cells.len() as u64;
    st.cells.push(CellReport {
        seq,
        app: spec.app.to_string(),
        policy: spec.policy_label(),
        num_gpus: spec.cfg.num_gpus as u64,
        page_size: spec.cfg.page_size,
        scale: spec.exp.scale,
        intensity: spec.exp.intensity,
        seed: spec.exp.seed,
        build_seconds: 0.0,
        sim_seconds: 0.0,
        workload_cache_hit: false,
        events_recorded: 0,
        status: err.status().into(),
        error: Some(err.to_string()),
        spec: Some(spec.to_run_spec().canonical()),
        metrics: MetricsReport::default(),
        series: Vec::new(),
    });
}

/// Records one batch execution profile.
pub fn record_batch(profile: BatchProfile) {
    if !enabled() {
        return;
    }
    state().batches.push(profile);
}

/// Records a target's wall-clock time (the `time:` lines `repro` prints).
pub fn record_target(name: &str, seconds: f64) {
    if !enabled() {
        return;
    }
    state().targets.push(TargetTiming {
        name: name.to_string(),
        seconds,
    });
}

/// Records the Fig. 17 headline geomean speedups.
pub fn record_headline(vs_on_touch: f64, vs_access_counter: f64, vs_duplication: f64) {
    if !enabled() {
        return;
    }
    state().headline = Some(HeadlineSpeedups {
        vs_on_touch,
        vs_access_counter,
        vs_duplication,
    });
}

/// Accumulates one batch's result-store traffic (hits, misses,
/// quarantined files) into the run-wide totals reported under the
/// run report's `store` object.
pub fn record_store(counters: StoreCounters) {
    if !enabled() || !counters.any() {
        return;
    }
    state().store.absorb(counters);
}

/// Records the Fig. 18 geomean of GRIT's normalized fault count.
pub fn record_fig18_geomean(value: f64) {
    if !enabled() {
        return;
    }
    state().fig18_fault_geomean = Some(value);
}

/// Assembles the full `run_report.json` document from everything recorded
/// so far. The collected cells/batches/targets stay in place, so the bench
/// summary can be built from the same state.
pub fn build_report(exp: &ExpConfig, jobs: usize, total_seconds: f64) -> RunReport {
    let st = state();
    RunReport {
        scale: exp.scale,
        intensity: exp.intensity,
        seed: exp.seed,
        jobs: jobs as u64,
        sim_threads: super::batch::effective_sim_threads() as u64,
        total_seconds,
        system: grit_sim::SimConfig::default()
            .describe()
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
        targets: st.targets.clone(),
        batches: st.batches.clone(),
        cells: st.cells.clone(),
        profile: grit_prof::enabled().then(|| build_profile(&st.cells)),
        store: st.store.any().then_some(st.store),
    }
}

/// Assembles the report's `profile` object: wall-clock phase totals and
/// speculation telemetry from the process-wide `grit-prof` accumulators,
/// and the deterministic cycle-domain sections merged from every
/// successful cell's `prof_*` aux series in sequence order.
fn build_profile(cells: &[CellReport]) -> ProfileReport {
    let wall: Vec<PhaseEntry> = grit_prof::phase_totals()
        .iter()
        .filter(|t| t.count > 0)
        .map(|t| PhaseEntry {
            phase: t.phase.name().to_string(),
            nanos: t.nanos,
            count: t.count,
        })
        .collect();
    let spec = grit_prof::spec_stats();
    let speculation = (spec.rounds > 0).then(|| SpeculationReport {
        rounds: spec.rounds,
        speculated: spec.speculated,
        committed: spec.committed,
        rewound: spec.rewound,
        serial_burst_steps: spec.serial,
        horizon_stalls: spec.horizon_stalls,
        horizon_stall_cycles: spec.horizon_stall_cycles,
        rollback_rate: spec.rollback_rate(),
        load_imbalance: spec.load_imbalance(),
        per_gpu_committed: spec.per_gpu_committed.clone(),
    });
    let mut cycle = CycleProfile::default();
    for cell in cells.iter().filter(|c| c.status == "ok" || c.status == "resumed") {
        cycle.absorb_aux(&cell.metrics.aux);
    }
    ProfileReport {
        wall,
        speculation,
        cycle,
    }
}

/// Assembles the compact `BENCH_run.json` document.
pub fn build_bench_summary(exp: &ExpConfig, jobs: usize, total_seconds: f64) -> BenchSummary {
    let st = state();
    let mut fault_totals = grit_metrics::FaultCounters::default();
    for cell in &st.cells {
        let f = &cell.metrics.faults;
        fault_totals.local_faults += f.local_faults;
        fault_totals.protection_faults += f.protection_faults;
        fault_totals.migrations += f.migrations;
        fault_totals.duplications += f.duplications;
        fault_totals.collapses += f.collapses;
        fault_totals.evictions += f.evictions;
        fault_totals.scheme_changes += f.scheme_changes;
    }
    BenchSummary {
        scale: exp.scale,
        intensity: exp.intensity,
        seed: exp.seed,
        jobs: jobs as u64,
        sim_threads: super::batch::effective_sim_threads() as u64,
        total_seconds,
        cells_run: st.cells.len() as u64,
        fault_totals,
        targets: st.targets.clone(),
        headline: st.headline,
        fig18_fault_geomean: st.fig18_fault_geomean,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // `enable` is process-global and sticky, so these tests only exercise
    // the disabled path plus pure assembly; the enabled round trip is
    // covered by the `repro` CLI integration test, which owns its process.

    #[test]
    fn disabled_recording_is_a_no_op() {
        assert!(!enabled(), "nothing in the test binary calls enable()");
        record_target("figX", 1.0);
        record_fig18_geomean(0.5);
        assert!(state().targets.is_empty());
        assert!(state().fig18_fault_geomean.is_none());
    }

    #[test]
    fn empty_report_assembles() {
        let exp = ExpConfig::quick();
        let report = build_report(&exp, 2, 0.0);
        assert_eq!(report.jobs, 2);
        assert!(!report.system.is_empty());
        let bench = build_bench_summary(&exp, 2, 0.0);
        assert_eq!(bench.cells_run, 0);
        assert!(bench.headline.is_none());
    }
}
