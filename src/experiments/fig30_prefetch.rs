//! Fig. 30: GRIT combined with the tree-based neighborhood prefetcher vs
//! the on-touch baseline with the same prefetcher (paper: 23 % — placement
//! and prefetching are complementary).

use grit_baselines::TreePrefetcher;
use grit_metrics::Table;
use grit_sim::Scheme;

use super::{run_batch, table2_apps, CellResultExt, CellSpec, ExpConfig, PolicyKind};

fn prefetch_cell(app: grit_workloads::App, policy: PolicyKind, exp: &ExpConfig) -> CellSpec {
    CellSpec::new(app, policy, exp).with_prefetcher(|| Box::new(TreePrefetcher::new()))
}

/// Runs the figure.
pub fn run(exp: &ExpConfig) -> Table {
    let mut table = Table::new(
        "Fig 30: GRIT + prefetching vs on-touch + prefetching",
        vec!["on-touch+pf".into(), "grit+pf".into()],
    );
    let cells: Vec<CellSpec> = table2_apps()
        .into_iter()
        .flat_map(|app| {
            [
                prefetch_cell(app, PolicyKind::Static(Scheme::OnTouch), exp),
                prefetch_cell(app, PolicyKind::GRIT, exp),
            ]
        })
        .collect();
    let outputs = run_batch(&cells);
    for (app, chunk) in table2_apps().into_iter().zip(outputs.chunks(2)) {
        table.push_row(
            app.abbr(),
            vec![
                chunk[0].metric(|_| 1.0),
                chunk[0].cycles() / chunk[1].cycles(),
            ],
        );
    }
    table.push_geomean_row();
    table
}

#[cfg(test)]
mod tests {
    use super::super::run_cell;
    use super::*;

    #[test]
    fn grit_still_wins_with_prefetching() {
        let t = run(&ExpConfig::quick());
        assert!(t.cell("GEOMEAN", "grit+pf").unwrap() > 1.0);
    }

    #[test]
    fn prefetching_reduces_faults_for_adjacent_apps() {
        let exp = ExpConfig::quick();
        let app = grit_workloads::App::Fir;
        let without = run_cell(app, PolicyKind::Static(Scheme::OnTouch), &exp)
            .metrics
            .faults
            .local_faults;
        let with = prefetch_cell(app, PolicyKind::Static(Scheme::OnTouch), &exp)
            .run()
            .metrics
            .faults
            .local_faults;
        assert!(
            with < without,
            "prefetching must absorb faults: {with} vs {without}"
        );
    }
}
