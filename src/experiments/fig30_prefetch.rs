//! Fig. 30: GRIT combined with the tree-based neighborhood prefetcher vs
//! the on-touch baseline with the same prefetcher (paper: 23 % — placement
//! and prefetching are complementary).

use grit_baselines::TreePrefetcher;
use grit_metrics::Table;
use grit_sim::{Scheme, SimConfig};
use grit_workloads::WorkloadBuilder;

use super::{table2_apps, ExpConfig, PolicyKind};
use crate::runner::Simulation;

fn run_with_prefetch(
    app: grit_workloads::App,
    policy: PolicyKind,
    exp: &ExpConfig,
) -> u64 {
    let cfg = SimConfig::default();
    let workload = WorkloadBuilder::new(app)
        .num_gpus(cfg.num_gpus)
        .scale(exp.scale)
        .intensity(exp.intensity)
        .seed(exp.seed)
        .build();
    let p = policy.build(&cfg, workload.footprint_pages);
    let mut sim = Simulation::new(cfg, workload, p);
    sim.set_prefetcher(Box::new(TreePrefetcher::new()));
    sim.run().metrics.total_cycles
}

/// Runs the figure.
pub fn run(exp: &ExpConfig) -> Table {
    let mut table = Table::new(
        "Fig 30: GRIT + prefetching vs on-touch + prefetching",
        vec!["on-touch+pf".into(), "grit+pf".into()],
    );
    for app in table2_apps() {
        let base = run_with_prefetch(app, PolicyKind::Static(Scheme::OnTouch), exp);
        let grit = run_with_prefetch(app, PolicyKind::GRIT, exp);
        table.push_row(app.abbr(), vec![1.0, base as f64 / grit as f64]);
    }
    table.push_geomean_row();
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use super::super::run_cell;

    #[test]
    fn grit_still_wins_with_prefetching() {
        let t = run(&ExpConfig::quick());
        assert!(t.cell("GEOMEAN", "grit+pf").unwrap() > 1.0);
    }

    #[test]
    fn prefetching_reduces_faults_for_adjacent_apps() {
        let exp = ExpConfig::quick();
        let app = grit_workloads::App::Fir;
        let without = run_cell(app, PolicyKind::Static(Scheme::OnTouch), &exp)
            .metrics
            .faults
            .local_faults;
        let cfg = SimConfig::default();
        let workload = WorkloadBuilder::new(app)
            .scale(exp.scale)
            .intensity(exp.intensity)
            .seed(exp.seed)
            .build();
        let p = PolicyKind::Static(Scheme::OnTouch).build(&cfg, workload.footprint_pages);
        let mut sim = Simulation::new(cfg, workload, p);
        sim.set_prefetcher(Box::new(TreePrefetcher::new()));
        let with = sim.run().metrics.faults.local_faults;
        assert!(
            with < without,
            "prefetching must absorb faults: {with} vs {without}"
        );
    }
}
