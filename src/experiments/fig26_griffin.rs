//! Fig. 26: comparison to Griffin — Griffin-DPC, GRIT, Griffin
//! (DPC + ACUD) and GRIT + ACUD, normalized to Griffin-DPC. The paper
//! reports GRIT 27 % over Griffin-DPC and GRIT+ACUD 16 % over Griffin.

use grit_baselines::apply_acud;
use grit_metrics::Table;
use grit_sim::SimConfig;

use super::{run_batch, table2_apps, CellResultExt, CellSpec, ExpConfig, PolicyKind};

/// Runs the figure.
pub fn run(exp: &ExpConfig) -> Table {
    let mut acud_cfg = SimConfig::default();
    apply_acud(&mut acud_cfg);
    let variants: [(&str, PolicyKind, SimConfig); 4] = [
        ("griffin-dpc", PolicyKind::GriffinDpc, SimConfig::default()),
        ("grit", PolicyKind::GRIT, SimConfig::default()),
        ("griffin", PolicyKind::GriffinDpc, acud_cfg.clone()),
        ("grit+acud", PolicyKind::GRIT, acud_cfg),
    ];
    let cols: Vec<String> = variants.iter().map(|(n, _, _)| n.to_string()).collect();
    let mut table = Table::new(
        "Fig 26: Griffin comparison (speedup over Griffin-DPC)",
        cols,
    );
    let cells: Vec<CellSpec> = table2_apps()
        .into_iter()
        .flat_map(|app| {
            variants
                .iter()
                .map(move |(_, p, cfg)| CellSpec::new(app, *p, exp).with_cfg(cfg.clone()))
        })
        .collect();
    let outputs = run_batch(&cells);
    for (app, chunk) in table2_apps().into_iter().zip(outputs.chunks(variants.len())) {
        let cycles: Vec<f64> = chunk.iter().map(CellResultExt::cycles).collect();
        let base = cycles[0];
        table.push_row(app.abbr(), cycles.iter().map(|&c| base / c).collect());
    }
    table.push_geomean_row();
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grit_beats_griffin_dpc_and_composes_with_acud() {
        // Adaptation amortizes with run length; use the calibrated default.
        let t = run(&ExpConfig::default());
        let grit = t.cell("GEOMEAN", "grit").unwrap();
        assert!(grit > 1.0, "GRIT must beat Griffin-DPC on average: {grit}");
        let grit_acud = t.cell("GEOMEAN", "grit+acud").unwrap();
        let griffin = t.cell("GEOMEAN", "griffin").unwrap();
        assert!(
            grit_acud > griffin,
            "GRIT+ACUD ({grit_acud}) must beat Griffin ({griffin})"
        );
        // ACUD is orthogonal: it helps GRIT too.
        assert!(grit_acud >= grit * 0.98, "{grit_acud} vs {grit}");
    }
}
