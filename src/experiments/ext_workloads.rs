//! Extension experiment (beyond the paper): GRIT on two additional
//! irregular workloads — SpMV and PageRank — that were not in the paper's
//! roster. Both mix private structure data with randomly gathered shared
//! vectors, the regime where fine-grained placement should pay.
//!
//! PageRank is deliberately adversarial for GRIT's read/write rule: each
//! rank page alternates between "written by one owner" and "read by
//! everyone" across iterations, so the sticky write bit steers it to
//! access-counter placement while whole-run duplication (one collapse per
//! iteration, then all-local reads) is actually stronger — the same class
//! of behaviour the paper concedes in §VI-A for BS/C2D/ST.

use grit_metrics::Table;
use grit_sim::Scheme;
use grit_workloads::App;

use super::{run_grid, CellResultExt, ExpConfig, PolicyKind};

/// Runs the extension: the Fig. 17 policy set on the extra workloads.
pub fn run(exp: &ExpConfig) -> Table {
    let policies = [
        PolicyKind::Static(Scheme::OnTouch),
        PolicyKind::Static(Scheme::AccessCounter),
        PolicyKind::Static(Scheme::Duplication),
        PolicyKind::GRIT,
        PolicyKind::Ideal,
    ];
    let cols: Vec<String> = policies.iter().map(|p| p.label()).collect();
    let mut table = Table::new(
        "Extension: GRIT on SpMV and PageRank (speedup over on-touch)",
        cols,
    );
    let rows = run_grid(&App::EXTRA, &policies, exp);
    for (app, runs) in App::EXTRA.into_iter().zip(&rows) {
        let cycles: Vec<f64> = runs.iter().map(CellResultExt::cycles).collect();
        let base = cycles[0];
        table.push_row(app.abbr(), cycles.iter().map(|&c| base / c).collect());
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grit_matches_or_beats_the_best_uniform_scheme() {
        let t = run(&ExpConfig::quick());
        for (label, row) in t.rows() {
            let best_uniform = row[0].max(row[1]).max(row[2]);
            assert!(
                row[3] > 0.7 * best_uniform,
                "{label}: grit {} vs best uniform {best_uniform}",
                row[3]
            );
            assert!(row[3] > row[0], "{label}: grit must beat uniform on-touch");
            assert!(row[4] >= row[3], "{label}: ideal bounds grit");
        }
    }

    #[test]
    fn shared_vector_workloads_benefit_from_duplication() {
        let t = run(&ExpConfig::quick());
        // Both apps gather read-shared vectors: uniform duplication must
        // beat uniform on-touch.
        for app in ["SPMV", "PR"] {
            let d = t.cell(app, "duplication").unwrap();
            assert!(d > 1.0, "{app}: duplication {d} must beat on-touch");
        }
    }
}
