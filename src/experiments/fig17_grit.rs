//! Fig. 17 — the headline result: GRIT vs the three uniform schemes (and
//! the Ideal), normalized to on-touch migration. The paper reports average
//! improvements of 60 % / 49 % / 29 % over on-touch / access-counter /
//! duplication.

use grit_metrics::Table;
use grit_sim::Scheme;

use super::{run_grid, table2_apps, CellResultExt, ExpConfig, PolicyKind};

/// Policies compared by Fig. 17, in plot order.
pub fn policies() -> [PolicyKind; 5] {
    [
        PolicyKind::Static(Scheme::OnTouch),
        PolicyKind::Static(Scheme::AccessCounter),
        PolicyKind::Static(Scheme::Duplication),
        PolicyKind::GRIT,
        PolicyKind::Ideal,
    ]
}

/// Runs the figure.
pub fn run(exp: &ExpConfig) -> Table {
    let cols: Vec<String> = policies().iter().map(|p| p.label()).collect();
    let mut table = Table::new(
        "Fig 17: GRIT vs uniform schemes (speedup over on-touch)",
        cols,
    );
    let rows = run_grid(&table2_apps(), &policies(), exp);
    for (app, runs) in table2_apps().into_iter().zip(&rows) {
        let cycles: Vec<f64> = runs.iter().map(CellResultExt::cycles).collect();
        let base = cycles[0];
        table.push_row(app.abbr(), cycles.iter().map(|&c| base / c).collect());
    }
    table.push_geomean_row();
    table
}

/// The three headline averages `(vs on-touch, vs access-counter, vs
/// duplication)` extracted from a Fig. 17 table, as improvement fractions
/// (paper: 0.60 / 0.49 / 0.29).
pub fn headline(table: &Table) -> (f64, f64, f64) {
    let g = table.cell("GEOMEAN", "grit").expect("geomean row");
    let ot = table.cell("GEOMEAN", "on-touch").expect("ot column");
    let ac = table.cell("GEOMEAN", "access-counter").expect("ac column");
    let d = table.cell("GEOMEAN", "duplication").expect("dup column");
    (g / ot - 1.0, g / ac - 1.0, g / d - 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grit_beats_every_uniform_scheme_on_average() {
        let t = run(&ExpConfig::quick());
        let (vs_ot, vs_ac, vs_d) = headline(&t);
        assert!(vs_ot > 0.0, "GRIT must beat on-touch on average: {vs_ot}");
        assert!(
            vs_ac > 0.0,
            "GRIT must beat access-counter on average: {vs_ac}"
        );
        assert!(vs_d > 0.0, "GRIT must beat duplication on average: {vs_d}");
        // Same ordering as the paper's 60 % > 49 % > 29 %.
        assert!(
            vs_ot > vs_d,
            "improvement over OT should exceed over duplication"
        );
    }

    #[test]
    fn grit_close_to_best_uniform_scheme_per_app() {
        // GRIT adapts: per app it should be within a modest factor of the
        // best uniform scheme (the paper even shows a 2 % loss on BFS).
        let t = run(&ExpConfig::quick());
        for (label, row) in t.rows() {
            if label == "GEOMEAN" {
                continue;
            }
            let best = row[0].max(row[1]).max(row[2]);
            assert!(
                row[3] > 0.65 * best,
                "{label}: grit {} vs best uniform {best}",
                row[3]
            );
        }
    }
}
