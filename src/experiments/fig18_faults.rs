//! Fig. 18: total GPU page faults (local + protection) per policy,
//! normalized to on-touch. The paper reports GRIT reducing faults by 39 %,
//! 55 % and 16 % vs on-touch, access-counter and duplication.

use grit_metrics::Table;
use grit_sim::Scheme;

use super::{run_grid, table2_apps, CellResultExt, ExpConfig, PolicyKind};

/// Policies compared (plot order).
pub fn policies() -> [PolicyKind; 4] {
    [
        PolicyKind::Static(Scheme::OnTouch),
        PolicyKind::Static(Scheme::AccessCounter),
        PolicyKind::Static(Scheme::Duplication),
        PolicyKind::GRIT,
    ]
}

/// Runs the figure: fault counts normalized to on-touch (lower is better).
pub fn run(exp: &ExpConfig) -> Table {
    let cols: Vec<String> = policies().iter().map(|p| p.label()).collect();
    let mut table = Table::new("Fig 18: GPU page faults (normalized to on-touch)", cols);
    let rows = run_grid(&table2_apps(), &policies(), exp);
    for (app, runs) in table2_apps().into_iter().zip(&rows) {
        let faults: Vec<f64> = runs
            .iter()
            .map(|r| r.metric(|o| o.metrics.faults.total_faults().max(1) as f64))
            .collect();
        let base = faults[0];
        table.push_row(app.abbr(), faults.iter().map(|&f| f / base).collect());
    }
    table.push_geomean_row();
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grit_reduces_faults_on_average() {
        let t = run(&ExpConfig::quick());
        let grit = t.cell("GEOMEAN", "grit").unwrap();
        assert!(
            grit < 1.0,
            "GRIT must raise fewer faults than on-touch: {grit}"
        );
    }

    #[test]
    fn on_touch_column_is_one() {
        let t = run(&ExpConfig::quick());
        for (label, row) in t.rows() {
            if label != "GEOMEAN" {
                assert!((row[0] - 1.0).abs() < 1e-9);
            }
        }
    }
}
