//! Resilient parallel experiment execution.
//!
//! A figure driver declares its grid as [`CellSpec`] recipes — plain data
//! describing *what* to run — and [`run_batch`] fans the cells across a
//! scoped worker pool. Results come back in declaration order, so drivers
//! assemble tables exactly as the serial loops did and the printed output
//! is byte-identical regardless of the worker count.
//!
//! The API is **Result-first**: every cell yields a
//! `Result<RunOutput, CellError>`, so one poisoned cell — a panic inside
//! the simulator, an expired wall-clock budget, a violated invariant —
//! becomes a marked row in the tables and `run_report.json` instead of
//! aborting the whole campaign. Execution knobs travel in a
//! [`BatchOptions`] struct (worker count, per-cell timeout, resume
//! directory, fail-fast), replacing the old positional
//! `run_batch_with_jobs(cells, jobs)` signature.
//!
//! Fault isolation is three-layered:
//! 1. `catch_unwind` around each cell converts panics into
//!    [`CellError::Panicked`] rows;
//! 2. a [`CancelToken`] threaded into the simulation loop enforces
//!    per-cell soft timeouts ([`CellError::TimedOut`], with partial
//!    progress counters) and batch-wide fail-fast aborts
//!    ([`CellError::Cancelled`]);
//! 3. an optional content-addressed [`ResultStore`] makes campaigns
//!    resumable: completed cells are persisted under a
//!    `(app, exp, config, policy, code-version)` key, and a re-run with
//!    the same store skips them.
//!
//! Workers pull cells from a shared index, so a long cell (e.g. a full
//! GRIT run) never blocks the queue behind it. Workloads come from the
//! shared [`super::workload_cache`], which builds each distinct trace once
//! no matter how many cells (or workers) request it.
//!
//! The worker count is resolved, in priority order, from the programmatic
//! override ([`set_jobs`], wired to `repro --jobs N`), the `GRIT_JOBS`
//! environment variable, and the machine's available parallelism.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use grit_sim::{CancelState, CancelToken, CellError, InjectConfig, SimConfig, TopologyConfig};
use grit_trace::{writer as trace_writer, BatchProfile, CellMeta, CellTiming, TraceConfig, Tracer};
use grit_uvm::{PlacementPolicy, Prefetcher};
use grit_workloads::App;

use crate::runner::{ObserverConfig, RunOutput, SimulationBuilder};

use super::result_store::{ResultStore, STORE_SCHEMA};
use super::{report_sink, workload_cache, ExpConfig, PolicyKind};

/// Constructor for [`PolicySpec::Factory`] cells: receives the run's
/// `SimConfig` and footprint pages, returns the policy object.
pub type PolicyFactory = Arc<dyn Fn(&SimConfig, u64) -> Box<dyn PlacementPolicy> + Send + Sync>;

/// How a cell obtains its policy object.
#[derive(Clone)]
pub enum PolicySpec {
    /// A declarative recipe (the common case).
    Kind(PolicyKind),
    /// An arbitrary constructor, for cells whose policy is derived from
    /// earlier results (e.g. oracle policies seeded with a profile).
    Factory(PolicyFactory),
}

impl std::fmt::Debug for PolicySpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PolicySpec::Kind(k) => write!(f, "Kind({k:?})"),
            PolicySpec::Factory(_) => write!(f, "Factory(..)"),
        }
    }
}

impl From<PolicyKind> for PolicySpec {
    fn from(kind: PolicyKind) -> Self {
        PolicySpec::Kind(kind)
    }
}

/// One experiment cell: everything needed to run `(app, policy)` under an
/// experiment and system configuration.
#[derive(Clone)]
pub struct CellSpec {
    /// The workload-generating application.
    pub app: App,
    /// The placement policy recipe.
    pub policy: PolicySpec,
    /// Scale/intensity/seed knobs.
    pub exp: ExpConfig,
    /// System configuration (GPU count, latencies, page size).
    pub cfg: SimConfig,
    /// Optional instrumentation.
    pub observer: Option<ObserverConfig>,
    /// Optional prefetcher constructor (prefetchers are stateful, so each
    /// cell builds its own instance).
    pub prefetcher: Option<Arc<dyn Fn() -> Box<dyn Prefetcher> + Send + Sync>>,
    /// Per-cell trace configuration. `None` falls back to the process-wide
    /// writer's configuration (installed by `repro --trace`); tracing is
    /// fully disabled when neither is present.
    pub trace: Option<TraceConfig>,
}

impl std::fmt::Debug for CellSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CellSpec")
            .field("app", &self.app)
            .field("policy", &self.policy)
            .field("exp", &self.exp)
            .field("observer", &self.observer.is_some())
            .field("prefetcher", &self.prefetcher.is_some())
            .finish_non_exhaustive()
    }
}

impl CellSpec {
    /// A cell with the baseline system configuration (under the
    /// process-wide overrides installed by [`set_topology`],
    /// [`set_inject`] and [`set_check_invariants`], so `repro --topology`
    /// / `--inject` / `--check-invariants` reshape every figure driver).
    pub fn new(app: App, policy: impl Into<PolicySpec>, exp: &ExpConfig) -> Self {
        CellSpec {
            app,
            policy: policy.into(),
            exp: *exp,
            cfg: apply_cell_overrides(SimConfig::default()),
            observer: None,
            prefetcher: None,
            trace: None,
        }
    }

    /// Replaces the system configuration. The process-wide overrides
    /// still apply on top (drivers that must pin an explicit per-cell
    /// topology or fault schedule — e.g. `ext_topology`,
    /// `ext_resilience` — construct the `CellSpec` struct literally
    /// instead).
    pub fn with_cfg(mut self, cfg: SimConfig) -> Self {
        self.cfg = apply_cell_overrides(cfg);
        self
    }

    /// Attaches observer instrumentation.
    pub fn observed(mut self, observer: ObserverConfig) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Attaches a prefetcher, built fresh for each run.
    pub fn with_prefetcher(
        mut self,
        make: impl Fn() -> Box<dyn Prefetcher> + Send + Sync + 'static,
    ) -> Self {
        self.prefetcher = Some(Arc::new(make));
        self
    }

    /// Attaches an explicit trace configuration (overrides the
    /// process-wide writer's configuration for this cell).
    pub fn traced(mut self, cfg: TraceConfig) -> Self {
        self.trace = Some(cfg);
        self
    }

    /// Label for the policy column in reports.
    pub fn policy_label(&self) -> String {
        match &self.policy {
            PolicySpec::Kind(kind) => kind.label(),
            PolicySpec::Factory(_) => "factory".into(),
        }
    }

    /// Trace-stream cell header metadata.
    pub fn meta(&self) -> CellMeta {
        CellMeta {
            app: self.app.to_string(),
            policy: self.policy_label(),
            gpus: self.cfg.num_gpus,
        }
    }

    /// The cell's content-address in a [`ResultStore`], or `None` when the
    /// cell is ineligible for resumption: opaque policy factories can't be
    /// keyed, and prefetchers / per-cell tracing produce outputs the store
    /// can't fully reconstruct.
    ///
    /// The key embeds the crate version, so results never survive a code
    /// change, and the `Debug` forms of every knob that shapes the
    /// simulation (f64s print in exact round-trip form).
    pub fn resume_key(&self) -> Option<String> {
        if self.prefetcher.is_some() || self.trace.is_some() {
            return None;
        }
        let kind = match &self.policy {
            PolicySpec::Kind(kind) => kind,
            PolicySpec::Factory(_) => return None,
        };
        Some(format!(
            "store={STORE_SCHEMA};code={};app={:?};exp={:?};cfg={:?};policy={kind:?};observer={:?}",
            env!("CARGO_PKG_VERSION"),
            self.app,
            self.exp,
            self.cfg,
            self.observer,
        ))
    }

    /// Runs this cell (workload via the shared cache) and submits its
    /// trace events and report record to the process-wide sinks.
    ///
    /// This is the *infallible* entry point for callers outside the batch
    /// executor (single-cell drivers, tests).
    ///
    /// # Panics
    ///
    /// Panics on any simulation failure; batch execution goes through
    /// [`run_batch`], which isolates failures as [`CellError`] values.
    pub fn run(&self) -> RunOutput {
        let sim_threads = clamp_sim_threads(1, effective_sim_threads());
        let out = self
            .run_inner(&CancelToken::new(), sim_threads)
            .unwrap_or_else(|e| panic!("{e}"));
        self.submit(&out);
        out
    }

    /// Runs the cell without submitting to the global sinks, threading a
    /// cancellation token into the simulation loop and sharding the
    /// cell's own event loop across `sim_threads` workers. The batch
    /// executor uses this so it can submit results in declaration order
    /// after the whole batch finishes, keeping the trace stream
    /// byte-identical at any worker or thread count.
    fn run_inner(&self, cancel: &CancelToken, sim_threads: usize) -> Result<RunOutput, CellError> {
        let build_start = Instant::now();
        let (workload, cache_hit) = {
            let _prof = grit_prof::span(grit_prof::Phase::TraceBuild);
            workload_cache::shared_workload_tracked(self.app, &self.exp, &self.cfg)
        };
        let build_seconds = build_start.elapsed().as_secs_f64();
        let policy = match &self.policy {
            PolicySpec::Kind(kind) => kind.build(&self.cfg, workload.footprint_pages),
            PolicySpec::Factory(make) => make(&self.cfg, workload.footprint_pages),
        };
        let mut builder = SimulationBuilder::new(self.cfg.clone(), workload, policy)
            .cancel(cancel.clone())
            .sim_threads(sim_threads);
        if let Some(obs) = &self.observer {
            builder = builder.observer(obs.clone());
        }
        if let Some(make) = &self.prefetcher {
            builder = builder.prefetcher(make());
        }
        let tracer = self.trace.or_else(trace_writer::global_config).map(Tracer::new);
        if let Some(t) = &tracer {
            builder = builder.tracer(t.clone());
        }
        let sim = builder.build().map_err(CellError::Config)?;
        let sim_start = Instant::now();
        let mut out = sim.try_run().map_err(CellError::from)?;
        out.timing = CellTiming {
            build_seconds,
            sim_seconds: sim_start.elapsed().as_secs_f64(),
            workload_cache_hit: cache_hit,
            resumed: false,
        };
        out.events = tracer.map(|t| t.take_events());
        Ok(out)
    }

    /// Submits a finished run to the global JSONL writer and the report
    /// collector. No-ops when neither sink is active.
    fn submit(&self, out: &RunOutput) {
        if let Some(events) = &out.events {
            if let Err(e) = trace_writer::submit_global(&self.meta(), events) {
                eprintln!("trace: failed to write events for {}: {e}", self.app);
            }
        }
        report_sink::record_cell(self, out);
    }
}

/// Convenience accessors for one batch result, so drivers can build
/// tables without matching on every cell: failed cells read as NaN, which
/// [`grit_metrics::Table`] renders as an error marker and
/// [`grit_metrics::geomean`] skips.
pub trait CellResultExt {
    /// The output, when the cell completed.
    fn output(&self) -> Option<&RunOutput>;
    /// Simulated total cycles, or NaN when the cell failed.
    fn cycles(&self) -> f64;
    /// An arbitrary metric projection, or NaN when the cell failed.
    fn metric(&self, f: impl FnOnce(&RunOutput) -> f64) -> f64;
}

impl CellResultExt for Result<RunOutput, CellError> {
    fn output(&self) -> Option<&RunOutput> {
        self.as_ref().ok()
    }

    fn cycles(&self) -> f64 {
        self.metric(|o| o.metrics.total_cycles as f64)
    }

    fn metric(&self, f: impl FnOnce(&RunOutput) -> f64) -> f64 {
        self.as_ref().map_or(f64::NAN, f)
    }
}

/// Execution knobs for one [`run_batch_with`] call.
///
/// The defaults ([`BatchOptions::default`]) run every cell with
/// [`effective_jobs`] workers, no timeout, no resume store, and
/// keep-going semantics; [`BatchOptions::from_defaults`] additionally
/// picks up the process-wide settings installed by the `repro` CLI flags
/// (`--cell-timeout`, `--resume`, `--fail-fast`).
#[derive(Clone, Debug, Default)]
pub struct BatchOptions {
    /// Worker threads; `None` resolves via [`effective_jobs`].
    pub jobs: Option<usize>,
    /// Per-cell wall-clock budget; `None` disables timeouts.
    pub timeout: Option<Duration>,
    /// Directory of the on-disk [`ResultStore`]; `None` disables
    /// resumption.
    pub resume_dir: Option<PathBuf>,
    /// Abort the batch on the first failed cell (remaining cells report
    /// [`CellError::Cancelled`]) instead of running everything.
    pub fail_fast: bool,
    /// Worker threads sharding each cell's own event loop; `None`
    /// resolves via [`effective_sim_threads`], where the product
    /// `jobs × sim_threads` is capped at the machine's available
    /// parallelism (warn and clamp). An explicit `Some(n)` is honored
    /// verbatim. Output is byte-identical at any value.
    pub sim_threads: Option<usize>,
}

impl BatchOptions {
    /// All-default options (every field off / auto).
    pub fn new() -> Self {
        BatchOptions::default()
    }

    /// Options seeded from the process-wide defaults installed by
    /// [`set_cell_timeout`], [`set_resume_dir`] and [`set_fail_fast`].
    pub fn from_defaults() -> Self {
        BatchOptions {
            jobs: None,
            timeout: default_timeout(),
            resume_dir: default_resume_dir(),
            fail_fast: FAIL_FAST_DEFAULT.load(Ordering::Relaxed),
            sim_threads: None,
        }
    }

    /// Sets an explicit worker count.
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = Some(jobs);
        self
    }

    /// Sets a per-cell wall-clock budget.
    pub fn timeout(mut self, budget: Duration) -> Self {
        self.timeout = Some(budget);
        self
    }

    /// Enables the on-disk result store rooted at `dir`.
    pub fn resume_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.resume_dir = Some(dir.into());
        self
    }

    /// Aborts the batch on the first failure.
    pub fn fail_fast(mut self, yes: bool) -> Self {
        self.fail_fast = yes;
        self
    }

    /// Shards each cell's own event loop across `n` worker threads.
    pub fn sim_threads(mut self, n: usize) -> Self {
        self.sim_threads = Some(n);
        self
    }
}

/// Explicit worker-count override; 0 means "not set".
static JOBS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);
/// Explicit per-cell event-loop thread override; 0 means "not set".
static SIM_THREADS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);
/// Process-wide per-cell timeout in milliseconds; 0 means "not set",
/// `u64::MAX` marks an explicit zero budget (used by tests/CLI).
static CELL_TIMEOUT_MS: AtomicUsize = AtomicUsize::new(0);
/// Process-wide fail-fast default (the `repro --fail-fast` flag).
static FAIL_FAST_DEFAULT: AtomicBool = AtomicBool::new(false);
/// Latched when any batch aborts due to fail-fast; the CLI exit code.
static FAIL_FAST_TRIGGERED: AtomicBool = AtomicBool::new(false);
/// Process-wide resume directory (the `repro --resume` flag).
static RESUME_DIR: Mutex<Option<PathBuf>> = Mutex::new(None);
/// Process-wide topology override (the `repro --topology` flag).
static TOPOLOGY_OVERRIDE: Mutex<Option<TopologyConfig>> = Mutex::new(None);
/// Process-wide fault-injection override (the `repro --inject` flag).
static INJECT_OVERRIDE: Mutex<Option<InjectConfig>> = Mutex::new(None);
/// Process-wide invariant-check opt-in (the `repro --check-invariants`
/// flag; debug builds always check).
static CHECK_INVARIANTS_DEFAULT: AtomicBool = AtomicBool::new(false);
/// Process-wide progress-heartbeat opt-in (the `repro --progress` flag).
static PROGRESS: AtomicBool = AtomicBool::new(false);

/// Turns the stderr progress heartbeat on or off for subsequent batches
/// (the `repro --progress` flag). Also enables `grit-prof`
/// current-phase tracking so the heartbeat can name the phase the
/// process is in. Deliberately process-wide rather than a `SimConfig`
/// field: resume keys must not depend on how a run is observed.
pub fn set_progress(on: bool) {
    PROGRESS.store(on, Ordering::Relaxed);
    grit_prof::set_track_current(on);
}

/// Whether the progress heartbeat is on.
pub fn progress_enabled() -> bool {
    PROGRESS.load(Ordering::Relaxed)
}

/// Sets the interconnect topology for every subsequently declared
/// [`CellSpec`] (`None` restores the default all-to-all). The
/// `repro --topology` flag lands here; it flows into each cell's
/// `SimConfig`, so resume keys and run reports distinguish topologies
/// automatically.
pub fn set_topology(topo: Option<TopologyConfig>) {
    *TOPOLOGY_OVERRIDE.lock().expect("topology override lock poisoned") = topo;
}

/// Schedules fault injection in every subsequently declared [`CellSpec`]
/// (`None` restores fault-free runs). The `repro --inject` flag lands
/// here; the schedule flows into each cell's `SimConfig`, so resume keys
/// and run reports distinguish injected runs automatically.
pub fn set_inject(inject: Option<InjectConfig>) {
    *INJECT_OVERRIDE.lock().expect("inject override lock poisoned") = inject;
}

/// Opts every subsequently declared [`CellSpec`] into the driver's
/// automatic invariant sweeps (the `repro --check-invariants` flag;
/// debug builds always sweep).
pub fn set_check_invariants(on: bool) {
    CHECK_INVARIANTS_DEFAULT.store(on, Ordering::Relaxed);
}

fn apply_cell_overrides(mut cfg: SimConfig) -> SimConfig {
    if let Some(topo) = *TOPOLOGY_OVERRIDE.lock().expect("topology override lock poisoned") {
        cfg.topology = topo;
    }
    if let Some(inject) = INJECT_OVERRIDE.lock().expect("inject override lock poisoned").as_ref() {
        cfg.inject = inject.clone();
    }
    if CHECK_INVARIANTS_DEFAULT.load(Ordering::Relaxed) {
        cfg.check_invariants = true;
    }
    cfg
}

/// Sets the worker count for subsequent [`run_batch`] calls (0 clears the
/// override). The `repro --jobs N` flag lands here.
pub fn set_jobs(jobs: usize) {
    JOBS_OVERRIDE.store(jobs, Ordering::Relaxed);
}

/// Sets the process-wide per-cell timeout default picked up by
/// [`BatchOptions::from_defaults`]. The `repro --cell-timeout SECS` flag
/// lands here; `None` clears it.
pub fn set_cell_timeout(budget: Option<Duration>) {
    let encoded = match budget {
        None => 0,
        Some(d) if d.as_millis() == 0 => usize::MAX,
        Some(d) => usize::try_from(d.as_millis()).unwrap_or(usize::MAX - 1),
    };
    CELL_TIMEOUT_MS.store(encoded, Ordering::Relaxed);
}

fn default_timeout() -> Option<Duration> {
    match CELL_TIMEOUT_MS.load(Ordering::Relaxed) {
        0 => None,
        usize::MAX => Some(Duration::ZERO),
        ms => Some(Duration::from_millis(ms as u64)),
    }
}

/// Sets the process-wide resume-store directory picked up by
/// [`BatchOptions::from_defaults`]. The `repro --resume` flag lands here;
/// `None` clears it.
pub fn set_resume_dir(dir: Option<PathBuf>) {
    *RESUME_DIR.lock().expect("resume dir lock poisoned") = dir;
}

fn default_resume_dir() -> Option<PathBuf> {
    RESUME_DIR.lock().expect("resume dir lock poisoned").clone()
}

/// Sets the process-wide fail-fast default picked up by
/// [`BatchOptions::from_defaults`]. The `repro --fail-fast` flag lands
/// here.
pub fn set_fail_fast(yes: bool) {
    FAIL_FAST_DEFAULT.store(yes, Ordering::Relaxed);
}

/// Whether any batch in this process aborted due to fail-fast; `repro`
/// exits nonzero exactly when this is set.
pub fn fail_fast_triggered() -> bool {
    FAIL_FAST_TRIGGERED.load(Ordering::Relaxed)
}

/// Sets the per-cell event-loop thread count for subsequent [`run_batch`]
/// calls and [`CellSpec::run`] (0 clears the override). The
/// `repro --sim-threads N` flag lands here.
pub fn set_sim_threads(n: usize) {
    SIM_THREADS_OVERRIDE.store(n, Ordering::Relaxed);
}

/// The per-cell event-loop thread count: the [`set_sim_threads`]
/// override, else `GRIT_SIM_THREADS`, else 1 (the serial engine). Unlike
/// [`effective_jobs`] this does not default to the machine's parallelism:
/// sharding one cell only pays off on big cells, and the batch layer
/// already fans out across cells.
pub fn effective_sim_threads() -> usize {
    let explicit = SIM_THREADS_OVERRIDE.load(Ordering::Relaxed);
    if explicit > 0 {
        return explicit;
    }
    std::env::var("GRIT_SIM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(1)
}

/// Caps `jobs × sim_threads` at the machine's available parallelism so a
/// batch of sharded cells does not oversubscribe cores and silently
/// regress; warns on stderr when it clamps.
fn clamp_sim_threads(jobs: usize, sim_threads: usize) -> usize {
    if sim_threads <= 1 {
        return sim_threads.max(1);
    }
    let avail = std::thread::available_parallelism().map_or(1, |n| n.get());
    if jobs.saturating_mul(sim_threads) <= avail {
        return sim_threads;
    }
    let capped = (avail / jobs.max(1)).max(1);
    eprintln!(
        "sim-threads: {jobs} jobs x {sim_threads} sim-threads oversubscribes \
         {avail} available cores; clamping to {capped} sim-threads per cell"
    );
    capped
}

/// The worker count [`run_batch`] will use: the [`set_jobs`] override,
/// else `GRIT_JOBS`, else the machine's available parallelism.
pub fn effective_jobs() -> usize {
    let explicit = JOBS_OVERRIDE.load(Ordering::Relaxed);
    if explicit > 0 {
        return explicit;
    }
    if let Some(n) = std::env::var("GRIT_JOBS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        return n;
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Runs every cell under [`BatchOptions::from_defaults`] and returns
/// per-cell results in declaration order.
pub fn run_batch(cells: &[CellSpec]) -> Vec<Result<RunOutput, CellError>> {
    run_batch_with(cells, &BatchOptions::from_defaults())
}

/// Runs every cell under explicit options. `jobs <= 1` runs serially on
/// the calling thread; either way, results come back in declaration order
/// and successful outputs are identical to a serial run's.
///
/// Failed cells are reported to the process-wide report sink as
/// structured error rows and logged to stderr; they never abort the batch
/// unless `fail_fast` is set, in which case the shared abort flag stops
/// in-flight cells at the next cancellation poll and unstarted cells
/// yield [`CellError::Cancelled`].
pub fn run_batch_with(
    cells: &[CellSpec],
    opts: &BatchOptions,
) -> Vec<Result<RunOutput, CellError>> {
    let profile = report_sink::enabled() && !cells.is_empty();
    let cache_before = workload_cache::global().stats();
    let start = Instant::now();
    let jobs = opts.jobs.unwrap_or_else(effective_jobs).clamp(1, cells.len().max(1));
    // An explicit option is honored verbatim (benches and determinism
    // tests need exact thread counts); only the ambient CLI/env setting
    // is capped against the worker pool.
    let sim_threads = match opts.sim_threads {
        Some(t) => t.max(1),
        None => clamp_sim_threads(jobs, effective_sim_threads()),
    };
    // The store cannot reproduce trace events, so resumption is disabled
    // batch-wide while a global trace writer is active: a resumed run must
    // never silently drop cells from the event stream.
    let store = opts
        .resume_dir
        .as_ref()
        .filter(|_| trace_writer::global_config().is_none())
        .and_then(|dir| match ResultStore::open(dir) {
            Ok(s) => Some(s),
            Err(e) => {
                eprintln!("resume: cannot open store at {}: {e}", dir.display());
                None
            }
        });
    // The abort flag exists only under fail-fast, so keep-going batches
    // run with inert (zero-cost) tokens unless a timeout is configured.
    let batch_token = if opts.fail_fast {
        CancelToken::shared()
    } else {
        CancelToken::new()
    };
    // The heartbeat monitor: a detached-until-joined thread printing one
    // stderr line per second with completed cells, an ETA extrapolated
    // from the mean cell time so far, and the phase the process is in.
    let done_count = Arc::new(AtomicUsize::new(0));
    let heartbeat_stop = Arc::new(AtomicBool::new(false));
    let monitor = (progress_enabled() && !cells.is_empty()).then(|| {
        let done = Arc::clone(&done_count);
        let stop = Arc::clone(&heartbeat_stop);
        let total = cells.len();
        std::thread::spawn(move || {
            let t0 = Instant::now();
            while !stop.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(1000));
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                let d = done.load(Ordering::Relaxed);
                let elapsed = t0.elapsed().as_secs_f64();
                let eta = if d > 0 {
                    format!("{:.0}s", elapsed / d as f64 * (total - d) as f64)
                } else {
                    "?".into()
                };
                let phase = grit_prof::current_phase().map_or("-", |p| p.name());
                eprintln!("progress: {d}/{total} cells done, {elapsed:.0}s elapsed, eta {eta}, phase {phase}");
            }
        })
    });
    let run_guarded = |cell: &CellSpec| -> Result<RunOutput, CellError> {
        if batch_token.poll() == CancelState::Cancelled {
            done_count.fetch_add(1, Ordering::Relaxed);
            return Err(CellError::Cancelled);
        }
        let key = store.as_ref().and_then(|_| cell.resume_key());
        if let (Some(store), Some(key)) = (&store, &key) {
            if let Some(out) = store.load(key) {
                done_count.fetch_add(1, Ordering::Relaxed);
                return Ok(out);
            }
        }
        let token = batch_token.child(opts.timeout);
        let result = catch_unwind(AssertUnwindSafe(|| cell.run_inner(&token, sim_threads)))
            .unwrap_or_else(|payload| {
                let message = if let Some(s) = payload.downcast_ref::<String>() {
                    s.clone()
                } else if let Some(s) = payload.downcast_ref::<&str>() {
                    (*s).to_string()
                } else {
                    "non-string panic payload".to_string()
                };
                Err(CellError::Panicked { message })
            });
        match &result {
            Ok(out) => {
                if let (Some(store), Some(key)) = (&store, &key) {
                    if let Err(e) = store.save(key, out) {
                        eprintln!("resume: failed to store cell result: {e}");
                    }
                }
            }
            Err(_) if opts.fail_fast => {
                FAIL_FAST_TRIGGERED.store(true, Ordering::Relaxed);
                batch_token.cancel();
            }
            Err(_) => {}
        }
        done_count.fetch_add(1, Ordering::Relaxed);
        result
    };
    let results: Vec<Result<RunOutput, CellError>> = if jobs <= 1 {
        cells.iter().map(run_guarded).collect()
    } else {
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Result<RunOutput, CellError>>>> =
            cells.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..jobs {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(cell) = cells.get(i) else { break };
                    let out = run_guarded(cell);
                    *slots[i].lock().expect("result slot poisoned") = Some(out);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("every cell ran to completion")
            })
            .collect()
    };
    heartbeat_stop.store(true, Ordering::Relaxed);
    if let Some(m) = monitor {
        let _ = m.join();
    }
    // Submit in declaration order, after all workers finished: the trace
    // stream and report are independent of the worker count (the serial
    // path is already in declaration order, but flows through the same
    // code so error accounting is uniform).
    for (cell, result) in cells.iter().zip(&results) {
        match result {
            Ok(out) => cell.submit(out),
            Err(e) => {
                eprintln!(
                    "cell failed [{}]: app={} policy={}: {e}",
                    e.status(),
                    cell.app,
                    cell.policy_label()
                );
                report_sink::record_cell_error(cell, e);
            }
        }
    }
    if profile {
        let cache_after = workload_cache::global().stats();
        report_sink::record_batch(BatchProfile {
            cells: cells.len() as u64,
            jobs: jobs as u64,
            sim_threads: sim_threads as u64,
            wall_seconds: start.elapsed().as_secs_f64(),
            workload_cache_hits: cache_after.hits.saturating_sub(cache_before.hits),
            workload_cache_misses: cache_after.misses.saturating_sub(cache_before.misses),
        });
    }
    results
}

/// Runs an `apps x policies` grid — the shape of most figures — and
/// returns one row of results per app, in declaration order.
pub fn run_grid(
    apps: &[App],
    policies: &[PolicyKind],
    exp: &ExpConfig,
) -> Vec<Vec<Result<RunOutput, CellError>>> {
    let cells: Vec<CellSpec> = apps
        .iter()
        .flat_map(|&app| policies.iter().map(move |&p| CellSpec::new(app, p, exp)))
        .collect();
    let mut results = run_batch(&cells);
    let width = policies.len().max(1);
    let mut rows = Vec::with_capacity(apps.len());
    while !results.is_empty() {
        let rest = results.split_off(width.min(results.len()));
        rows.push(std::mem::replace(&mut results, rest));
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use grit_sim::Scheme;

    fn exp() -> ExpConfig {
        ExpConfig {
            scale: 0.02,
            intensity: 0.5,
            seed: 0x7E57,
        }
    }

    fn grid() -> Vec<CellSpec> {
        let policies = [
            PolicyKind::Static(Scheme::OnTouch),
            PolicyKind::FirstTouch,
            PolicyKind::GRIT,
        ];
        [App::Bfs, App::Fir]
            .into_iter()
            .flat_map(|app| policies.map(|p| CellSpec::new(app, p, &exp())))
            .collect()
    }

    #[test]
    fn parallel_matches_serial_in_order() {
        let cells = grid();
        let serial = run_batch_with(&cells, &BatchOptions::new().jobs(1));
        let parallel = run_batch_with(&cells, &BatchOptions::new().jobs(4));
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(parallel.iter()) {
            let (s, p) = (s.as_ref().unwrap(), p.as_ref().unwrap());
            assert_eq!(s.metrics.total_cycles, p.metrics.total_cycles);
            assert_eq!(s.metrics.accesses, p.metrics.accesses);
            assert_eq!(s.metrics.faults.local_faults, p.metrics.faults.local_faults);
            assert_eq!(s.page_attrs, p.page_attrs);
        }
    }

    #[test]
    fn factory_policies_run() {
        let cell = CellSpec {
            app: App::Fir,
            policy: PolicySpec::Factory(Arc::new(|_, _| {
                Box::new(grit_uvm::StaticPolicy::new(Scheme::OnTouch))
            })),
            exp: exp(),
            cfg: SimConfig::default(),
            observer: None,
            prefetcher: None,
            trace: None,
        };
        assert!(cell.resume_key().is_none(), "factories are not resumable");
        let by_factory = cell.run();
        let by_kind = CellSpec::new(App::Fir, PolicyKind::Static(Scheme::OnTouch), &exp()).run();
        assert_eq!(
            by_factory.metrics.total_cycles,
            by_kind.metrics.total_cycles
        );
    }

    #[test]
    fn jobs_resolution_prefers_override() {
        // No override: some positive count.
        set_jobs(0);
        assert!(effective_jobs() >= 1);
        set_jobs(3);
        assert_eq!(effective_jobs(), 3);
        set_jobs(0);
    }

    #[test]
    fn sim_threads_resolution_prefers_override() {
        // No override: at least the serial default of 1.
        set_sim_threads(0);
        assert!(effective_sim_threads() >= 1);
        set_sim_threads(3);
        assert_eq!(effective_sim_threads(), 3);
        set_sim_threads(0);
    }

    #[test]
    fn thread_budget_clamps_oversubscription() {
        // Serial cells are never clamped, whatever the job count.
        assert_eq!(clamp_sim_threads(1, 1), 1);
        assert_eq!(clamp_sim_threads(1024, 1), 1);
        // A request that cannot fit next to the worker pool is capped to
        // the per-job share of the machine, never below 1.
        let avail = std::thread::available_parallelism().map_or(1, |n| n.get());
        assert_eq!(clamp_sim_threads(avail, avail * 4), 1);
        let capped = clamp_sim_threads(1, avail * 4);
        assert!(capped >= 1 && capped <= avail);
    }

    #[test]
    fn sharded_batch_matches_serial_per_cell() {
        // One worker, many event-loop threads per cell: the results must
        // match the serial engine cell for cell. The options override the
        // process-global setting, so this is race-free under the parallel
        // test harness.
        let cells = grid();
        let serial = run_batch_with(&cells, &BatchOptions::new().jobs(1).sim_threads(1));
        let sharded = run_batch_with(&cells, &BatchOptions::new().jobs(1).sim_threads(4));
        assert_eq!(serial.len(), sharded.len());
        for (s, p) in serial.iter().zip(sharded.iter()) {
            let (s, p) = (s.as_ref().unwrap(), p.as_ref().unwrap());
            assert_eq!(s.metrics.total_cycles, p.metrics.total_cycles);
            assert_eq!(s.metrics.accesses, p.metrics.accesses);
            assert_eq!(s.metrics.faults, p.metrics.faults);
            assert_eq!(s.page_attrs, p.page_attrs);
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        assert!(run_batch(&[]).is_empty());
    }

    #[test]
    fn cell_result_ext_maps_failures_to_nan() {
        let err: Result<RunOutput, CellError> = Err(CellError::Cancelled);
        assert!(err.output().is_none());
        assert!(err.cycles().is_nan());
        assert!(err.metric(|_| 1.0).is_nan());
    }

    #[test]
    fn resume_keys_distinguish_cells_and_versions() {
        let a = CellSpec::new(App::Bfs, PolicyKind::GRIT, &exp()).resume_key().unwrap();
        let b = CellSpec::new(App::Fir, PolicyKind::GRIT, &exp()).resume_key().unwrap();
        let c = CellSpec::new(App::Bfs, PolicyKind::FirstTouch, &exp()).resume_key().unwrap();
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert!(a.contains(env!("CARGO_PKG_VERSION")));
        let observed = CellSpec::new(App::Bfs, PolicyKind::GRIT, &exp())
            .observed(ObserverConfig::default().with_grids(50));
        assert_ne!(observed.resume_key().unwrap(), a);
    }
}
