//! Resilient parallel experiment execution.
//!
//! A figure driver declares its grid as [`CellSpec`] recipes — plain data
//! describing *what* to run — and [`run_batch`] fans the cells across a
//! scoped worker pool. Results come back in declaration order, so drivers
//! assemble tables exactly as the serial loops did and the printed output
//! is byte-identical regardless of the worker count.
//!
//! The API is **Result-first**: every cell yields a
//! `Result<RunOutput, CellError>`, so one poisoned cell — a panic inside
//! the simulator, an expired wall-clock budget, a violated invariant —
//! becomes a marked row in the tables and `run_report.json` instead of
//! aborting the whole campaign. Execution knobs travel in a
//! [`BatchOptions`] struct (worker count, per-cell timeout, resume
//! directory, fail-fast), replacing the old positional
//! `run_batch_with_jobs(cells, jobs)` signature.
//!
//! Fault isolation is three-layered:
//! 1. `catch_unwind` around each cell converts panics into
//!    [`CellError::Panicked`] rows;
//! 2. a [`CancelToken`] threaded into the simulation loop enforces
//!    per-cell soft timeouts ([`CellError::TimedOut`], with partial
//!    progress counters) and batch-wide fail-fast aborts
//!    ([`CellError::Cancelled`]);
//! 3. an optional content-addressed [`ResultStore`] makes campaigns
//!    resumable: completed cells are persisted under a
//!    `(app, exp, config, policy, code-version)` key, and a re-run with
//!    the same store skips them.
//!
//! Workers pull cells from a shared index, so a long cell (e.g. a full
//! GRIT run) never blocks the queue behind it. Workloads come from the
//! shared [`super::workload_cache`], which builds each distinct trace once
//! no matter how many cells (or workers) request it.
//!
//! The worker count is resolved, in priority order, from the programmatic
//! override ([`set_jobs`], wired to `repro --jobs N`), the `GRIT_JOBS`
//! environment variable, and the machine's available parallelism.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use grit_sim::{
    CancelState, CancelToken, CellError, RunSpec, SimConfig, TopologyConfig, TopologyKind,
};
use grit_trace::{writer as trace_writer, BatchProfile, CellMeta, CellTiming, TraceConfig, Tracer};
use grit_uvm::{PlacementPolicy, Prefetcher};
use grit_workloads::App;

use crate::runner::{ObserverConfig, RunOutput, SimulationBuilder};

use super::result_store::{ResultStore, STORE_SCHEMA};
use super::{report_sink, workload_cache, ExpConfig, PolicyKind};

/// Constructor for [`PolicySpec::Factory`] cells: receives the run's
/// `SimConfig` and footprint pages, returns the policy object.
pub type PolicyFactory = Arc<dyn Fn(&SimConfig, u64) -> Box<dyn PlacementPolicy> + Send + Sync>;

/// How a cell obtains its policy object.
#[derive(Clone)]
pub enum PolicySpec {
    /// A declarative recipe (the common case).
    Kind(PolicyKind),
    /// An arbitrary constructor, for cells whose policy is derived from
    /// earlier results (e.g. oracle policies seeded with a profile).
    Factory(PolicyFactory),
}

impl std::fmt::Debug for PolicySpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PolicySpec::Kind(k) => write!(f, "Kind({k:?})"),
            PolicySpec::Factory(_) => write!(f, "Factory(..)"),
        }
    }
}

impl From<PolicyKind> for PolicySpec {
    fn from(kind: PolicyKind) -> Self {
        PolicySpec::Kind(kind)
    }
}

/// One experiment cell: everything needed to run `(app, policy)` under an
/// experiment and system configuration.
#[derive(Clone)]
pub struct CellSpec {
    /// The workload-generating application.
    pub app: App,
    /// The placement policy recipe.
    pub policy: PolicySpec,
    /// Scale/intensity/seed knobs.
    pub exp: ExpConfig,
    /// System configuration (GPU count, latencies, page size).
    pub cfg: SimConfig,
    /// Optional instrumentation.
    pub observer: Option<ObserverConfig>,
    /// Optional prefetcher constructor (prefetchers are stateful, so each
    /// cell builds its own instance).
    pub prefetcher: Option<Arc<dyn Fn() -> Box<dyn Prefetcher> + Send + Sync>>,
    /// Per-cell trace configuration. `None` falls back to the process-wide
    /// writer's configuration (installed by `repro --trace`); tracing is
    /// fully disabled when neither is present.
    pub trace: Option<TraceConfig>,
}

impl std::fmt::Debug for CellSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CellSpec")
            .field("app", &self.app)
            .field("policy", &self.policy)
            .field("exp", &self.exp)
            .field("observer", &self.observer.is_some())
            .field("prefetcher", &self.prefetcher.is_some())
            .finish_non_exhaustive()
    }
}

impl CellSpec {
    /// A cell with the baseline system configuration (under the
    /// process-wide override [`RunSpec`] installed by
    /// [`set_override_spec`], so `repro --topology` / `--inject` /
    /// `--check-invariants` reshape every figure driver).
    pub fn new(app: App, policy: impl Into<PolicySpec>, exp: &ExpConfig) -> Self {
        CellSpec {
            app,
            policy: policy.into(),
            exp: *exp,
            cfg: apply_cell_overrides(SimConfig::default()),
            observer: None,
            prefetcher: None,
            trace: None,
        }
    }

    /// Replaces the system configuration. The process-wide overrides
    /// still apply on top (drivers that must pin an explicit per-cell
    /// topology or fault schedule — e.g. `ext_topology`,
    /// `ext_resilience` — construct the `CellSpec` struct literally
    /// instead).
    pub fn with_cfg(mut self, cfg: SimConfig) -> Self {
        self.cfg = apply_cell_overrides(cfg);
        self
    }

    /// Attaches observer instrumentation.
    pub fn observed(mut self, observer: ObserverConfig) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Attaches a prefetcher, built fresh for each run.
    pub fn with_prefetcher(
        mut self,
        make: impl Fn() -> Box<dyn Prefetcher> + Send + Sync + 'static,
    ) -> Self {
        self.prefetcher = Some(Arc::new(make));
        self
    }

    /// Attaches an explicit trace configuration (overrides the
    /// process-wide writer's configuration for this cell).
    pub fn traced(mut self, cfg: TraceConfig) -> Self {
        self.trace = Some(cfg);
        self
    }

    /// Label for the policy column in reports.
    pub fn policy_label(&self) -> String {
        match &self.policy {
            PolicySpec::Kind(kind) => kind.label(),
            PolicySpec::Factory(_) => "factory".into(),
        }
    }

    /// Trace-stream cell header metadata.
    pub fn meta(&self) -> CellMeta {
        CellMeta {
            app: self.app.to_string(),
            policy: self.policy_label(),
            gpus: self.cfg.num_gpus,
        }
    }

    /// Projects the cell back onto the serializable [`RunSpec`] surface:
    /// app and policy by their stable labels, experiment knobs verbatim,
    /// and machine overrides recorded only where the configuration
    /// differs from [`SimConfig::default`]. This is the `spec` column of
    /// `run_report.json` cell rows and the backbone of [`resume_key`],
    /// so the CLI, the store, the report, and the `grit-serve/v1` wire
    /// all name cells the same way.
    ///
    /// Execution knobs that live outside the cell (`sim_threads`,
    /// timeouts) are batch-level and stay unset here.
    ///
    /// [`resume_key`]: CellSpec::resume_key
    pub fn to_run_spec(&self) -> RunSpec {
        let d = SimConfig::default();
        let mut spec = RunSpec::new(self.app.abbr(), self.policy_label())
            .scale(self.exp.scale)
            .intensity(self.exp.intensity)
            .seed(self.exp.seed)
            .check_invariants(self.cfg.check_invariants);
        if self.cfg.num_gpus != d.num_gpus {
            spec = spec.gpus(self.cfg.num_gpus);
        }
        if self.cfg.page_size != d.page_size {
            spec = spec.page_size(self.cfg.page_size);
        }
        if self.cfg.page_size_mode != d.page_size_mode {
            spec = spec.page_size_mode(self.cfg.page_size_mode.name());
        }
        if self.cfg.topology != d.topology {
            spec = spec.topology(topology_label(&self.cfg.topology));
        }
        if !self.cfg.inject.is_empty() {
            spec = spec.inject(self.cfg.inject.to_string());
        }
        spec.trace(self.trace.is_some())
    }

    /// The cell's content-address in a [`ResultStore`], or `None` when the
    /// cell is ineligible for resumption: opaque policy factories can't be
    /// keyed, and prefetchers / per-cell tracing produce outputs the store
    /// can't fully reconstruct.
    ///
    /// The key embeds the crate version, so results never survive a code
    /// change; the cell itself is named by [`RunSpec::canonical`] (one
    /// encoding shared with reports and the serve wire), backed by the
    /// full `Debug` form of the configuration so drivers that reshape
    /// `SimConfig` fields beyond the spec surface (latency sweeps, cache
    /// geometry ablations) still get distinct keys.
    pub fn resume_key(&self) -> Option<String> {
        if self.prefetcher.is_some() || self.trace.is_some() {
            return None;
        }
        if matches!(self.policy, PolicySpec::Factory(_)) {
            return None;
        }
        Some(format!(
            "store={STORE_SCHEMA};code={};spec={};cfg={:?};observer={:?}",
            env!("CARGO_PKG_VERSION"),
            self.to_run_spec().canonical(),
            self.cfg,
            self.observer,
        ))
    }

    /// Runs this cell (workload via the shared cache) and submits its
    /// trace events and report record to the process-wide sinks.
    ///
    /// This is the *infallible* entry point for callers outside the batch
    /// executor (single-cell drivers, tests).
    ///
    /// # Panics
    ///
    /// Panics on any simulation failure; batch execution goes through
    /// [`run_batch`], which isolates failures as [`CellError`] values.
    pub fn run(&self) -> RunOutput {
        let sim_threads = clamp_sim_threads(1, effective_sim_threads());
        let out = self
            .run_inner(&CancelToken::new(), sim_threads)
            .unwrap_or_else(|e| panic!("{e}"));
        self.submit(&out);
        out
    }

    /// Runs the cell without submitting to the global sinks, threading a
    /// cancellation token into the simulation loop and sharding the
    /// cell's own event loop across `sim_threads` workers. The batch
    /// executor uses this so it can submit results in declaration order
    /// after the whole batch finishes, keeping the trace stream
    /// byte-identical at any worker or thread count.
    fn run_inner(&self, cancel: &CancelToken, sim_threads: usize) -> Result<RunOutput, CellError> {
        let build_start = Instant::now();
        let (workload, cache_hit) = {
            let _prof = grit_prof::span(grit_prof::Phase::TraceBuild);
            workload_cache::shared_workload_tracked(self.app, &self.exp, &self.cfg)
        };
        let build_seconds = build_start.elapsed().as_secs_f64();
        let policy = match &self.policy {
            PolicySpec::Kind(kind) => kind.build(&self.cfg, workload.footprint_pages),
            PolicySpec::Factory(make) => make(&self.cfg, workload.footprint_pages),
        };
        let mut builder = SimulationBuilder::new(self.cfg.clone(), workload, policy)
            .cancel(cancel.clone())
            .sim_threads(sim_threads);
        if let Some(obs) = &self.observer {
            builder = builder.observer(obs.clone());
        }
        if let Some(make) = &self.prefetcher {
            builder = builder.prefetcher(make());
        }
        let tracer = self.trace.or_else(trace_writer::global_config).map(Tracer::new);
        if let Some(t) = &tracer {
            builder = builder.tracer(t.clone());
        }
        let sim = builder.build().map_err(CellError::Config)?;
        let sim_start = Instant::now();
        let mut out = sim.try_run().map_err(CellError::from)?;
        out.timing = CellTiming {
            build_seconds,
            sim_seconds: sim_start.elapsed().as_secs_f64(),
            workload_cache_hit: cache_hit,
            resumed: false,
        };
        out.events = tracer.map(|t| t.take_events());
        Ok(out)
    }

    /// Submits a finished run to the global JSONL writer and the report
    /// collector. No-ops when neither sink is active.
    fn submit(&self, out: &RunOutput) {
        if let Some(events) = &out.events {
            if let Err(e) = trace_writer::submit_global(&self.meta(), events) {
                eprintln!("trace: failed to write events for {}: {e}", self.app);
            }
        }
        report_sink::record_cell(self, out);
    }
}

/// Convenience accessors for one batch result, so drivers can build
/// tables without matching on every cell: failed cells read as NaN, which
/// [`grit_metrics::Table`] renders as an error marker and
/// [`grit_metrics::geomean`] skips.
pub trait CellResultExt {
    /// The output, when the cell completed.
    fn output(&self) -> Option<&RunOutput>;
    /// Simulated total cycles, or NaN when the cell failed.
    fn cycles(&self) -> f64;
    /// An arbitrary metric projection, or NaN when the cell failed.
    fn metric(&self, f: impl FnOnce(&RunOutput) -> f64) -> f64;
}

impl CellResultExt for Result<RunOutput, CellError> {
    fn output(&self) -> Option<&RunOutput> {
        self.as_ref().ok()
    }

    fn cycles(&self) -> f64 {
        self.metric(|o| o.metrics.total_cycles as f64)
    }

    fn metric(&self, f: impl FnOnce(&RunOutput) -> f64) -> f64 {
        self.as_ref().map_or(f64::NAN, f)
    }
}

/// Execution knobs for one [`run_batch_with`] call.
///
/// The defaults ([`BatchOptions::default`]) run every cell with
/// [`effective_jobs`] workers, no timeout, no resume store, and
/// keep-going semantics; [`BatchOptions::from_defaults`] additionally
/// picks up the process-wide settings installed by the `repro` CLI flags
/// (the override [`RunSpec`]'s timeout, `--resume`, `--fail-fast`,
/// `--store-max-bytes`); `BatchOptions::from(&RunSpec)` lifts the
/// execution knobs out of one explicit spec (the serve path).
#[derive(Clone, Debug, Default)]
pub struct BatchOptions {
    /// Worker threads; `None` resolves via [`effective_jobs`].
    pub jobs: Option<usize>,
    /// Per-cell wall-clock budget; `None` disables timeouts.
    pub timeout: Option<Duration>,
    /// Directory of the on-disk [`ResultStore`]; `None` disables
    /// resumption.
    pub resume_dir: Option<PathBuf>,
    /// Abort the batch on the first failed cell (remaining cells report
    /// [`CellError::Cancelled`]) instead of running everything.
    pub fail_fast: bool,
    /// Worker threads sharding each cell's own event loop; `None`
    /// resolves via [`effective_sim_threads`], where the product
    /// `jobs × sim_threads` is capped at the machine's available
    /// parallelism (warn and clamp). An explicit `Some(n)` is honored
    /// verbatim. Output is byte-identical at any value.
    pub sim_threads: Option<usize>,
    /// Size budget for the on-disk [`ResultStore`] in bytes; `None`
    /// means unbounded. After every save the store evicts oldest-first
    /// until it fits.
    pub store_max_bytes: Option<u64>,
}

impl BatchOptions {
    /// All-default options (every field off / auto).
    pub fn new() -> Self {
        BatchOptions::default()
    }

    /// Options seeded from the process-wide defaults installed by
    /// [`set_override_spec`], [`set_resume_dir`], [`set_fail_fast`] and
    /// [`set_store_max_bytes`].
    pub fn from_defaults() -> Self {
        BatchOptions {
            jobs: None,
            timeout: default_timeout(),
            resume_dir: default_resume_dir(),
            fail_fast: FAIL_FAST_DEFAULT.load(Ordering::Relaxed),
            sim_threads: None,
            store_max_bytes: default_store_max_bytes(),
        }
    }

    /// Sets an explicit worker count.
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = Some(jobs);
        self
    }

    /// Sets a per-cell wall-clock budget.
    pub fn timeout(mut self, budget: Duration) -> Self {
        self.timeout = Some(budget);
        self
    }

    /// Enables the on-disk result store rooted at `dir`.
    pub fn resume_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.resume_dir = Some(dir.into());
        self
    }

    /// Aborts the batch on the first failure.
    pub fn fail_fast(mut self, yes: bool) -> Self {
        self.fail_fast = yes;
        self
    }

    /// Shards each cell's own event loop across `n` worker threads.
    pub fn sim_threads(mut self, n: usize) -> Self {
        self.sim_threads = Some(n);
        self
    }

    /// Bounds the on-disk result store to `bytes`.
    pub fn store_max_bytes(mut self, bytes: u64) -> Self {
        self.store_max_bytes = Some(bytes);
        self
    }
}

impl From<&RunSpec> for BatchOptions {
    /// Lifts the execution knobs (`timeout_secs`, `sim_threads`) out of a
    /// spec. Batch-level knobs a single-cell spec cannot name (worker
    /// count, resume directory, fail-fast, store budget) stay at their
    /// defaults so the caller composes them explicitly.
    fn from(spec: &RunSpec) -> Self {
        BatchOptions {
            jobs: None,
            timeout: spec.timeout_secs.map(Duration::from_secs_f64),
            resume_dir: None,
            fail_fast: false,
            sim_threads: spec.sim_threads,
            store_max_bytes: None,
        }
    }
}

/// Explicit worker-count override; 0 means "not set".
static JOBS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);
/// Process-wide fail-fast default (the `repro --fail-fast` flag).
static FAIL_FAST_DEFAULT: AtomicBool = AtomicBool::new(false);
/// Latched when any batch aborts due to fail-fast; the CLI exit code.
static FAIL_FAST_TRIGGERED: AtomicBool = AtomicBool::new(false);
/// Process-wide resume directory (the `repro --resume` flag).
static RESUME_DIR: Mutex<Option<PathBuf>> = Mutex::new(None);
/// Process-wide result-store size budget in bytes; 0 means "unbounded"
/// (the `repro --store-max-bytes` flag).
static STORE_MAX_BYTES: AtomicUsize = AtomicUsize::new(0);
/// The process-wide override [`RunSpec`]: the single place the `repro`
/// batch-override flags (`--topology`, `--inject`, `--check-invariants`,
/// `--sim-threads`, `--cell-timeout`) land. Machine-shaping fields flow
/// into every subsequently declared [`CellSpec`]; execution fields seed
/// [`BatchOptions::from_defaults`] and [`effective_sim_threads`].
static OVERRIDE_SPEC: Mutex<Option<RunSpec>> = Mutex::new(None);
/// Process-wide progress-heartbeat opt-in (the `repro --progress` flag).
static PROGRESS: AtomicBool = AtomicBool::new(false);

/// Turns the stderr progress heartbeat on or off for subsequent batches
/// (the `repro --progress` flag). Also enables `grit-prof`
/// current-phase tracking so the heartbeat can name the phase the
/// process is in. Deliberately process-wide rather than a `SimConfig`
/// field: resume keys must not depend on how a run is observed.
pub fn set_progress(on: bool) {
    PROGRESS.store(on, Ordering::Relaxed);
    grit_prof::set_track_current(on);
}

/// Whether the progress heartbeat is on.
pub fn progress_enabled() -> bool {
    PROGRESS.load(Ordering::Relaxed)
}

/// Installs the process-wide override [`RunSpec`] (`None` clears every
/// override). The `repro` batch-override flags build one spec and land
/// it here: its machine-shaping fields (`gpus`, `page_size`, `topology`,
/// `inject`, `check_invariants`) are applied to every subsequently
/// declared [`CellSpec`] — flowing into each cell's `SimConfig`, so
/// resume keys and run reports distinguish overridden runs
/// automatically — and its execution fields (`sim_threads`,
/// `timeout_secs`) seed [`effective_sim_threads`] and
/// [`BatchOptions::from_defaults`]. The spec's `app`/`policy`/experiment
/// knobs are ignored: cells already name those.
pub fn set_override_spec(spec: Option<RunSpec>) {
    *OVERRIDE_SPEC.lock().expect("override spec lock poisoned") = spec;
}

/// The current process-wide override [`RunSpec`]; a default spec (a
/// no-op when applied) when none is installed.
pub fn override_spec() -> RunSpec {
    OVERRIDE_SPEC
        .lock()
        .expect("override spec lock poisoned")
        .clone()
        .unwrap_or_default()
}

fn apply_cell_overrides(mut cfg: SimConfig) -> SimConfig {
    let spec = override_spec();
    if let Err(e) = spec.apply_to(&mut cfg) {
        // The CLI validates the grammar before installing the spec, so
        // this only fires when an override conflicts with a cell's own
        // configuration; the cell keeps what could be applied.
        eprintln!("override spec: {e}");
    }
    cfg
}

/// How a [`TopologyConfig`] is named on the [`RunSpec`] surface: the
/// `--topology` grammar string that parses back to it (radix-qualified
/// for non-default NVSwitch planes).
fn topology_label(t: &TopologyConfig) -> String {
    if t.kind == TopologyKind::NvSwitch && t.switch_radix != TopologyConfig::of(t.kind).switch_radix
    {
        format!("nvswitch:{}", t.switch_radix)
    } else {
        t.name().to_string()
    }
}

/// Sets the worker count for subsequent [`run_batch`] calls (0 clears the
/// override). The `repro --jobs N` flag lands here.
pub fn set_jobs(jobs: usize) {
    JOBS_OVERRIDE.store(jobs, Ordering::Relaxed);
}

fn default_timeout() -> Option<Duration> {
    override_spec().timeout_secs.map(Duration::from_secs_f64)
}

/// Sets the process-wide resume-store directory picked up by
/// [`BatchOptions::from_defaults`]. The `repro --resume` flag lands here;
/// `None` clears it.
pub fn set_resume_dir(dir: Option<PathBuf>) {
    *RESUME_DIR.lock().expect("resume dir lock poisoned") = dir;
}

fn default_resume_dir() -> Option<PathBuf> {
    RESUME_DIR.lock().expect("resume dir lock poisoned").clone()
}

/// Sets the process-wide result-store size budget picked up by
/// [`BatchOptions::from_defaults`]. The `repro --store-max-bytes N` flag
/// lands here; `None` clears it (unbounded).
pub fn set_store_max_bytes(bytes: Option<u64>) {
    let encoded = bytes.map_or(0, |b| usize::try_from(b.max(1)).unwrap_or(usize::MAX));
    STORE_MAX_BYTES.store(encoded, Ordering::Relaxed);
}

fn default_store_max_bytes() -> Option<u64> {
    match STORE_MAX_BYTES.load(Ordering::Relaxed) {
        0 => None,
        b => Some(b as u64),
    }
}

/// Sets the process-wide fail-fast default picked up by
/// [`BatchOptions::from_defaults`]. The `repro --fail-fast` flag lands
/// here.
pub fn set_fail_fast(yes: bool) {
    FAIL_FAST_DEFAULT.store(yes, Ordering::Relaxed);
}

/// Whether any batch in this process aborted due to fail-fast; `repro`
/// exits nonzero exactly when this is set.
pub fn fail_fast_triggered() -> bool {
    FAIL_FAST_TRIGGERED.load(Ordering::Relaxed)
}

/// The per-cell event-loop thread count: the override [`RunSpec`]'s
/// `sim_threads` (the `repro --sim-threads N` flag), else
/// `GRIT_SIM_THREADS`, else 1 (the serial engine). Unlike
/// [`effective_jobs`] this does not default to the machine's parallelism:
/// sharding one cell only pays off on big cells, and the batch layer
/// already fans out across cells.
pub fn effective_sim_threads() -> usize {
    if let Some(n) = override_spec().sim_threads.filter(|&n| n > 0) {
        return n;
    }
    std::env::var("GRIT_SIM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(1)
}

/// Caps `jobs × sim_threads` at the machine's available parallelism so a
/// batch of sharded cells does not oversubscribe cores and silently
/// regress; warns on stderr when it clamps.
fn clamp_sim_threads(jobs: usize, sim_threads: usize) -> usize {
    if sim_threads <= 1 {
        return sim_threads.max(1);
    }
    let avail = std::thread::available_parallelism().map_or(1, |n| n.get());
    if jobs.saturating_mul(sim_threads) <= avail {
        return sim_threads;
    }
    let capped = (avail / jobs.max(1)).max(1);
    eprintln!(
        "sim-threads: {jobs} jobs x {sim_threads} sim-threads oversubscribes \
         {avail} available cores; clamping to {capped} sim-threads per cell"
    );
    capped
}

/// The worker count [`run_batch`] will use: the [`set_jobs`] override,
/// else `GRIT_JOBS`, else the machine's available parallelism.
pub fn effective_jobs() -> usize {
    let explicit = JOBS_OVERRIDE.load(Ordering::Relaxed);
    if explicit > 0 {
        return explicit;
    }
    if let Some(n) = std::env::var("GRIT_JOBS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        return n;
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Runs every cell under [`BatchOptions::from_defaults`] and returns
/// per-cell results in declaration order.
pub fn run_batch(cells: &[CellSpec]) -> Vec<Result<RunOutput, CellError>> {
    run_batch_with(cells, &BatchOptions::from_defaults())
}

/// Runs every cell under explicit options. `jobs <= 1` runs serially on
/// the calling thread; either way, results come back in declaration order
/// and successful outputs are identical to a serial run's.
///
/// Failed cells are reported to the process-wide report sink as
/// structured error rows and logged to stderr; they never abort the batch
/// unless `fail_fast` is set, in which case the shared abort flag stops
/// in-flight cells at the next cancellation poll and unstarted cells
/// yield [`CellError::Cancelled`].
pub fn run_batch_with(
    cells: &[CellSpec],
    opts: &BatchOptions,
) -> Vec<Result<RunOutput, CellError>> {
    run_batch_with_stats(cells, opts).0
}

/// [`run_batch_with`], additionally returning this batch's result-store
/// traffic (hits, misses, quarantined files). The store is opened per
/// batch, so the counters cover exactly these cells; they are all zero
/// when resumption is disabled. The campaign service uses them to report
/// per-cell store behaviour to remote clients.
pub fn run_batch_with_stats(
    cells: &[CellSpec],
    opts: &BatchOptions,
) -> (Vec<Result<RunOutput, CellError>>, grit_trace::StoreCounters) {
    let profile = report_sink::enabled() && !cells.is_empty();
    let cache_before = workload_cache::global().stats();
    let start = Instant::now();
    let jobs = opts.jobs.unwrap_or_else(effective_jobs).clamp(1, cells.len().max(1));
    // An explicit option is honored verbatim (benches and determinism
    // tests need exact thread counts); only the ambient CLI/env setting
    // is capped against the worker pool.
    let sim_threads = match opts.sim_threads {
        Some(t) => t.max(1),
        None => clamp_sim_threads(jobs, effective_sim_threads()),
    };
    // The store cannot reproduce trace events, so resumption is disabled
    // batch-wide while a global trace writer is active: a resumed run must
    // never silently drop cells from the event stream.
    let store = opts
        .resume_dir
        .as_ref()
        .filter(|_| trace_writer::global_config().is_none())
        .and_then(
            |dir| match ResultStore::open_with(dir, opts.store_max_bytes) {
                Ok(s) => Some(s),
                Err(e) => {
                    eprintln!("resume: cannot open store at {}: {e}", dir.display());
                    None
                }
            },
        );
    // The abort flag exists only under fail-fast, so keep-going batches
    // run with inert (zero-cost) tokens unless a timeout is configured.
    let batch_token = if opts.fail_fast {
        CancelToken::shared()
    } else {
        CancelToken::new()
    };
    // The heartbeat monitor: a detached-until-joined thread printing one
    // stderr line per second with completed cells, an ETA extrapolated
    // from the mean cell time so far, and the phase the process is in.
    let done_count = Arc::new(AtomicUsize::new(0));
    let heartbeat_stop = Arc::new(AtomicBool::new(false));
    let monitor = (progress_enabled() && !cells.is_empty()).then(|| {
        let done = Arc::clone(&done_count);
        let stop = Arc::clone(&heartbeat_stop);
        let total = cells.len();
        std::thread::spawn(move || {
            let t0 = Instant::now();
            while !stop.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(1000));
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                let d = done.load(Ordering::Relaxed);
                let elapsed = t0.elapsed().as_secs_f64();
                let eta = if d > 0 {
                    format!("{:.0}s", elapsed / d as f64 * (total - d) as f64)
                } else {
                    "?".into()
                };
                let phase = grit_prof::current_phase().map_or("-", |p| p.name());
                eprintln!("progress: {d}/{total} cells done, {elapsed:.0}s elapsed, eta {eta}, phase {phase}");
            }
        })
    });
    let run_guarded = |cell: &CellSpec| -> Result<RunOutput, CellError> {
        if batch_token.poll() == CancelState::Cancelled {
            done_count.fetch_add(1, Ordering::Relaxed);
            return Err(CellError::Cancelled);
        }
        let key = store.as_ref().and_then(|_| cell.resume_key());
        if let (Some(store), Some(key)) = (&store, &key) {
            if let Some(out) = store.load(key) {
                done_count.fetch_add(1, Ordering::Relaxed);
                return Ok(out);
            }
        }
        let token = batch_token.child(opts.timeout);
        let result = catch_unwind(AssertUnwindSafe(|| cell.run_inner(&token, sim_threads)))
            .unwrap_or_else(|payload| {
                let message = if let Some(s) = payload.downcast_ref::<String>() {
                    s.clone()
                } else if let Some(s) = payload.downcast_ref::<&str>() {
                    (*s).to_string()
                } else {
                    "non-string panic payload".to_string()
                };
                Err(CellError::Panicked { message })
            });
        match &result {
            Ok(out) => {
                if let (Some(store), Some(key)) = (&store, &key) {
                    if let Err(e) = store.save(key, out) {
                        eprintln!("resume: failed to store cell result: {e}");
                    }
                }
            }
            Err(_) if opts.fail_fast => {
                FAIL_FAST_TRIGGERED.store(true, Ordering::Relaxed);
                batch_token.cancel();
            }
            Err(_) => {}
        }
        done_count.fetch_add(1, Ordering::Relaxed);
        result
    };
    let results: Vec<Result<RunOutput, CellError>> = if jobs <= 1 {
        cells.iter().map(run_guarded).collect()
    } else {
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Result<RunOutput, CellError>>>> =
            cells.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..jobs {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(cell) = cells.get(i) else { break };
                    let out = run_guarded(cell);
                    *slots[i].lock().expect("result slot poisoned") = Some(out);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("every cell ran to completion")
            })
            .collect()
    };
    heartbeat_stop.store(true, Ordering::Relaxed);
    if let Some(m) = monitor {
        let _ = m.join();
    }
    // Submit in declaration order, after all workers finished: the trace
    // stream and report are independent of the worker count (the serial
    // path is already in declaration order, but flows through the same
    // code so error accounting is uniform).
    for (cell, result) in cells.iter().zip(&results) {
        match result {
            Ok(out) => cell.submit(out),
            Err(e) => {
                eprintln!(
                    "cell failed [{}]: app={} policy={}: {e}",
                    e.status(),
                    cell.app,
                    cell.policy_label()
                );
                report_sink::record_cell_error(cell, e);
            }
        }
    }
    if profile {
        let cache_after = workload_cache::global().stats();
        report_sink::record_batch(BatchProfile {
            cells: cells.len() as u64,
            jobs: jobs as u64,
            sim_threads: sim_threads as u64,
            wall_seconds: start.elapsed().as_secs_f64(),
            workload_cache_hits: cache_after.hits.saturating_sub(cache_before.hits),
            workload_cache_misses: cache_after.misses.saturating_sub(cache_before.misses),
        });
    }
    let store_counters = store.as_ref().map(ResultStore::counters).unwrap_or_default();
    report_sink::record_store(store_counters);
    (results, store_counters)
}

/// Runs an `apps x policies` grid — the shape of most figures — and
/// returns one row of results per app, in declaration order.
pub fn run_grid(
    apps: &[App],
    policies: &[PolicyKind],
    exp: &ExpConfig,
) -> Vec<Vec<Result<RunOutput, CellError>>> {
    let cells: Vec<CellSpec> = apps
        .iter()
        .flat_map(|&app| policies.iter().map(move |&p| CellSpec::new(app, p, exp)))
        .collect();
    let mut results = run_batch(&cells);
    let width = policies.len().max(1);
    let mut rows = Vec::with_capacity(apps.len());
    while !results.is_empty() {
        let rest = results.split_off(width.min(results.len()));
        rows.push(std::mem::replace(&mut results, rest));
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use grit_sim::Scheme;

    fn exp() -> ExpConfig {
        ExpConfig {
            scale: 0.02,
            intensity: 0.5,
            seed: 0x7E57,
        }
    }

    fn grid() -> Vec<CellSpec> {
        let policies = [
            PolicyKind::Static(Scheme::OnTouch),
            PolicyKind::FirstTouch,
            PolicyKind::GRIT,
        ];
        [App::Bfs, App::Fir]
            .into_iter()
            .flat_map(|app| policies.map(|p| CellSpec::new(app, p, &exp())))
            .collect()
    }

    #[test]
    fn parallel_matches_serial_in_order() {
        let cells = grid();
        let serial = run_batch_with(&cells, &BatchOptions::new().jobs(1));
        let parallel = run_batch_with(&cells, &BatchOptions::new().jobs(4));
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(parallel.iter()) {
            let (s, p) = (s.as_ref().unwrap(), p.as_ref().unwrap());
            assert_eq!(s.metrics.total_cycles, p.metrics.total_cycles);
            assert_eq!(s.metrics.accesses, p.metrics.accesses);
            assert_eq!(s.metrics.faults.local_faults, p.metrics.faults.local_faults);
            assert_eq!(s.page_attrs, p.page_attrs);
        }
    }

    #[test]
    fn factory_policies_run() {
        let cell = CellSpec {
            app: App::Fir,
            policy: PolicySpec::Factory(Arc::new(|_, _| {
                Box::new(grit_uvm::StaticPolicy::new(Scheme::OnTouch))
            })),
            exp: exp(),
            cfg: SimConfig::default(),
            observer: None,
            prefetcher: None,
            trace: None,
        };
        assert!(cell.resume_key().is_none(), "factories are not resumable");
        let by_factory = cell.run();
        let by_kind = CellSpec::new(App::Fir, PolicyKind::Static(Scheme::OnTouch), &exp()).run();
        assert_eq!(
            by_factory.metrics.total_cycles,
            by_kind.metrics.total_cycles
        );
    }

    #[test]
    fn jobs_resolution_prefers_override() {
        // No override: some positive count.
        set_jobs(0);
        assert!(effective_jobs() >= 1);
        set_jobs(3);
        assert_eq!(effective_jobs(), 3);
        set_jobs(0);
    }

    #[test]
    fn sim_threads_resolution_prefers_override_spec() {
        // No override: at least the serial default of 1.
        set_override_spec(None);
        assert!(effective_sim_threads() >= 1);
        set_override_spec(Some(RunSpec::default().sim_threads(3)));
        assert_eq!(effective_sim_threads(), 3);
        set_override_spec(None);
    }

    #[test]
    fn batch_options_lift_execution_knobs_from_spec() {
        let spec = RunSpec::default().sim_threads(2).timeout_secs(1.5);
        let opts = BatchOptions::from(&spec);
        assert_eq!(opts.sim_threads, Some(2));
        assert_eq!(opts.timeout, Some(Duration::from_secs_f64(1.5)));
        assert!(opts.jobs.is_none() && opts.resume_dir.is_none());
        assert!(!opts.fail_fast && opts.store_max_bytes.is_none());
        // A spec without execution knobs lifts to all-default options.
        let plain = BatchOptions::from(&RunSpec::default());
        assert!(plain.timeout.is_none() && plain.sim_threads.is_none());
    }

    #[test]
    fn thread_budget_clamps_oversubscription() {
        // Serial cells are never clamped, whatever the job count.
        assert_eq!(clamp_sim_threads(1, 1), 1);
        assert_eq!(clamp_sim_threads(1024, 1), 1);
        // A request that cannot fit next to the worker pool is capped to
        // the per-job share of the machine, never below 1.
        let avail = std::thread::available_parallelism().map_or(1, |n| n.get());
        assert_eq!(clamp_sim_threads(avail, avail * 4), 1);
        let capped = clamp_sim_threads(1, avail * 4);
        assert!(capped >= 1 && capped <= avail);
    }

    #[test]
    fn sharded_batch_matches_serial_per_cell() {
        // One worker, many event-loop threads per cell: the results must
        // match the serial engine cell for cell. The options override the
        // process-global setting, so this is race-free under the parallel
        // test harness.
        let cells = grid();
        let serial = run_batch_with(&cells, &BatchOptions::new().jobs(1).sim_threads(1));
        let sharded = run_batch_with(&cells, &BatchOptions::new().jobs(1).sim_threads(4));
        assert_eq!(serial.len(), sharded.len());
        for (s, p) in serial.iter().zip(sharded.iter()) {
            let (s, p) = (s.as_ref().unwrap(), p.as_ref().unwrap());
            assert_eq!(s.metrics.total_cycles, p.metrics.total_cycles);
            assert_eq!(s.metrics.accesses, p.metrics.accesses);
            assert_eq!(s.metrics.faults, p.metrics.faults);
            assert_eq!(s.page_attrs, p.page_attrs);
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        assert!(run_batch(&[]).is_empty());
    }

    #[test]
    fn cell_result_ext_maps_failures_to_nan() {
        let err: Result<RunOutput, CellError> = Err(CellError::Cancelled);
        assert!(err.output().is_none());
        assert!(err.cycles().is_nan());
        assert!(err.metric(|_| 1.0).is_nan());
    }

    #[test]
    fn to_run_spec_names_the_machine_and_rebuilds_it() {
        let cfg = SimConfig {
            num_gpus: 8,
            topology: TopologyConfig::of(TopologyKind::Ring),
            ..SimConfig::default()
        };
        let cell = CellSpec {
            app: App::Fir,
            policy: PolicySpec::Kind(PolicyKind::GRIT),
            exp: exp(),
            cfg,
            observer: None,
            prefetcher: None,
            trace: None,
        };
        let spec = cell.to_run_spec();
        assert_eq!(spec.app, "FIR");
        assert_eq!(spec.policy, "grit");
        assert_eq!(spec.gpus, Some(8));
        assert_eq!(spec.topology.as_deref(), Some("ring"));
        assert_eq!(spec.scale, exp().scale);
        // Applying the projected spec to a default machine reconstructs
        // the cell's configuration, so spec naming loses nothing.
        let mut rebuilt = SimConfig::default();
        spec.apply_to(&mut rebuilt).unwrap();
        assert_eq!(rebuilt, cell.cfg);
        // The canonical spec string is embedded verbatim in the resume
        // key: one naming scheme across store, report, and wire.
        assert!(cell.resume_key().unwrap().contains(&spec.canonical()));
        // A default-machine cell projects to a spec with no overrides.
        let plain = CellSpec::new(App::Bfs, PolicyKind::GRIT, &exp()).to_run_spec();
        assert!(plain.gpus.is_none() && plain.topology.is_none() && plain.inject.is_none());
    }

    #[test]
    fn resume_keys_distinguish_cells_and_versions() {
        let a = CellSpec::new(App::Bfs, PolicyKind::GRIT, &exp()).resume_key().unwrap();
        let b = CellSpec::new(App::Fir, PolicyKind::GRIT, &exp()).resume_key().unwrap();
        let c = CellSpec::new(App::Bfs, PolicyKind::FirstTouch, &exp()).resume_key().unwrap();
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert!(a.contains(env!("CARGO_PKG_VERSION")));
        let observed = CellSpec::new(App::Bfs, PolicyKind::GRIT, &exp())
            .observed(ObserverConfig::default().with_grids(50));
        assert_ne!(observed.resume_key().unwrap(), a);
    }
}
