//! Parallel experiment execution.
//!
//! A figure driver declares its grid as [`CellSpec`] recipes — plain data
//! describing *what* to run — and [`run_batch`] fans the cells across a
//! scoped worker pool. Results come back in declaration order, so drivers
//! assemble tables exactly as the serial loops did and the printed output
//! is byte-identical regardless of the worker count.
//!
//! Workers pull cells from a shared index, so a long cell (e.g. a full
//! GRIT run) never blocks the queue behind it. Workloads come from the
//! shared [`super::workload_cache`], which builds each distinct trace once
//! no matter how many cells (or workers) request it.
//!
//! The worker count is resolved, in priority order, from the programmatic
//! override ([`set_jobs`], wired to `repro --jobs N`), the `GRIT_JOBS`
//! environment variable, and the machine's available parallelism.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use grit_sim::SimConfig;
use grit_trace::{writer as trace_writer, BatchProfile, CellMeta, CellTiming, TraceConfig, Tracer};
use grit_uvm::{PlacementPolicy, Prefetcher};
use grit_workloads::App;

use crate::runner::{ObserverConfig, RunOutput, Simulation};

use super::{report_sink, workload_cache, ExpConfig, PolicyKind};

/// Constructor for [`PolicySpec::Factory`] cells: receives the run's
/// `SimConfig` and footprint pages, returns the policy object.
pub type PolicyFactory = Arc<dyn Fn(&SimConfig, u64) -> Box<dyn PlacementPolicy> + Send + Sync>;

/// How a cell obtains its policy object.
#[derive(Clone)]
pub enum PolicySpec {
    /// A declarative recipe (the common case).
    Kind(PolicyKind),
    /// An arbitrary constructor, for cells whose policy is derived from
    /// earlier results (e.g. oracle policies seeded with a profile).
    Factory(PolicyFactory),
}

impl std::fmt::Debug for PolicySpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PolicySpec::Kind(k) => write!(f, "Kind({k:?})"),
            PolicySpec::Factory(_) => write!(f, "Factory(..)"),
        }
    }
}

impl From<PolicyKind> for PolicySpec {
    fn from(kind: PolicyKind) -> Self {
        PolicySpec::Kind(kind)
    }
}

/// One experiment cell: everything needed to run `(app, policy)` under an
/// experiment and system configuration.
#[derive(Clone)]
pub struct CellSpec {
    /// The workload-generating application.
    pub app: App,
    /// The placement policy recipe.
    pub policy: PolicySpec,
    /// Scale/intensity/seed knobs.
    pub exp: ExpConfig,
    /// System configuration (GPU count, latencies, page size).
    pub cfg: SimConfig,
    /// Optional instrumentation.
    pub observer: Option<ObserverConfig>,
    /// Optional prefetcher constructor (prefetchers are stateful, so each
    /// cell builds its own instance).
    pub prefetcher: Option<Arc<dyn Fn() -> Box<dyn Prefetcher> + Send + Sync>>,
    /// Per-cell trace configuration. `None` falls back to the process-wide
    /// writer's configuration (installed by `repro --trace`); tracing is
    /// fully disabled when neither is present.
    pub trace: Option<TraceConfig>,
}

impl std::fmt::Debug for CellSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CellSpec")
            .field("app", &self.app)
            .field("policy", &self.policy)
            .field("exp", &self.exp)
            .field("observer", &self.observer.is_some())
            .field("prefetcher", &self.prefetcher.is_some())
            .finish_non_exhaustive()
    }
}

impl CellSpec {
    /// A cell with the baseline system configuration.
    pub fn new(app: App, policy: impl Into<PolicySpec>, exp: &ExpConfig) -> Self {
        CellSpec {
            app,
            policy: policy.into(),
            exp: *exp,
            cfg: SimConfig::default(),
            observer: None,
            prefetcher: None,
            trace: None,
        }
    }

    /// Replaces the system configuration.
    pub fn with_cfg(mut self, cfg: SimConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Attaches observer instrumentation.
    pub fn observed(mut self, observer: ObserverConfig) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Attaches a prefetcher, built fresh for each run.
    pub fn with_prefetcher(
        mut self,
        make: impl Fn() -> Box<dyn Prefetcher> + Send + Sync + 'static,
    ) -> Self {
        self.prefetcher = Some(Arc::new(make));
        self
    }

    /// Attaches an explicit trace configuration (overrides the
    /// process-wide writer's configuration for this cell).
    pub fn traced(mut self, cfg: TraceConfig) -> Self {
        self.trace = Some(cfg);
        self
    }

    /// Label for the policy column in reports.
    pub fn policy_label(&self) -> String {
        match &self.policy {
            PolicySpec::Kind(kind) => kind.label(),
            PolicySpec::Factory(_) => "factory".into(),
        }
    }

    /// Trace-stream cell header metadata.
    pub fn meta(&self) -> CellMeta {
        CellMeta {
            app: self.app.to_string(),
            policy: self.policy_label(),
            gpus: self.cfg.num_gpus,
        }
    }

    /// Runs this cell (workload via the shared cache) and submits its
    /// trace events and report record to the process-wide sinks.
    pub fn run(&self) -> RunOutput {
        let out = self.run_inner();
        self.submit(&out);
        out
    }

    /// Runs the cell without submitting to the global sinks. The parallel
    /// executor uses this so it can submit results in declaration order
    /// after the whole batch finishes, keeping the trace stream
    /// byte-identical at any worker count.
    fn run_inner(&self) -> RunOutput {
        let build_start = Instant::now();
        let (workload, cache_hit) =
            workload_cache::shared_workload_tracked(self.app, &self.exp, &self.cfg);
        let build_seconds = build_start.elapsed().as_secs_f64();
        let policy = match &self.policy {
            PolicySpec::Kind(kind) => kind.build(&self.cfg, workload.footprint_pages),
            PolicySpec::Factory(make) => make(&self.cfg, workload.footprint_pages),
        };
        let mut sim = Simulation::new(self.cfg.clone(), workload, policy);
        if let Some(obs) = &self.observer {
            sim.set_observer(obs.clone());
        }
        if let Some(make) = &self.prefetcher {
            sim.set_prefetcher(make());
        }
        let tracer = self.trace.or_else(trace_writer::global_config).map(|cfg| {
            let t = Tracer::new(cfg);
            sim.set_tracer(t.clone());
            t
        });
        let sim_start = Instant::now();
        let mut out = sim.run();
        out.timing = CellTiming {
            build_seconds,
            sim_seconds: sim_start.elapsed().as_secs_f64(),
            workload_cache_hit: cache_hit,
        };
        out.events = tracer.map(|t| t.take_events());
        out
    }

    /// Submits a finished run to the global JSONL writer and the report
    /// collector. No-ops when neither sink is active.
    fn submit(&self, out: &RunOutput) {
        if let Some(events) = &out.events {
            if let Err(e) = trace_writer::submit_global(&self.meta(), events) {
                eprintln!("trace: failed to write events for {}: {e}", self.app);
            }
        }
        report_sink::record_cell(self, out);
    }
}

/// Explicit worker-count override; 0 means "not set".
static JOBS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Sets the worker count for subsequent [`run_batch`] calls (0 clears the
/// override). The `repro --jobs N` flag lands here.
pub fn set_jobs(jobs: usize) {
    JOBS_OVERRIDE.store(jobs, Ordering::Relaxed);
}

/// The worker count [`run_batch`] will use: the [`set_jobs`] override,
/// else `GRIT_JOBS`, else the machine's available parallelism.
pub fn effective_jobs() -> usize {
    let explicit = JOBS_OVERRIDE.load(Ordering::Relaxed);
    if explicit > 0 {
        return explicit;
    }
    if let Some(n) = std::env::var("GRIT_JOBS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        return n;
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Runs every cell and returns outputs in declaration order, using
/// [`effective_jobs`] workers.
pub fn run_batch(cells: &[CellSpec]) -> Vec<RunOutput> {
    run_batch_with_jobs(cells, effective_jobs())
}

/// Runs every cell with an explicit worker count. `jobs <= 1` runs
/// serially on the calling thread; either way, outputs are returned in
/// declaration order and are identical to a serial run.
pub fn run_batch_with_jobs(cells: &[CellSpec], jobs: usize) -> Vec<RunOutput> {
    let profile = report_sink::enabled() && !cells.is_empty();
    let cache_before = workload_cache::global().stats();
    let start = Instant::now();
    let jobs = jobs.clamp(1, cells.len().max(1));
    let outputs = if jobs <= 1 {
        cells.iter().map(CellSpec::run).collect()
    } else {
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<RunOutput>>> = cells.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..jobs {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(cell) = cells.get(i) else { break };
                    let out = cell.run_inner();
                    *slots[i].lock().expect("result slot poisoned") = Some(out);
                });
            }
        });
        let outputs: Vec<RunOutput> = slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("every cell ran to completion")
            })
            .collect();
        // Submit in declaration order, after the parallel barrier: the
        // trace stream and report are independent of the worker count.
        for (cell, out) in cells.iter().zip(&outputs) {
            cell.submit(out);
        }
        outputs
    };
    if profile {
        let cache_after = workload_cache::global().stats();
        report_sink::record_batch(BatchProfile {
            cells: cells.len() as u64,
            jobs: jobs as u64,
            wall_seconds: start.elapsed().as_secs_f64(),
            workload_cache_hits: cache_after.hits.saturating_sub(cache_before.hits),
            workload_cache_misses: cache_after.misses.saturating_sub(cache_before.misses),
        });
    }
    outputs
}

/// Runs an `apps x policies` grid — the shape of most figures — and
/// returns one row of outputs per app, in declaration order.
pub fn run_grid(apps: &[App], policies: &[PolicyKind], exp: &ExpConfig) -> Vec<Vec<RunOutput>> {
    let cells: Vec<CellSpec> = apps
        .iter()
        .flat_map(|&app| policies.iter().map(move |&p| CellSpec::new(app, p, exp)))
        .collect();
    let outputs = run_batch(&cells);
    outputs.chunks(policies.len().max(1)).map(<[RunOutput]>::to_vec).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use grit_sim::Scheme;

    fn exp() -> ExpConfig {
        ExpConfig {
            scale: 0.02,
            intensity: 0.5,
            seed: 0x7E57,
        }
    }

    fn grid() -> Vec<CellSpec> {
        let policies = [
            PolicyKind::Static(Scheme::OnTouch),
            PolicyKind::FirstTouch,
            PolicyKind::GRIT,
        ];
        [App::Bfs, App::Fir]
            .into_iter()
            .flat_map(|app| policies.map(|p| CellSpec::new(app, p, &exp())))
            .collect()
    }

    #[test]
    fn parallel_matches_serial_in_order() {
        let cells = grid();
        let serial = run_batch_with_jobs(&cells, 1);
        let parallel = run_batch_with_jobs(&cells, 4);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(parallel.iter()) {
            assert_eq!(s.metrics.total_cycles, p.metrics.total_cycles);
            assert_eq!(s.metrics.accesses, p.metrics.accesses);
            assert_eq!(s.metrics.faults.local_faults, p.metrics.faults.local_faults);
            assert_eq!(s.page_attrs, p.page_attrs);
        }
    }

    #[test]
    fn factory_policies_run() {
        let cell = CellSpec {
            app: App::Fir,
            policy: PolicySpec::Factory(Arc::new(|_, _| {
                Box::new(grit_uvm::StaticPolicy::new(Scheme::OnTouch))
            })),
            exp: exp(),
            cfg: SimConfig::default(),
            observer: None,
            prefetcher: None,
            trace: None,
        };
        let by_factory = cell.run();
        let by_kind = CellSpec::new(App::Fir, PolicyKind::Static(Scheme::OnTouch), &exp()).run();
        assert_eq!(
            by_factory.metrics.total_cycles,
            by_kind.metrics.total_cycles
        );
    }

    #[test]
    fn jobs_resolution_prefers_override() {
        // No override: some positive count.
        set_jobs(0);
        assert!(effective_jobs() >= 1);
        set_jobs(3);
        assert_eq!(effective_jobs(), 3);
        set_jobs(0);
    }

    #[test]
    fn empty_batch_is_fine() {
        assert!(run_batch(&[]).is_empty());
    }
}
