//! Extension experiment (beyond the paper): GRIT vs a profile-guided
//! *static oracle* that places every page with whole-run knowledge.
//!
//! The oracle upper-bounds any static per-page placement; pages whose
//! behaviour changes over time (Fig. 10) are the only thing it cannot
//! express. GRIT approaching the oracle on the static apps validates its
//! online classification; GRIT or the oracle trading wins on the
//! phase-changing apps (ST, BS) shows where adaptivity matters.

use grit_baselines::OraclePolicy;
use grit_metrics::Table;
use grit_sim::{Scheme, SimConfig};
use grit_workloads::WorkloadBuilder;

use super::{run_cell, table2_apps, ExpConfig, PolicyKind};
use crate::runner::Simulation;

/// Runs the extension: speedups over on-touch for GRIT, the static oracle
/// and the Ideal.
pub fn run(exp: &ExpConfig) -> Table {
    let mut table = Table::new(
        "Extension: GRIT vs profile-guided static oracle (speedup over on-touch)",
        vec!["on-touch".into(), "grit".into(), "oracle".into(), "ideal".into()],
    );
    for app in table2_apps() {
        // Profiling pass (the oracle gets a free run the online policies
        // never see).
        let profile = run_cell(app, PolicyKind::Static(Scheme::OnTouch), exp);
        let base = profile.metrics.total_cycles;
        let oracle_policy = OraclePolicy::from_profile(&profile.attrs);

        let cfg = SimConfig::default();
        let workload = WorkloadBuilder::new(app)
            .num_gpus(cfg.num_gpus)
            .scale(exp.scale)
            .intensity(exp.intensity)
            .seed(exp.seed)
            .build();
        let oracle =
            Simulation::new(cfg, workload, Box::new(oracle_policy)).run().metrics.total_cycles;

        let grit = run_cell(app, PolicyKind::GRIT, exp).metrics.total_cycles;
        let ideal = run_cell(app, PolicyKind::Ideal, exp).metrics.total_cycles;
        table.push_row(
            app.abbr(),
            vec![
                1.0,
                base as f64 / grit as f64,
                base as f64 / oracle as f64,
                base as f64 / ideal as f64,
            ],
        );
    }
    table.push_geomean_row();
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_sits_between_grit_and_ideal_on_average() {
        let t = run(&ExpConfig::quick());
        let grit = t.cell("GEOMEAN", "grit").unwrap();
        let oracle = t.cell("GEOMEAN", "oracle").unwrap();
        let ideal = t.cell("GEOMEAN", "ideal").unwrap();
        assert!(
            oracle >= 0.95 * grit,
            "perfect-profile placement must match or beat GRIT: {oracle} vs {grit}"
        );
        assert!(ideal > oracle, "Ideal bounds the oracle: {ideal} vs {oracle}");
    }

    #[test]
    fn grit_recovers_most_of_the_oracle() {
        // The paper's premise: online fault-driven classification gets
        // close to what offline profiling would pick.
        let t = run(&ExpConfig::quick());
        let grit = t.cell("GEOMEAN", "grit").unwrap();
        let oracle = t.cell("GEOMEAN", "oracle").unwrap();
        assert!(
            grit >= 0.70 * oracle,
            "GRIT must recover most of the oracle's gain: {grit} vs {oracle}"
        );
    }
}
