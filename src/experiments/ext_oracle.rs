//! Extension experiment (beyond the paper): GRIT vs a profile-guided
//! *static oracle* that places every page with whole-run knowledge.
//!
//! The oracle upper-bounds any static per-page placement; pages whose
//! behaviour changes over time (Fig. 10) are the only thing it cannot
//! express. GRIT approaching the oracle on the static apps validates its
//! online classification; GRIT or the oracle trading wins on the
//! phase-changing apps (ST, BS) shows where adaptivity matters.

use std::sync::Arc;

use grit_baselines::OraclePolicy;
use grit_metrics::Table;
use grit_sim::Scheme;

use super::{
    run_batch, run_grid, table2_apps, CellResultExt, CellSpec, ExpConfig, PolicyKind, PolicySpec,
};

/// Runs the extension: speedups over on-touch for GRIT, the static oracle
/// and the Ideal.
pub fn run(exp: &ExpConfig) -> Table {
    let mut table = Table::new(
        "Extension: GRIT vs profile-guided static oracle (speedup over on-touch)",
        vec![
            "on-touch".into(),
            "grit".into(),
            "oracle".into(),
            "ideal".into(),
        ],
    );
    // Phase 1: the online policies. The on-touch run doubles as the
    // profiling pass (the oracle gets whole-run knowledge the online
    // policies never see).
    let online = [
        PolicyKind::Static(Scheme::OnTouch),
        PolicyKind::GRIT,
        PolicyKind::Ideal,
    ];
    let rows = run_grid(&table2_apps(), &online, exp);
    // Phase 2: one oracle cell per app, seeded with that app's profile (an
    // app whose profiling pass failed gets no oracle cell and NaN columns).
    let oracle_cells: Vec<Option<CellSpec>> = table2_apps()
        .into_iter()
        .zip(&rows)
        .map(|(app, runs)| {
            runs[0].output().map(|profile| {
                let attrs = profile.attrs.clone();
                let factory = PolicySpec::Factory(Arc::new(move |_, _| {
                    Box::new(OraclePolicy::from_profile(&attrs))
                }));
                CellSpec::new(app, factory, exp)
            })
        })
        .collect();
    let flat: Vec<CellSpec> = oracle_cells.iter().flatten().cloned().collect();
    let oracles = run_batch(&flat);
    let mut oracle_iter = oracles.iter();
    for ((app, runs), pick) in table2_apps().into_iter().zip(&rows).zip(&oracle_cells) {
        let base = runs[0].cycles();
        let oracle = pick
            .as_ref()
            .and_then(|_| oracle_iter.next())
            .map_or(f64::NAN, CellResultExt::cycles);
        table.push_row(
            app.abbr(),
            vec![
                runs[0].metric(|_| 1.0),
                base / runs[1].cycles(),
                base / oracle,
                base / runs[2].cycles(),
            ],
        );
    }
    table.push_geomean_row();
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_sits_between_grit_and_ideal_on_average() {
        let t = run(&ExpConfig::quick());
        let grit = t.cell("GEOMEAN", "grit").unwrap();
        let oracle = t.cell("GEOMEAN", "oracle").unwrap();
        let ideal = t.cell("GEOMEAN", "ideal").unwrap();
        assert!(
            oracle >= 0.95 * grit,
            "perfect-profile placement must match or beat GRIT: {oracle} vs {grit}"
        );
        assert!(
            ideal > oracle,
            "Ideal bounds the oracle: {ideal} vs {oracle}"
        );
    }

    #[test]
    fn grit_recovers_most_of_the_oracle() {
        // The paper's premise: online fault-driven classification gets
        // close to what offline profiling would pick.
        let t = run(&ExpConfig::quick());
        let grit = t.cell("GEOMEAN", "grit").unwrap();
        let oracle = t.cell("GEOMEAN", "oracle").unwrap();
        assert!(
            grit >= 0.70 * oracle,
            "GRIT must recover most of the oracle's gain: {grit} vs {oracle}"
        );
    }
}
