//! Fig. 1 (and the motivation of §I): performance of uniformly applying
//! each page placement scheme, plus the unrealizable Ideal, normalized to
//! on-touch migration.

use grit_metrics::Table;
use grit_sim::Scheme;

use super::{run_batch, table2_apps, CellResultExt, CellSpec, ExpConfig, PolicyKind};

/// Policies compared by Fig. 1, in plot order.
pub fn policies() -> [PolicyKind; 4] {
    [
        PolicyKind::Static(Scheme::OnTouch),
        PolicyKind::Static(Scheme::AccessCounter),
        PolicyKind::Static(Scheme::Duplication),
        PolicyKind::Ideal,
    ]
}

/// Runs the figure: speedup of each scheme over on-touch, per application.
pub fn run(exp: &ExpConfig) -> Table {
    let cols: Vec<String> = policies().iter().map(|p| p.label()).collect();
    let mut table = Table::new(
        "Fig 1: performance of each scheme relative to baseline on-touch migration",
        cols,
    );
    let cells: Vec<CellSpec> = table2_apps()
        .into_iter()
        .flat_map(|app| policies().map(|p| CellSpec::new(app, p, exp)))
        .collect();
    let outputs = run_batch(&cells);
    for (app, runs) in table2_apps().into_iter().zip(outputs.chunks(policies().len())) {
        let cycles: Vec<f64> = runs.iter().map(CellResultExt::cycles).collect();
        let base = cycles[0];
        table.push_row(app.abbr(), cycles.iter().map(|&c| base / c).collect());
    }
    table.push_geomean_row();
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_paper() {
        let t = run(&ExpConfig::quick());
        // On-touch column is identically 1.0.
        for (_, row) in t.rows() {
            assert!((row[0] - 1.0).abs() < 1e-9);
        }
        // Ideal dominates every scheme on every app.
        for (label, row) in t.rows() {
            if label == "GEOMEAN" {
                continue;
            }
            let ideal = row[3];
            assert!(
                ideal >= row[0] && ideal >= row[1] && ideal >= row[2],
                "{label}: ideal must dominate, got {row:?}"
            );
        }
    }
}
