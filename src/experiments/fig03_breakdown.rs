//! Fig. 3: page-handling latency breakdown of each scheme into the six
//! classes {local, host, page-migration, remote-access, page-duplication,
//! write-collapse}, normalized per application to the on-touch total.

use grit_metrics::{LatencyClass, Table};
use grit_sim::Scheme;

use super::{run_batch, table2_apps, CellResultExt, CellSpec, ExpConfig, PolicyKind};

/// Runs the figure. Rows are `APP/SCHEME`, columns the six classes; values
/// are fractions of that application's on-touch page-handling total, so a
/// row summing above 1.0 spends more page-handling time than on-touch.
pub fn run(exp: &ExpConfig) -> Table {
    let mut cols: Vec<String> = LatencyClass::ALL.iter().map(|c| c.label().to_string()).collect();
    cols.push("total".into());
    let mut table = Table::new(
        "Fig 3: page-handling latency breakdown (normalized to on-touch total)",
        cols,
    );
    let schemes = [Scheme::OnTouch, Scheme::AccessCounter, Scheme::Duplication];
    let cells: Vec<CellSpec> = table2_apps()
        .into_iter()
        .flat_map(|app| schemes.map(|s| CellSpec::new(app, PolicyKind::Static(s), exp)))
        .collect();
    let outputs = run_batch(&cells);
    for (app, chunk) in table2_apps().into_iter().zip(outputs.chunks(schemes.len())) {
        let base_total = chunk[0].metric(|o| o.metrics.breakdown.total().max(1) as f64);
        for (scheme, r) in schemes.iter().zip(chunk) {
            let row = match r.output() {
                Some(o) => {
                    let b = o.metrics.breakdown;
                    let mut row: Vec<f64> =
                        LatencyClass::ALL.iter().map(|c| b.get(*c) as f64 / base_total).collect();
                    row.push(b.total() as f64 / base_total);
                    row
                }
                None => vec![f64::NAN; LatencyClass::ALL.len() + 1],
            };
            table.push_row(format!("{}/{}", app.abbr(), scheme.label()), row);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_structure_matches_schemes() {
        let t = run(&ExpConfig::quick());
        for (label, row) in t.rows() {
            let (dup_col, collapse_col, migration_col, remote_col) = (4, 5, 2, 3);
            if label.ends_with("/OT") {
                // On-touch never duplicates or collapses.
                assert_eq!(row[dup_col], 0.0, "{label}");
                assert_eq!(row[collapse_col], 0.0, "{label}");
                // And its total normalizes to 1.
                assert!((row[6] - 1.0).abs() < 1e-9, "{label}");
            }
            if label.ends_with("/D") {
                // Duplication never migrates by counter and never pays
                // remote accesses.
                assert_eq!(row[remote_col], 0.0, "{label}");
            }
            let _ = migration_col;
        }
    }

    #[test]
    fn migration_time_is_an_on_touch_phenomenon() {
        let t = run(&ExpConfig::quick());
        // Per app, on-touch spends more of the page-handling budget moving
        // pages than either alternative scheme does.
        for app in super::super::table2_apps() {
            let ot = t.cell(&format!("{}/OT", app.abbr()), "page-migration").unwrap();
            let d = t.cell(&format!("{}/D", app.abbr()), "page-migration").unwrap();
            assert!(ot >= d, "{app}: OT migration {ot} vs D {d}");
        }
        // And the access-counter rows carry the remote-access burden.
        let mut remote_heavy = 0;
        for (label, row) in t.rows() {
            if label.ends_with("/AC") && row[3] > row[2] {
                remote_heavy += 1;
            }
        }
        assert!(
            remote_heavy >= 5,
            "AC must be remote-dominated: {remote_heavy}/8"
        );
    }
}
