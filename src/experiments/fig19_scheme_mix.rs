//! Fig. 19: under GRIT, the percentage of L2-TLB-missing accesses governed
//! by each placement scheme — showing GRIT picks duplication for
//! BFS/GEMM/MM, on-touch for C2D/FIR/SC, access-counter for BS, and a
//! duplication/on-touch blend for ST.

use grit_metrics::Table;

use super::{run_grid, table2_apps, CellResultExt, ExpConfig, PolicyKind};

/// Runs the figure.
pub fn run(exp: &ExpConfig) -> Table {
    let mut table = Table::new(
        "Fig 19: scheme mix at L2 TLB misses under GRIT (%)",
        vec![
            "on-touch".into(),
            "access-counter".into(),
            "duplication".into(),
        ],
    );
    let rows = run_grid(&table2_apps(), &[PolicyKind::GRIT], exp);
    for (app, runs) in table2_apps().into_iter().zip(&rows) {
        let row = match runs[0].output() {
            Some(o) => {
                let (ot, ac, d) = o.metrics.scheme_mix.fractions();
                vec![100.0 * ot, 100.0 * ac, 100.0 * d]
            }
            None => vec![f64::NAN; 3],
        };
        table.push_row(app.abbr(), row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_sum_to_100() {
        let t = run(&ExpConfig::quick());
        for (label, row) in t.rows() {
            let sum: f64 = row.iter().sum();
            assert!((sum - 100.0).abs() < 1.0, "{label}: {sum}");
        }
    }

    #[test]
    fn per_app_dominant_scheme_matches_paper() {
        let t = run(&ExpConfig::quick());
        // FIR and SC stay on-touch (private pages never trigger changes).
        for app in ["FIR", "SC"] {
            assert!(
                t.cell(app, "on-touch").unwrap() > 50.0,
                "{app} must stay mostly on-touch"
            );
        }
        // BFS, GEMM, MM lean on duplication.
        for app in ["BFS", "GEMM", "MM"] {
            let d = t.cell(app, "duplication").unwrap();
            assert!(d > 20.0, "{app} must use substantial duplication, got {d}");
        }
        // BS leans on access-counter migration.
        let bs_ac = t.cell("BS", "access-counter").unwrap();
        assert!(
            bs_ac > 25.0,
            "BS must use substantial access-counter, got {bs_ac}"
        );
    }
}
