//! Experiment drivers: one module per figure of the paper's evaluation.
//!
//! Every driver returns a [`grit_metrics::Table`] (or a small set of them)
//! whose rows mirror the corresponding figure, normalized the same way the
//! paper normalizes. The `repro` binary prints them; `EXPERIMENTS.md`
//! records paper-vs-measured values; the Criterion benches in `grit-bench`
//! re-run the same drivers.

pub mod fig01_schemes;
pub mod fig03_breakdown;
pub mod fig04_sharing;
pub mod fig05_page_timeline;
pub mod fig06_attr_grids;
pub mod fig09_rw;
pub mod fig10_rw_timeline;
pub mod fig17_grit;
pub mod fig18_faults;
pub mod fig19_scheme_mix;
pub mod fig20_ablation;
pub mod fig21_threshold;
pub mod fig22_gpu_scaling;
pub mod fig25_large_pages;
pub mod fig26_griffin;
pub mod fig27_gps;
pub mod fig28_transfw;
pub mod fig29_first_touch;
pub mod fig30_prefetch;
pub mod fig31_dnn;

pub mod ext_adaptation;
pub mod ext_oracle;
pub mod ext_pa_cache;
pub mod ext_pagesize;
pub mod ext_resilience;
pub mod ext_sweeps;
pub mod ext_topology;
pub mod ext_workloads;

pub mod batch;
pub mod report_sink;
pub mod result_store;
pub mod workload_cache;

pub use batch::{
    effective_jobs, effective_sim_threads, fail_fast_triggered, override_spec, run_batch,
    run_batch_with, run_batch_with_stats, run_grid, set_fail_fast, set_jobs, set_override_spec,
    set_progress, set_resume_dir, set_store_max_bytes, BatchOptions, CellResultExt, CellSpec,
    PolicySpec,
};

use grit_baselines::{FirstTouchPolicy, GpsPolicy, GriffinDpcPolicy, IdealPolicy};
use grit_core::{GritConfig, GritPolicy};
use grit_sim::{Scheme, SimConfig};
use grit_uvm::{PlacementPolicy, StaticPolicy};
use grit_workloads::App;

use crate::runner::{ObserverConfig, RunOutput};

/// Which policy a run uses (a serializable recipe, since policies carry
/// per-run state).
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum PolicyKind {
    /// One uniform scheme for every page.
    Static(Scheme),
    /// The unrealizable Ideal of Fig. 1.
    Ideal,
    /// GRIT with the given configuration (latencies are re-derived from
    /// the run's `SimConfig`).
    Grit {
        /// Fault threshold (default 4).
        threshold: u8,
        /// PA-Cache enabled.
        pa_cache: bool,
        /// Neighboring-Aware Prediction enabled.
        nap: bool,
    },
    /// First-touch pinning (§VI-D).
    FirstTouch,
    /// Griffin's dynamic page classification (§VI-C1).
    GriffinDpc,
    /// GPS publish-subscribe (§VI-C2).
    Gps,
    /// GRIT with an explicit PA-Cache capacity (geometry ablation).
    GritWithCache {
        /// PA-Cache entries (4-way sets).
        entries: usize,
    },
}

impl PolicyKind {
    /// The full GRIT design.
    pub const GRIT: PolicyKind = PolicyKind::Grit {
        threshold: 4,
        pa_cache: true,
        nap: true,
    };

    /// Builds the policy object for a run.
    pub fn build(self, cfg: &SimConfig, footprint_pages: u64) -> Box<dyn PlacementPolicy> {
        match self {
            PolicyKind::Static(s) => Box::new(StaticPolicy::new(s)),
            PolicyKind::Ideal => Box::new(IdealPolicy::new()),
            PolicyKind::Grit {
                threshold,
                pa_cache,
                nap,
            } => {
                let gc = GritConfig {
                    fault_threshold: threshold,
                    pa_cache,
                    nap,
                    ..GritConfig::full(cfg)
                };
                Box::new(GritPolicy::new(gc, footprint_pages))
            }
            PolicyKind::FirstTouch => Box::new(FirstTouchPolicy::new()),
            PolicyKind::GriffinDpc => Box::new(GriffinDpcPolicy::new(cfg.num_gpus)),
            PolicyKind::Gps => Box::new(GpsPolicy::new()),
            PolicyKind::GritWithCache { entries } => {
                let gc = GritConfig {
                    pa_cache_entries: entries,
                    ..GritConfig::full(cfg)
                };
                Box::new(GritPolicy::new(gc, footprint_pages))
            }
        }
    }

    /// Report label.
    pub fn label(self) -> String {
        match self {
            PolicyKind::Static(s) => s.to_string(),
            PolicyKind::Ideal => "ideal".into(),
            PolicyKind::Grit {
                threshold: 4,
                pa_cache: true,
                nap: true,
            } => "grit".into(),
            PolicyKind::Grit {
                threshold,
                pa_cache,
                nap,
            } => {
                format!("grit(t={threshold},cache={pa_cache},nap={nap})")
            }
            PolicyKind::FirstTouch => "first-touch".into(),
            PolicyKind::GriffinDpc => "griffin-dpc".into(),
            PolicyKind::Gps => "gps".into(),
            PolicyKind::GritWithCache { entries } => format!("grit(pa-cache={entries})"),
        }
    }

    /// Resolves a report label back to the policy recipe, the inverse of
    /// [`PolicyKind::label`]. This is how serialized [`grit_sim::RunSpec`]
    /// cells (CLI submissions, `grit-serve/v1` requests) name policies.
    /// `None` for unknown labels.
    pub fn parse(label: &str) -> Option<PolicyKind> {
        let label = label.trim();
        if let Some(s) = Scheme::ALL.into_iter().find(|s| s.to_string() == label) {
            return Some(PolicyKind::Static(s));
        }
        match label {
            "ideal" => return Some(PolicyKind::Ideal),
            "grit" => return Some(PolicyKind::GRIT),
            "first-touch" => return Some(PolicyKind::FirstTouch),
            "griffin-dpc" => return Some(PolicyKind::GriffinDpc),
            "gps" => return Some(PolicyKind::Gps),
            _ => {}
        }
        let body = label.strip_prefix("grit(")?.strip_suffix(')')?;
        if let Some(entries) = body.strip_prefix("pa-cache=") {
            let entries = entries.parse().ok()?;
            return Some(PolicyKind::GritWithCache { entries });
        }
        let (mut threshold, mut pa_cache, mut nap) = (None, None, None);
        for part in body.split(',') {
            let (k, v) = part.split_once('=')?;
            match k {
                "t" => threshold = Some(v.parse().ok()?),
                "cache" => pa_cache = Some(v.parse().ok()?),
                "nap" => nap = Some(v.parse().ok()?),
                _ => return None,
            }
        }
        Some(PolicyKind::Grit {
            threshold: threshold?,
            pa_cache: pa_cache?,
            nap: nap?,
        })
    }
}

/// Shared experiment knobs: workload scale and trace intensity trade
/// fidelity against wall-clock time. The defaults reproduce every trend at
/// a fraction of the full-footprint runtime; `--full` in the `repro`
/// binary raises them.
#[derive(Clone, Copy, Debug)]
pub struct ExpConfig {
    /// Footprint scale relative to Table II.
    pub scale: f64,
    /// Trace-length multiplier.
    pub intensity: f64,
    /// Deterministic seed.
    pub seed: u64,
}

impl Default for ExpConfig {
    fn default() -> Self {
        ExpConfig {
            scale: 0.10,
            intensity: 2.0,
            seed: 0xBEEF,
        }
    }
}

impl ExpConfig {
    /// A fast configuration for CI/integration tests.
    pub fn quick() -> Self {
        ExpConfig {
            scale: 0.04,
            intensity: 1.5,
            ..Default::default()
        }
    }

    /// Full-footprint configuration (Table II sizes). Intensity stays at
    /// the calibrated default: trace length already scales with footprint.
    pub fn full() -> Self {
        ExpConfig {
            scale: 1.0,
            intensity: 2.0,
            ..Default::default()
        }
    }
}

/// Runs one `(app, policy)` cell with the baseline system configuration.
pub fn run_cell(app: App, policy: PolicyKind, exp: &ExpConfig) -> RunOutput {
    run_cell_with(app, policy, exp, SimConfig::default(), None)
}

/// Runs one cell with an explicit system configuration and optional
/// observer instrumentation. The workload comes from the process-wide
/// [`workload_cache`], so repeated cells on one trace build it once.
pub fn run_cell_with(
    app: App,
    policy: PolicyKind,
    exp: &ExpConfig,
    cfg: SimConfig,
    observer: Option<ObserverConfig>,
) -> RunOutput {
    CellSpec {
        app,
        policy: PolicySpec::Kind(policy),
        exp: *exp,
        cfg,
        observer,
        prefetcher: None,
        trace: None,
    }
    .run()
}

/// The eight Table II applications, the row set of most figures.
pub fn table2_apps() -> [App; 8] {
    App::TABLE2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_labels() {
        assert_eq!(PolicyKind::GRIT.label(), "grit");
        assert_eq!(PolicyKind::Static(Scheme::OnTouch).label(), "on-touch");
        assert_eq!(
            PolicyKind::Grit {
                threshold: 8,
                pa_cache: true,
                nap: true
            }
            .label(),
            "grit(t=8,cache=true,nap=true)"
        );
    }

    #[test]
    fn policy_parse_inverts_label() {
        let kinds = [
            PolicyKind::Static(Scheme::OnTouch),
            PolicyKind::Static(Scheme::AccessCounter),
            PolicyKind::Static(Scheme::Duplication),
            PolicyKind::Ideal,
            PolicyKind::GRIT,
            PolicyKind::Grit {
                threshold: 8,
                pa_cache: false,
                nap: true,
            },
            PolicyKind::FirstTouch,
            PolicyKind::GriffinDpc,
            PolicyKind::Gps,
            PolicyKind::GritWithCache { entries: 512 },
        ];
        for k in kinds {
            assert_eq!(PolicyKind::parse(&k.label()), Some(k), "{}", k.label());
        }
        assert_eq!(PolicyKind::parse("grit( t=4 )"), None);
        assert_eq!(PolicyKind::parse("belady"), None);
    }

    /// `RunSpec`'s documented experiment defaults are `ExpConfig`'s; the
    /// constants live in `grit-sim`, which cannot see `ExpConfig`, so the
    /// agreement is pinned here.
    #[test]
    fn run_spec_defaults_match_exp_config() {
        let exp = ExpConfig::default();
        assert_eq!(exp.scale, grit_sim::spec::DEFAULT_SCALE);
        assert_eq!(exp.intensity, grit_sim::spec::DEFAULT_INTENSITY);
        assert_eq!(exp.seed, grit_sim::spec::DEFAULT_SEED);
    }

    #[test]
    fn run_cell_smoke() {
        let out = run_cell(
            App::Gemm,
            PolicyKind::Static(Scheme::OnTouch),
            &ExpConfig::quick(),
        );
        assert!(out.metrics.total_cycles > 0);
        assert!(out.metrics.accesses > 0);
        assert!(out.metrics.faults.local_faults > 0);
    }
}
