//! Process-wide cache of generated workload traces.
//!
//! Trace generation is a large share of experiment wall-clock time, and the
//! figure grids re-request identical workloads constantly — every policy
//! column of a figure uses the same `(app, exp, cfg)` trace, and several
//! figures (17, 18, 19, ...) share whole grids. The cache builds each
//! distinct workload exactly once and hands out cheap clones: after the
//! `SliceStream` shared-trace split, a clone is an `Arc` bump per GPU plus
//! a private cursor, so concurrent runs never contend on trace data.
//!
//! Keys cover every builder input: `(app, num_gpus, scale, intensity,
//! seed, page_size)`. The float knobs are keyed by their exact bit
//! patterns — two configs map to one entry only if they build
//! byte-identical traces.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use grit_sim::SimConfig;
use grit_workloads::{App, MultiGpuWorkload, WorkloadBuilder};

use super::ExpConfig;

/// Exact-identity cache key for one generated workload.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct WorkloadKey {
    app: App,
    num_gpus: usize,
    scale_bits: u64,
    intensity_bits: u64,
    seed: u64,
    page_size: u64,
}

impl WorkloadKey {
    /// The key for a cell's workload under an experiment and system config.
    pub fn new(app: App, exp: &ExpConfig, cfg: &SimConfig) -> Self {
        WorkloadKey {
            app,
            num_gpus: cfg.num_gpus,
            scale_bits: exp.scale.to_bits(),
            intensity_bits: exp.intensity.to_bits(),
            seed: exp.seed,
            page_size: cfg.page_size,
        }
    }
}

/// One cache slot: the built workload plus how many times the builder
/// actually ran for this key (used by tests to prove single-build).
#[derive(Default)]
struct Slot {
    cell: OnceLock<Arc<MultiGpuWorkload>>,
    builds: Mutex<u64>,
}

/// Lifetime hit/miss totals of a cache, for batch profiling reports.
///
/// A "hit" is a request whose workload was already built when the request
/// arrived; requests that race the first build are counted as misses even
/// though only one of them runs the builder.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CacheCounters {
    /// Requests served from an already-built entry.
    pub hits: u64,
    /// Requests that found the entry absent (or still building).
    pub misses: u64,
}

/// The cache proper. A `Mutex`-guarded map hands out per-key `Slot`s;
/// the slot's `OnceLock` serializes the (expensive) build outside the map
/// lock, so two threads wanting *different* workloads build concurrently
/// while two threads wanting the *same* workload build it once.
#[derive(Default)]
pub struct WorkloadCache {
    slots: Mutex<HashMap<WorkloadKey, Arc<Slot>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl WorkloadCache {
    /// An empty cache.
    pub fn new() -> Self {
        WorkloadCache::default()
    }

    fn slot(&self, key: WorkloadKey) -> Arc<Slot> {
        let mut map = self.slots.lock().expect("workload cache poisoned");
        Arc::clone(map.entry(key).or_default())
    }

    /// The workload for `key`, building it on first request. The returned
    /// value shares trace storage with the cached copy but has private
    /// stream cursors, so callers can consume it freely.
    pub fn get_or_build(&self, key: WorkloadKey) -> MultiGpuWorkload {
        self.get_or_build_tracked(key).0
    }

    /// Like [`WorkloadCache::get_or_build`], also reporting whether the
    /// request was a cache hit (the entry was already built on arrival).
    pub fn get_or_build_tracked(&self, key: WorkloadKey) -> (MultiGpuWorkload, bool) {
        let slot = self.slot(key);
        let hit = slot.cell.get().is_some();
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        let shared = slot.cell.get_or_init(|| {
            *slot.builds.lock().expect("build counter poisoned") += 1;
            let w = WorkloadBuilder::new(key.app)
                .num_gpus(key.num_gpus)
                .scale(f64::from_bits(key.scale_bits))
                .intensity(f64::from_bits(key.intensity_bits))
                .seed(key.seed)
                .page_size(key.page_size)
                .build();
            Arc::new(w)
        });
        (MultiGpuWorkload::clone(shared), hit)
    }

    /// Lifetime hit/miss totals across every key.
    pub fn stats(&self) -> CacheCounters {
        CacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// How many times the builder ran for `key` (0 or 1 after any number
    /// of [`WorkloadCache::get_or_build`] calls).
    pub fn build_count(&self, key: WorkloadKey) -> u64 {
        let slot = self.slot(key);
        let n = *slot.builds.lock().expect("build counter poisoned");
        n
    }

    /// Distinct workloads currently cached.
    pub fn len(&self) -> usize {
        self.slots.lock().expect("workload cache poisoned").len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached trace (the backing storage is freed once the
    /// last outstanding run finishes with its clone).
    pub fn clear(&self) {
        self.slots.lock().expect("workload cache poisoned").clear();
    }
}

/// The process-wide cache used by `run_cell`/`run_batch`.
pub fn global() -> &'static WorkloadCache {
    static CACHE: OnceLock<WorkloadCache> = OnceLock::new();
    CACHE.get_or_init(WorkloadCache::new)
}

/// Fetches (building at most once) the workload for a cell from the
/// process-wide cache.
pub fn shared_workload(app: App, exp: &ExpConfig, cfg: &SimConfig) -> MultiGpuWorkload {
    global().get_or_build(WorkloadKey::new(app, exp, cfg))
}

/// [`shared_workload`], also reporting whether the request hit the cache.
pub fn shared_workload_tracked(
    app: App,
    exp: &ExpConfig,
    cfg: &SimConfig,
) -> (MultiGpuWorkload, bool) {
    global().get_or_build_tracked(WorkloadKey::new(app, exp, cfg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use grit_sim::AccessStream;

    fn exp(seed: u64) -> ExpConfig {
        ExpConfig {
            scale: 0.02,
            intensity: 0.5,
            seed,
        }
    }

    #[test]
    fn builds_once_and_clones_share_traces() {
        let cache = WorkloadCache::new();
        let key = WorkloadKey::new(App::Bfs, &exp(11), &SimConfig::default());
        let a = cache.get_or_build(key);
        let b = cache.get_or_build(key);
        assert_eq!(cache.build_count(key), 1);
        assert_eq!(cache.len(), 1);
        for (x, y) in a.streams.iter().zip(b.streams.iter()) {
            assert!(std::sync::Arc::ptr_eq(&x.shared(), &y.shared()));
        }
    }

    #[test]
    fn clones_have_private_cursors() {
        let cache = WorkloadCache::new();
        let key = WorkloadKey::new(App::Fir, &exp(12), &SimConfig::default());
        let mut a = cache.get_or_build(key);
        while a.streams[0].next_access().is_some() {}
        let b = cache.get_or_build(key);
        assert!(
            b.streams[0].remaining() > 0,
            "cache copy must stay pristine"
        );
    }

    #[test]
    fn distinct_knobs_get_distinct_entries() {
        let cache = WorkloadCache::new();
        let cfg = SimConfig::default();
        let base = WorkloadKey::new(App::Bfs, &exp(13), &cfg);
        cache.get_or_build(base);
        cache.get_or_build(WorkloadKey::new(App::Bfs, &exp(14), &cfg));
        cache.get_or_build(WorkloadKey::new(
            App::Bfs,
            &ExpConfig {
                scale: 0.03,
                ..exp(13)
            },
            &cfg,
        ));
        // 64 KB still fits the tiny scaled footprint; 2 MB would exceed
        // it and be rejected by the builder's validation.
        let big = SimConfig {
            page_size: 64 * 1024,
            ..SimConfig::default()
        };
        cache.get_or_build(WorkloadKey::new(App::Bfs, &exp(13), &big));
        assert_eq!(cache.len(), 4);
        assert_eq!(cache.build_count(base), 1);
    }

    #[test]
    fn concurrent_requests_build_once() {
        let cache = WorkloadCache::new();
        let key = WorkloadKey::new(App::St, &exp(15), &SimConfig::default());
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    let w = cache.get_or_build(key);
                    assert!(w.total_accesses() > 0);
                });
            }
        });
        assert_eq!(cache.build_count(key), 1);
    }

    #[test]
    fn tracked_requests_count_hits_and_misses() {
        let cache = WorkloadCache::new();
        let key = WorkloadKey::new(App::Bfs, &exp(17), &SimConfig::default());
        let (_, hit) = cache.get_or_build_tracked(key);
        assert!(!hit, "first request must miss");
        let (_, hit) = cache.get_or_build_tracked(key);
        assert!(hit, "second request must hit");
        let stats = cache.stats();
        assert_eq!(stats, CacheCounters { hits: 1, misses: 1 });
    }

    #[test]
    fn clear_resets() {
        let cache = WorkloadCache::new();
        let key = WorkloadKey::new(App::Bs, &exp(16), &SimConfig::default());
        cache.get_or_build(key);
        assert!(!cache.is_empty());
        cache.clear();
        assert!(cache.is_empty());
    }
}
