//! Figs. 22–24: GRIT on 2-, 8- and 16-GPU systems, normalized to each
//! system size's own on-touch baseline (input size held constant, §VI-B2),
//! with the accompanying page-fault reductions.

use grit_metrics::Table;
use grit_sim::{Scheme, SimConfig};

use super::{run_batch, table2_apps, CellResultExt, CellSpec, ExpConfig, PolicyKind};

/// Policies compared per GPU count.
fn policies() -> [PolicyKind; 4] {
    [
        PolicyKind::Static(Scheme::OnTouch),
        PolicyKind::Static(Scheme::AccessCounter),
        PolicyKind::Static(Scheme::Duplication),
        PolicyKind::GRIT,
    ]
}

/// Runs one GPU-count variant; returns `(speedups, fault ratios)` tables.
pub fn run_gpus(num_gpus: usize, exp: &ExpConfig) -> (Table, Table) {
    let cols: Vec<String> = policies().iter().map(|p| p.label()).collect();
    let mut perf = Table::new(
        format!("Figs 22-24: {num_gpus}-GPU speedup over {num_gpus}-GPU on-touch"),
        cols.clone(),
    );
    let mut faults = Table::new(
        format!("Figs 22-24: {num_gpus}-GPU page faults normalized to on-touch"),
        cols,
    );
    let cells: Vec<CellSpec> = table2_apps()
        .into_iter()
        .flat_map(|app| {
            policies()
                .into_iter()
                .map(move |p| CellSpec::new(app, p, exp).with_cfg(SimConfig::with_gpus(num_gpus)))
        })
        .collect();
    let outputs = run_batch(&cells);
    for (app, chunk) in table2_apps().into_iter().zip(outputs.chunks(policies().len())) {
        let base_c = chunk[0].cycles();
        let base_f = chunk[0].metric(|o| o.metrics.faults.total_faults().max(1) as f64);
        perf.push_row(
            app.abbr(),
            chunk.iter().map(|r| base_c / r.cycles()).collect(),
        );
        faults.push_row(
            app.abbr(),
            chunk
                .iter()
                .map(|r| r.metric(|o| o.metrics.faults.total_faults().max(1) as f64) / base_f)
                .collect(),
        );
    }
    perf.push_geomean_row();
    faults.push_geomean_row();
    (perf, faults)
}

/// Runs all three GPU counts of the study.
pub fn run(exp: &ExpConfig) -> Vec<(usize, Table, Table)> {
    [2usize, 8, 16]
        .into_iter()
        .map(|n| {
            let (p, f) = run_gpus(n, exp);
            (n, p, f)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grit_keeps_winning_at_2_gpus() {
        let (perf, faults) = run_gpus(2, &ExpConfig::quick());
        let g = perf.cell("GEOMEAN", "grit").unwrap();
        assert!(g > 1.0, "GRIT must beat 2-GPU on-touch: {g}");
        let gf = faults.cell("GEOMEAN", "grit").unwrap();
        assert!(gf < 1.0, "GRIT must reduce 2-GPU faults: {gf}");
    }

    #[test]
    fn grit_keeps_winning_at_8_gpus() {
        let (perf, _) = run_gpus(8, &ExpConfig::quick());
        let g = perf.cell("GEOMEAN", "grit").unwrap();
        assert!(g > 1.0, "GRIT must beat 8-GPU on-touch: {g}");
    }
}
