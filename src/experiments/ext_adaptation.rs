//! Extension experiment (beyond the paper): GRIT's *adaptation timeline* —
//! the per-interval placement-scheme mix of L2-TLB-missing accesses.
//!
//! This makes the mechanism of §V visible as a time series: every run
//! starts fully on-touch, shared pages cross the fault threshold and flip
//! to duplication or access-counter placement, and NAP's group propagation
//! accelerates the hand-over. The steady-state right edge of the timeline
//! is the per-app mix of Fig. 19.

use grit_metrics::Table;
use grit_workloads::App;

use super::{run_batch, CellResultExt, CellSpec, ExpConfig, PolicyKind};
use crate::runner::{ObserverConfig, RunOutput};

/// Number of timeline rows reported.
pub const INTERVALS: usize = 16;

/// The rerun cell with the timeline observer, sized from a scout run.
fn observed_cell(app: App, scout: &RunOutput, exp: &ExpConfig) -> CellSpec {
    let interval = (scout.metrics.total_cycles / INTERVALS as u64).max(1);
    let obs = ObserverConfig {
        track_page: None,
        interval_cycles: interval,
        grid_page_bins: 0,
        grid_intervals: 0,
        scheme_timeline: true,
    };
    CellSpec::new(app, PolicyKind::GRIT, exp).observed(obs)
}

/// Assembles the timeline table from an observed run.
fn table_for(app: App, out: &RunOutput) -> Table {
    let series = out
        .observer
        .as_ref()
        .expect("observer configured")
        .scheme_timeline
        .as_ref()
        .expect("timeline requested");

    let mut table = Table::new(
        format!(
            "Extension: GRIT adaptation timeline for {} (% of L2-TLB misses)",
            app.abbr()
        ),
        vec![
            "on-touch".into(),
            "access-counter".into(),
            "duplication".into(),
        ],
    );
    for (i, fr) in series.fractions().into_iter().enumerate() {
        table.push_row(
            format!("interval{i}"),
            fr.iter().map(|f| 100.0 * f).collect(),
        );
    }
    table
}

/// Runs the timeline for one application under GRIT.
pub fn run_app(app: App, exp: &ExpConfig) -> Table {
    // Scout for the run length, then rerun with the timeline observer.
    let scout = CellSpec::new(app, PolicyKind::GRIT, exp).run();
    let out = observed_cell(app, &scout, exp).run();
    table_for(app, &out)
}

fn failed_table(app: App) -> Table {
    let mut t = Table::new(
        format!(
            "Extension: GRIT adaptation timeline for {} (cell failed)",
            app.abbr()
        ),
        vec!["error".into()],
    );
    t.push_row("cell", vec![f64::NAN]);
    t
}

/// Runs the timeline for the two most adaptive applications. An app whose
/// scout or observed run failed yields a one-cell error table.
pub fn run(exp: &ExpConfig) -> Vec<Table> {
    let apps = [App::Gemm, App::St];
    let scouts = run_batch(&apps.map(|a| CellSpec::new(a, PolicyKind::GRIT, exp)));
    let picked: Vec<Option<CellSpec>> = apps
        .iter()
        .zip(&scouts)
        .map(|(&a, s)| s.output().map(|scout| observed_cell(a, scout, exp)))
        .collect();
    let cells: Vec<CellSpec> = picked.iter().flatten().cloned().collect();
    let outs = run_batch(&cells);
    let mut out_iter = outs.iter();
    apps.iter()
        .zip(&picked)
        .map(|(&a, pick)| {
            pick.as_ref()
                .and_then(|_| out_iter.next())
                .and_then(CellResultExt::output)
                .map_or_else(|| failed_table(a), |o| table_for(a, o))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn first_and_last_nonempty(t: &Table) -> (Vec<f64>, Vec<f64>) {
        let rows: Vec<&Vec<f64>> = t
            .rows()
            .iter()
            .map(|(_, r)| r)
            .filter(|r| r.iter().sum::<f64>() > 0.0)
            .collect();
        (
            rows.first().unwrap().to_vec(),
            rows.last().unwrap().to_vec(),
        )
    }

    #[test]
    fn gemm_starts_on_touch_and_ends_duplication_heavy() {
        let t = run_app(App::Gemm, &ExpConfig::quick());
        let (first, last) = first_and_last_nonempty(&t);
        assert!(
            first[0] > 50.0,
            "the run must start under the on-touch baseline: {first:?}"
        );
        assert!(
            last[2] > first[2],
            "duplication share must grow over the run: {first:?} -> {last:?}"
        );
    }

    #[test]
    fn timeline_rows_are_percentages() {
        let t = run_app(App::St, &ExpConfig::quick());
        for (_, row) in t.rows() {
            let sum: f64 = row.iter().sum();
            assert!(sum <= 100.0 + 1e-6);
        }
    }
}
