//! Fig. 29: comparison to first-touch migration (pin where first accessed,
//! peer-access afterwards). The paper reports GRIT 54 % ahead on average —
//! marginal on private-dominated FIR/SC, large on shared-heavy GEMM/MM.

use grit_metrics::Table;

use super::{run_grid, table2_apps, CellResultExt, ExpConfig, PolicyKind};

/// Runs the figure.
pub fn run(exp: &ExpConfig) -> Table {
    let mut table = Table::new(
        "Fig 29: GRIT vs first-touch (speedup over first-touch)",
        vec!["first-touch".into(), "grit".into()],
    );
    let rows = run_grid(
        &table2_apps(),
        &[PolicyKind::FirstTouch, PolicyKind::GRIT],
        exp,
    );
    for (app, runs) in table2_apps().into_iter().zip(&rows) {
        table.push_row(
            app.abbr(),
            vec![runs[0].metric(|_| 1.0), runs[0].cycles() / runs[1].cycles()],
        );
    }
    table.push_geomean_row();
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grit_beats_first_touch_where_sharing_matters() {
        // Adaptation amortizes with run length; use the calibrated default.
        let t = run(&ExpConfig::default());
        assert!(t.cell("GEOMEAN", "grit").unwrap() > 1.0);
        // Shared-heavy apps gain much more than private-dominated ones
        // (paper: marginal on FIR/SC, significant on MM/GEMM).
        let gemm = t.cell("GEMM", "grit").unwrap();
        let fir = t.cell("FIR", "grit").unwrap();
        assert!(
            gemm > fir,
            "GEMM gain ({gemm}) must exceed FIR gain ({fir}) over first-touch"
        );
    }
}
