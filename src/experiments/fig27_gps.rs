//! Fig. 27: comparison to GPS (publish-subscribe peer access), normalized
//! to GPS, plus the oversubscription rates behind the result (§VI-C2: GPS
//! shows a 34 % higher page-oversubscription rate; GRIT wins by 15 %).

use grit_metrics::Table;

use super::{run_grid, table2_apps, CellResultExt, ExpConfig, PolicyKind};

/// Runs the figure: speedups over GPS and both policies' oversubscription
/// rates.
pub fn run(exp: &ExpConfig) -> Table {
    let mut table = Table::new(
        "Fig 27: GPS comparison (speedup over GPS; oversubscription rates)",
        vec![
            "gps".into(),
            "grit".into(),
            "gps-oversub".into(),
            "grit-oversub".into(),
        ],
    );
    let rows = run_grid(&table2_apps(), &[PolicyKind::Gps, PolicyKind::GRIT], exp);
    for (app, runs) in table2_apps().into_iter().zip(&rows) {
        let (gps, grit) = (&runs[0], &runs[1]);
        table.push_row(
            app.abbr(),
            vec![
                gps.metric(|_| 1.0),
                gps.cycles() / grit.cycles(),
                gps.metric(|o| o.metrics.oversubscription_rate),
                grit.metric(|o| o.metrics.oversubscription_rate),
            ],
        );
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use grit_metrics::geomean;

    #[test]
    fn grit_beats_gps_via_lower_oversubscription() {
        // The comparison converges with run length; use the calibrated
        // default configuration rather than the CI-sized one.
        let t = run(&ExpConfig::default());
        let speedups: Vec<f64> = t.rows().iter().map(|(_, r)| r[1]).collect();
        assert!(geomean(&speedups) > 1.0, "GRIT must beat GPS on average");
        // GPS replicates aggressively: its mean oversubscription rate must
        // exceed GRIT's (the paper's 34 % gap).
        let gps_os: f64 = t.rows().iter().map(|(_, r)| r[2]).sum::<f64>();
        let grit_os: f64 = t.rows().iter().map(|(_, r)| r[3]).sum::<f64>();
        assert!(
            gps_os > grit_os,
            "GPS oversubscription {gps_os} vs GRIT {grit_os}"
        );
    }
}
