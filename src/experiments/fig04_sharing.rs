//! Fig. 4: percentage of private vs shared pages, and percentage of
//! accesses going to private vs shared pages, per application.

use grit_metrics::Table;
use grit_sim::Scheme;

use super::{run_batch, table2_apps, CellResultExt, CellSpec, ExpConfig, PolicyKind};

/// Runs the figure (page attributes are policy-independent; the on-touch
/// baseline run supplies them).
pub fn run(exp: &ExpConfig) -> Table {
    let mut table = Table::new(
        "Fig 4: private/shared pages and accesses (%)",
        vec![
            "private-pages".into(),
            "shared-pages".into(),
            "acc-private".into(),
            "acc-shared".into(),
        ],
    );
    let cells: Vec<CellSpec> = table2_apps()
        .into_iter()
        .map(|app| CellSpec::new(app, PolicyKind::Static(Scheme::OnTouch), exp))
        .collect();
    let outputs = run_batch(&cells);
    for (app, out) in table2_apps().into_iter().zip(&outputs) {
        let row = match out.output() {
            Some(o) => {
                let s = o.page_attrs;
                vec![
                    100.0 * (1.0 - s.shared_page_frac()),
                    100.0 * s.shared_page_frac(),
                    100.0 * (1.0 - s.shared_access_frac()),
                    100.0 * s.shared_access_frac(),
                ]
            }
            None => vec![f64::NAN; 4],
        };
        table.push_row(app.abbr(), row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentages_are_complementary() {
        let t = run(&ExpConfig::quick());
        for (_, row) in t.rows() {
            assert!((row[0] + row[1] - 100.0).abs() < 1e-6);
            assert!((row[2] + row[3] - 100.0).abs() < 1e-6);
        }
    }

    #[test]
    fn characterization_matches_paper() {
        let t = run(&ExpConfig::quick());
        // FIR and SC: almost all pages private (paper: "almost all").
        assert!(t.cell("FIR", "private-pages").unwrap() > 80.0);
        assert!(t.cell("SC", "private-pages").unwrap() > 80.0);
        // BFS and ST: almost all pages shared.
        assert!(t.cell("BFS", "shared-pages").unwrap() > 80.0);
        assert!(t.cell("ST", "shared-pages").unwrap() > 80.0);
        // C2D, GEMM and MM: a mix of both.
        for app in ["C2D", "GEMM", "MM"] {
            let shared = t.cell(app, "shared-pages").unwrap();
            assert!((15.0..=92.0).contains(&shared), "{app}: {shared}");
        }
    }
}
