//! The full-system simulation: per-GPU frontends (trace stream, MLP window,
//! TLB hierarchy, page-walker pool, L2 data cache) around the UVM driver.
//!
//! The loop is a discrete-event replay: the GPU with the smallest
//! next-ready cycle issues its next access, so cross-GPU interactions —
//! migrations, invalidation broadcasts, write collapses, counter trips —
//! are globally ordered in simulated time.
//!
//! With [`SimulationBuilder::sim_threads`] above one, the loop is *time
//! sharded*: workers speculatively advance disjoint GPUs through their
//! purely GPU-local accesses up to a conservative horizon, then a round
//! barrier commits the speculation in the exact serial event order and
//! executes the first blocked driver interaction through the unchanged
//! serial path. Output is byte-identical to the serial engine at any
//! thread count; see `DESIGN.md` §14 for the protocol and its safety
//! argument.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, Ordering};

use grit_mem::{CacheKey, Mapping, SetAssocCache, TlbHierarchy, TranslationLevel, WalkerPool};
use grit_metrics::{
    AttrGrid, IntervalSeries, LatencyClass, LatencyHistogram, PageAttrSummary, PageAttrTracker,
    RunMetrics, SchemeMix,
};
use grit_prof::{span, Phase, SpecStats};
use grit_sim::{
    Access, AccessKind, AccessStream, CancelState, CancelToken, CellError, ConfigError, Cycle,
    FxHashMap, GpuId, GritError, InjectConfig, LatencyConfig, MemLoc, MlpWindow, PageId, SimConfig,
    SliceStream, TopologyConfig,
};
use grit_trace::{CellTiming, TraceEvent, Tracer};
use grit_uvm::{
    DriverOutcome, DriverView, FaultInfo, FaultKind, PlacementPolicy, Prefetcher, UvmDriver,
    WriteMode,
};
use grit_workloads::MultiGpuWorkload;

/// L2 data-cache key: page + generation + line. Bumping a page's
/// generation on invalidation makes all of its cached lines unreachable in
/// O(1) instead of scanning the cache.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct LineKey {
    vpn: PageId,
    generation: u32,
    line: u16,
}

impl CacheKey for LineKey {
    fn index(&self) -> u64 {
        (self.vpn.vpn() << 6) | self.line as u64 & 0x3f
    }
}

/// One GPU's frontend state.
struct GpuFrontend {
    stream: SliceStream,
    /// Kernel boundaries (positions in the stream); the node synchronizes
    /// at each one.
    barriers: Vec<usize>,
    next_barrier: usize,
    consumed: usize,
    waiting: bool,
    ready: Cycle,
    window: MlpWindow,
    tlb: TlbHierarchy,
    /// Page-size-partitioned VIPT TLBs: 2 MB translations live in their
    /// own hierarchy, keyed by frame base. Allocated only when the
    /// configuration manages large pages, so uniform-4 KB runs carry no
    /// extra state.
    tlb_2m: Option<TlbHierarchy>,
    walker: WalkerPool,
    l1: SetAssocCache<LineKey, ()>,
    l2: SetAssocCache<LineKey, ()>,
    line_generation: FxHashMap<PageId, u32>,
    finished: bool,
    last_done: Cycle,
}

impl GpuFrontend {
    fn new(cfg: &SimConfig, stream: SliceStream, barriers: Vec<usize>) -> Self {
        GpuFrontend {
            stream,
            barriers,
            next_barrier: 0,
            consumed: 0,
            waiting: false,
            ready: 0,
            window: MlpWindow::new(cfg.mlp_window),
            tlb: TlbHierarchy::new(cfg.l1_tlb, cfg.l2_tlb),
            tlb_2m: (cfg.page_size_mode.large_pages_enabled() && cfg.pages_per_large_frame() > 1)
                .then(|| TlbHierarchy::new(cfg.l1_tlb_2m, cfg.l2_tlb_2m)),
            walker: WalkerPool::new(cfg.walk),
            l1: SetAssocCache::with_entries(cfg.l1_cache.entries, cfg.l1_cache.ways),
            l2: SetAssocCache::with_entries(cfg.l2_cache.entries, cfg.l2_cache.ways),
            line_generation: FxHashMap::default(),
            finished: false,
            last_done: 0,
        }
    }

    /// Whether the frontend sits exactly on its next kernel boundary.
    fn at_barrier(&self) -> bool {
        self.barriers.get(self.next_barrier) == Some(&self.consumed)
    }

    fn line_key(&self, vpn: PageId, line: u16) -> LineKey {
        LineKey {
            vpn,
            generation: self.line_generation.get(&vpn).copied().unwrap_or(0),
            line,
        }
    }

    fn invalidate_page(&mut self, vpn: PageId) {
        self.tlb.invalidate(vpn);
        *self.line_generation.entry(vpn).or_insert(0) += 1;
    }

    /// Drops the 2 MB translation of a splintered frame. Base-page TLB
    /// entries and cached lines are untouched: splintering demotes the
    /// translation, the data does not move.
    fn invalidate_large(&mut self, frame_base: PageId) {
        if let Some(t2) = self.tlb_2m.as_mut() {
            t2.invalidate(frame_base);
        }
    }
}

/// Inverse record of one speculatively executed access: everything needed
/// to restore the frontend to its state just before the access ran.
///
/// Rollback via these records costs time proportional to the *work undone*
/// (the handful of accesses past the cut), where a snapshot/restore scheme
/// costs time proportional to the *state size* (hundreds of kilobytes of
/// cache arrays per GPU per round). The serial engine never records
/// anything. `barriers`, `next_barrier`, `waiting`, and `line_generation`
/// need no records — only serial paths (barrier release, invalidation
/// broadcasts) touch them, and those never run speculatively.
struct EntryUndo {
    prev_last_done: Cycle,
    issue: grit_sim::MlpIssueUndo,
    /// The completion time pushed by `window.complete`.
    pushed: Cycle,
    tlb: grit_mem::TlbTranslateUndo,
    tlb_fill: Option<grit_mem::TlbFillUndo>,
    /// The translate/fill above went through the 2 MB hierarchy (the
    /// access hit a coalesced frame owned by this GPU), so the undos
    /// must be routed back to it.
    tlb_large: bool,
    walk: Option<grit_mem::WalkUndo>,
    l1_get: grit_mem::CacheUndo<LineKey, ()>,
    l2_get: Option<grit_mem::CacheUndo<LineKey, ()>>,
    l2_ins: Option<grit_mem::CacheUndo<LineKey, ()>>,
    l1_ins: Option<grit_mem::CacheUndo<LineKey, ()>>,
}

/// Inverse record of a speculative stream-finish (window drain).
struct FinishUndo {
    prev_last_done: Cycle,
    prev_last_drain: Cycle,
    /// Completion times the drain popped, appended to the slot arena.
    drained: u32,
}

/// One speculatively executed access, logged so its *global* side effects
/// (shared counters, attribute tracker, observers, policy feed, memory
/// occupancy) can be committed at the round barrier in the exact order the
/// serial engine interleaves them.
struct PureEntry {
    /// Heap pop key cycle at which the serial engine replays this access.
    ready: Cycle,
    /// Issue cycle, after think time and MLP-window admission.
    t0: Cycle,
    vpn: PageId,
    kind: AccessKind,
    /// Missed the L2 TLB and walked the page table.
    walked: bool,
    /// Walk latency, charged to the Local latency class at commit.
    walk_cycles: Cycle,
    /// Missed both data caches and fetched the line from local DRAM.
    local_miss: bool,
}

/// Why a speculative advance stopped.
struct PureStop {
    /// Pop-key cycle of a blocked serial event (fault, collapse, remote
    /// fetch, kernel barrier, due epoch/injection); `None` when the GPU ran
    /// into the horizon or finished its stream.
    serial_at: Option<Cycle>,
    /// Pop-key cycle at which the stream ran dry (the finish executed
    /// speculatively and may need rolling back).
    finished_at: Option<Cycle>,
}

/// One GPU's result of a speculative round. The slot's buffers are
/// persistent across rounds (cleared, never reallocated).
#[derive(Default)]
struct RoundSlot {
    log: Vec<PureEntry>,
    /// One inverse record per log entry, same order.
    undo: Vec<EntryUndo>,
    /// Retired completion times (MLP window + walker queue), appended in
    /// execution order and consumed as a stack during rollback.
    arena: Vec<Cycle>,
    finish_undo: Option<FinishUndo>,
    serial_at: Option<Cycle>,
    finished_at: Option<Cycle>,
}

/// Speculatively advances one frontend to `bound`, filling `slot`;
/// finished or barrier-parked GPUs leave the slot idle.
fn advance_frontend(
    g: usize,
    f: &mut GpuFrontend,
    view: &DriverView<'_>,
    lat: &LatencyConfig,
    bound: (Cycle, usize),
    slot: &mut RoundSlot,
) {
    slot.log.clear();
    slot.undo.clear();
    slot.arena.clear();
    slot.finish_undo = None;
    slot.serial_at = None;
    slot.finished_at = None;
    if f.finished || f.waiting {
        return;
    }
    let stop = advance_pure(g, f, view, lat, bound, slot);
    slot.serial_at = stop.serial_at;
    slot.finished_at = stop.finished_at;
}

/// Speculatively advances one GPU through purely GPU-local accesses.
///
/// Every event whose serial pop key `(ready, g)` is below `bound` and whose
/// handling touches nothing but this frontend (TLB, walker, caches, MLP
/// window) executes exactly as [`Simulation::process`] would, with its
/// global side effects logged for ordered commit. The advance stops —
/// *before* mutating anything — at the first event that needs the driver:
/// an unmapped page (fault), a write to a replica (collapse/broadcast), a
/// data miss on a remote mapping, a kernel barrier, or due driver-side work
/// (policy epoch or injected fault transition).
///
/// Classification happens against `view`, the driver state frozen at the
/// round start; the commit bound guarantees no serial event ordered before
/// a speculated access could have changed that state.
fn advance_pure(
    g: usize,
    f: &mut GpuFrontend,
    view: &DriverView<'_>,
    lat: &LatencyConfig,
    bound: (Cycle, usize),
    slot: &mut RoundSlot,
) -> PureStop {
    let gpu = GpuId::new(g as u8);
    loop {
        let r = f.ready;
        if (r, g) >= bound {
            return PureStop {
                serial_at: None,
                finished_at: None,
            };
        }
        if view.work_due(r) {
            // The serial loop would run the epoch/injection inside
            // `maybe_run_epoch` on this pop.
            return PureStop {
                serial_at: Some(r),
                finished_at: None,
            };
        }
        if f.at_barrier() {
            return PureStop {
                serial_at: Some(r),
                finished_at: None,
            };
        }
        let Some(acc) = f.stream.peek() else {
            // Finishing touches only this frontend; it is pure (but
            // recorded, in case the finish lands past the commit cut).
            let prev_last_done = f.last_done;
            let prev_last_drain = f.window.last_drain_mark();
            let start = slot.arena.len();
            let drained = f.window.drain_time_recorded(&mut slot.arena);
            f.last_done = f.last_done.max(drained);
            f.finished = true;
            slot.finish_undo = Some(FinishUndo {
                prev_last_done,
                prev_last_drain,
                drained: (slot.arena.len() - start) as u32,
            });
            return PureStop {
                serial_at: None,
                finished_at: Some(r),
            };
        };
        // Classify before mutating anything, so a serial stop leaves the
        // frontend exactly at its pre-event state.
        let vpn = acc.vpn;
        let Some(mapping) = view.translate(gpu, vpn) else {
            return PureStop {
                serial_at: Some(r),
                finished_at: None,
            };
        };
        if acc.is_write() && mapping == Mapping::Replica {
            return PureStop {
                serial_at: Some(r),
                finished_at: None,
            };
        }
        let key = f.line_key(vpn, acc.line);
        let cached = f.l1.peek(&key).is_some() || f.l2.peek(&key).is_some();
        if !cached && matches!(mapping, Mapping::Remote(_) | Mapping::RemoteHost) {
            return PureStop {
                serial_at: Some(r),
                finished_at: None,
            };
        }
        // Pure: execute against GPU-local state, mirroring the serial
        // `process` path cycle for cycle, recording inverse operations.
        let prev_last_done = f.last_done;
        f.stream.next_access();
        f.consumed += 1;
        let issue_base = r + acc.think as Cycle;
        let (t0, issue_undo) = f.window.issue_at_recorded(issue_base, &mut slot.arena);
        f.ready = t0;
        // An access to a coalesced frame owned by this GPU translates
        // through the 2 MB hierarchy under the frame-base key; everything
        // else through the base-page TLBs. The frozen `DriverView` keeps
        // the routing stable for the whole round.
        let large_key = f.tlb_2m.as_ref().and_then(|_| view.large_translation(gpu, vpn));
        let ((level, tlb_lat), tlb_undo) = match (large_key, f.tlb_2m.as_mut()) {
            (Some(base), Some(t2)) => t2.translate_recorded(base),
            _ => f.tlb.translate_recorded(vpn),
        };
        let mut t = t0 + tlb_lat;
        let mut walked = false;
        let mut walk_cycles = 0;
        let mut tlb_fill = None;
        let mut walk_undo = None;
        if level == TranslationLevel::Walk {
            let (walk, wu) = f.walker.walk_recorded(t, vpn, &mut slot.arena);
            walked = true;
            walk_cycles = walk.done_at - t;
            t = walk.done_at;
            walk_undo = Some(wu);
            tlb_fill = Some(match (large_key, f.tlb_2m.as_mut()) {
                (Some(base), Some(t2)) => t2.fill_recorded(base),
                _ => f.tlb.fill_recorded(vpn),
            });
        }
        let mut local_miss = false;
        let (l1_hit, l1_get) = f.l1.get_recorded(&key);
        let (mut l2_get, mut l2_ins, mut l1_ins) = (None, None, None);
        if l1_hit {
            t += lat.l1_data_hit;
        } else {
            let (l2_hit, lg) = f.l2.get_recorded(&key);
            l2_get = Some(lg);
            if l2_hit {
                t += lat.l2_data_hit;
                l1_ins = Some(f.l1.insert_recorded(key, ()));
            } else {
                // Same timing as `UvmDriver::local_line_access`; the LRU
                // touch and dirty mark are deferred to the ordered commit.
                t += lat.local_dram;
                local_miss = true;
                l2_ins = Some(f.l2.insert_recorded(key, ()));
                l1_ins = Some(f.l1.insert_recorded(key, ()));
            }
        }
        f.window.complete(t);
        f.last_done = f.last_done.max(t);
        slot.log.push(PureEntry {
            ready: r,
            t0,
            vpn,
            kind: acc.kind,
            walked,
            walk_cycles,
            local_miss,
        });
        slot.undo.push(EntryUndo {
            prev_last_done,
            issue: issue_undo,
            pushed: t,
            tlb: tlb_undo,
            tlb_fill,
            tlb_large: large_key.is_some(),
            walk: walk_undo,
            l1_get,
            l2_get,
            l2_ins,
            l1_ins,
        });
    }
}

/// Rolls one frontend back to the commit cut by reversing its speculative
/// log from the end: every entry (and any speculative finish) whose serial
/// pop key is at or past `cut` is undone, leaving the frontend exactly as
/// if it had advanced only through the surviving prefix.
fn rollback_to_cut(g: usize, f: &mut GpuFrontend, slot: &mut RoundSlot, cut: (Cycle, usize)) {
    if slot.finished_at.is_some_and(|c| (c, g) >= cut) {
        slot.finished_at = None;
        let fu = slot.finish_undo.take().expect("speculative finish has an undo record");
        let start = slot.arena.len() - fu.drained as usize;
        f.window.undo_drain(fu.prev_last_drain, &slot.arena[start..]);
        slot.arena.truncate(start);
        f.last_done = fu.prev_last_done;
        f.finished = false;
    }
    // Log keys are non-decreasing, so the overrun is a suffix.
    let keep = slot.log.partition_point(|e| (e.ready, g) < cut);
    let discard = slot.log.len() - keep;
    if discard == 0 {
        return;
    }
    for i in (keep..slot.log.len()).rev() {
        let e = &slot.log[i];
        let u = slot.undo.pop().expect("one undo record per log entry");
        // Reverse of the execution order in `advance_pure`.
        if let Some(ci) = u.l1_ins {
            f.l1.undo(ci);
        }
        if let Some(ci) = u.l2_ins {
            f.l2.undo(ci);
        }
        if let Some(cg) = u.l2_get {
            f.l2.undo(cg);
        }
        f.l1.undo(u.l1_get);
        if let Some(tf) = u.tlb_fill {
            match (u.tlb_large, f.tlb_2m.as_mut()) {
                (true, Some(t2)) => t2.undo_fill(tf),
                _ => f.tlb.undo_fill(tf),
            }
        }
        if let Some(w) = u.walk {
            let start = slot.arena.len() - w.retired as usize;
            f.walker.undo_walk(w, &slot.arena[start..]);
            slot.arena.truncate(start);
        }
        match (u.tlb_large, f.tlb_2m.as_mut()) {
            (true, Some(t2)) => t2.undo_translate(u.tlb),
            _ => f.tlb.undo_translate(u.tlb),
        }
        f.window.uncomplete(u.pushed);
        let start = slot.arena.len() - u.issue.retired as usize;
        f.window.undo_issue(u.issue, &slot.arena[start..]);
        slot.arena.truncate(start);
        f.ready = e.ready;
        f.last_done = u.prev_last_done;
    }
    f.stream.rewind(discard);
    f.consumed -= discard;
    slot.log.truncate(keep);
}

/// Shared coordination state for the persistent speculation worker pool.
///
/// One pool lives for the whole sharded run; each round the conductor
/// publishes the round's inputs through the pointer fields and bumps `seq`,
/// and each worker advances its fixed GPU chunk and reports back through
/// its `done` flag. This replaces a per-round `thread::scope` spawn, whose
/// OS-thread creation cost dominated short rounds.
struct ShardSync {
    /// Round sequence number. The conductor publishes the pointer fields
    /// below, then bumps this with `Release`; workers `Acquire`-load it, so
    /// observing a new round implies seeing that round's pointers.
    seq: AtomicU64,
    /// Horizon (exclusive pop-key cycle bound) of the current round.
    bound: AtomicU64,
    /// Base of the `GpuFrontend` array for the current round.
    gpus: AtomicPtr<GpuFrontend>,
    /// Base of the `RoundSlot` array for the current round.
    slots: AtomicPtr<RoundSlot>,
    /// The round's frozen `DriverView`, lifetime-erased. Valid only for the
    /// duration of the round that published it.
    view: AtomicPtr<()>,
    /// Per-worker completion flags, set to the round's `seq` with `Release`
    /// once the worker's chunk is done; the conductor `Acquire`-loads them,
    /// which is what lets it safely re-borrow the frontends.
    done: Vec<AtomicU64>,
    /// Tells workers to exit at the next `seq` bump.
    shutdown: AtomicBool,
    /// Set by a worker's drop guard if its round body panics, so the
    /// conductor does not wait forever on a `done` flag that never comes.
    poisoned: AtomicBool,
}

impl ShardSync {
    fn new(workers: usize) -> Self {
        ShardSync {
            seq: AtomicU64::new(0),
            bound: AtomicU64::new(0),
            gpus: AtomicPtr::new(std::ptr::null_mut()),
            slots: AtomicPtr::new(std::ptr::null_mut()),
            view: AtomicPtr::new(std::ptr::null_mut()),
            done: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            shutdown: AtomicBool::new(false),
            poisoned: AtomicBool::new(false),
        }
    }
}

/// Body of one pool worker: waits for a round, advances the GPUs in
/// `range`, reports completion, repeats until shutdown.
///
/// A panic in the round body is caught so the `done` flag is still set —
/// the conductor must never block on a flag that will not come, and no
/// worker may hold the round's raw pointers once its flag is up. The
/// conductor re-raises the panic after the round barrier.
fn shard_worker(sync: &ShardSync, w: usize, range: std::ops::Range<usize>, lat: LatencyConfig) {
    // Statically require what the raw-pointer sharing below relies on: the
    // per-GPU state crosses threads and the frozen view is shared.
    fn _bounds_hold()
    where
        GpuFrontend: Send,
        RoundSlot: Send,
        for<'a> DriverView<'a>: Sync,
    {
    }
    let done = &sync.done[w - 1];
    let mut last = 0u64;
    loop {
        // Wait for the next round: spin briefly (rounds are often back to
        // back), then yield, then park. A spurious unpark only re-loops.
        let mut spins = 0u32;
        let seq = loop {
            let s = sync.seq.load(Ordering::Acquire);
            if s != last {
                break s;
            }
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else if spins < 1 << 14 {
                std::thread::yield_now();
            } else {
                std::thread::park();
            }
        };
        last = seq;
        if sync.shutdown.load(Ordering::Acquire) {
            return;
        }
        let round = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let bound = sync.bound.load(Ordering::Relaxed);
            let gpus = sync.gpus.load(Ordering::Relaxed);
            let slots = sync.slots.load(Ordering::Relaxed);
            // SAFETY: the conductor publishes these pointers before the
            // `Release` bump of `seq` that started this round, and keeps
            // the view and both arrays alive (and un-borrowed) until every
            // `done` flag reports the round complete. The view is only
            // read, and `DriverView` is `Sync`.
            let view = unsafe { &*(sync.view.load(Ordering::Relaxed) as *const DriverView<'_>) };
            let _prof = span(Phase::SpecExecute);
            for g in range.clone() {
                // SAFETY: worker `w` is the only thread that touches
                // indices in `range` during a round — chunks are disjoint
                // by construction and the conductor only re-borrows the
                // arrays after the `Acquire` handshake on `done` — so these
                // are unique references for the duration of the loop body.
                let f = unsafe { &mut *gpus.add(g) };
                let slot = unsafe { &mut *slots.add(g) };
                advance_frontend(g, f, view, &lat, (bound, 0), slot);
            }
        }));
        if round.is_err() {
            sync.poisoned.store(true, Ordering::Release);
            done.store(seq, Ordering::Release);
            return;
        }
        done.store(seq, Ordering::Release);
    }
}

/// Optional per-figure instrumentation attached to a run.
#[derive(Clone, Debug, Default)]
pub struct ObserverConfig {
    /// Track a single page's per-GPU and read/write activity over
    /// intervals (Figs. 5 and 10).
    pub track_page: Option<PageId>,
    /// Interval length in cycles for the tracked-page series (paper: one
    /// million cycles).
    pub interval_cycles: Cycle,
    /// Record pages × intervals attribute grids (Figs. 6–8), with this
    /// many page bins. Zero disables the grids.
    pub grid_page_bins: usize,
    /// Rows (time intervals) for the attribute grids (paper: 50).
    pub grid_intervals: usize,
    /// Record the per-interval placement-scheme mix of L2-TLB-missing
    /// accesses (the adaptation timeline of the GRIT policy).
    pub scheme_timeline: bool,
}

impl ObserverConfig {
    /// Tracks one page at the paper's one-million-cycle interval.
    pub fn tracking(page: PageId) -> Self {
        ObserverConfig {
            track_page: Some(page),
            interval_cycles: 1_000_000,
            ..Default::default()
        }
    }

    /// Records the Figs. 6–8 attribute grids.
    pub fn with_grids(mut self, page_bins: usize) -> Self {
        self.grid_page_bins = page_bins;
        self.grid_intervals = 50;
        if self.interval_cycles == 0 {
            self.interval_cycles = 1_000_000;
        }
        self
    }
}

/// Recorded time-series instrumentation of a run.
#[derive(Clone, Debug)]
pub struct RunObserver {
    /// Per-interval access counts by GPU for the tracked page (Fig. 5).
    pub page_by_gpu: IntervalSeries,
    /// Per-interval read(0)/write(1) counts for the tracked page (Fig. 10).
    pub page_rw: IntervalSeries,
    /// Private(1)/shared(2) attribute grid over page bins (Figs. 6 & 8).
    pub grid_private_shared: Option<AttrGrid>,
    /// Read(1)/read-write(2) attribute grid over page bins (Fig. 7).
    pub grid_read_rw: Option<AttrGrid>,
    /// Cycles per grid row (derived from the configured interval).
    pub grid_interval_cycles: Cycle,
    /// Per-interval scheme mix at L2-TLB misses (buckets: on-touch,
    /// access-counter, duplication), when requested.
    pub scheme_timeline: Option<IntervalSeries>,
}

/// Everything a finished run yields.
#[derive(Clone, Debug)]
pub struct RunOutput {
    /// Aggregate metrics (Fig. 1/3/17/18/19 inputs).
    pub metrics: RunMetrics,
    /// Whole-run page-attribute summary (Figs. 4 & 9).
    pub page_attrs: PageAttrSummary,
    /// The full per-page attribute tracker (page selection for Figs. 5/10).
    pub attrs: PageAttrTracker,
    /// Time-series instrumentation, when configured.
    pub observer: Option<RunObserver>,
    /// Wall-clock profile of the cell; filled in by the batch executor
    /// (the simulation itself has no wall-clock view of workload builds).
    pub timing: CellTiming,
    /// Events captured by an attached tracer, drained after the run;
    /// `None` when tracing was disabled.
    pub events: Option<Vec<TraceEvent>>,
}

/// The assembled multi-GPU system.
pub struct Simulation {
    cfg: SimConfig,
    gpus: Vec<GpuFrontend>,
    /// Min-heap of `(ready, gpu)` over runnable GPUs. Entries go stale when
    /// a stall raises a GPU's ready cycle; [`Simulation::pop_next_gpu`]
    /// refreshes them lazily, replacing the per-access O(num_gpus) scan.
    ready_heap: BinaryHeap<Reverse<(Cycle, usize)>>,
    driver: UvmDriver,
    attrs: PageAttrTracker,
    scheme_mix: SchemeMix,
    accesses: u64,
    local_accesses: u64,
    remote_accesses: u64,
    footprint_pages: u64,
    observer_cfg: ObserverConfig,
    obs_page_by_gpu: Option<IntervalSeries>,
    obs_page_rw: Option<IntervalSeries>,
    obs_grid_ps: Option<AttrGrid>,
    obs_grid_rw: Option<AttrGrid>,
    obs_scheme_timeline: Option<IntervalSeries>,
    cancel: CancelToken,
    /// Worker threads sharding this run's event loop (1 = serial engine).
    sim_threads: usize,
}

/// Result of one serial event-loop step.
enum StepOutcome {
    /// An event was handled (or a barrier released).
    Progress,
    /// Every GPU finished its stream.
    AllFinished,
}

/// Fluent constructor for [`Simulation`], absorbing the old
/// `set_prefetcher` / `set_tracer` / `set_observer` mutators.
///
/// ```no_run
/// use grit::prelude::*;
/// use grit_uvm::StaticPolicy;
/// use grit_workloads::WorkloadBuilder;
///
/// let cfg = SimConfig::default();
/// let w = WorkloadBuilder::new(App::Bfs).num_gpus(cfg.num_gpus).scale(0.02).build();
/// let sim = SimulationBuilder::new(cfg, w, Box::new(StaticPolicy::new(grit_sim::Scheme::OnTouch)))
///     .observer(ObserverConfig::default().with_grids(50))
///     .build()
///     .expect("valid configuration");
/// let out = sim.try_run().expect("run failed");
/// ```
pub struct SimulationBuilder {
    cfg: SimConfig,
    workload: MultiGpuWorkload,
    policy: Box<dyn PlacementPolicy>,
    observer: Option<ObserverConfig>,
    prefetcher: Option<Box<dyn Prefetcher>>,
    tracer: Option<Tracer>,
    cancel: CancelToken,
    sim_threads: usize,
}

impl SimulationBuilder {
    /// Starts a builder from the three mandatory ingredients.
    pub fn new(
        cfg: SimConfig,
        workload: MultiGpuWorkload,
        policy: Box<dyn PlacementPolicy>,
    ) -> Self {
        SimulationBuilder {
            cfg,
            workload,
            policy,
            observer: None,
            prefetcher: None,
            tracer: None,
            cancel: CancelToken::new(),
            sim_threads: 1,
        }
    }

    /// Shards the event loop of this one simulation across `n` worker
    /// threads (default 1 = the serial engine). Output is byte-identical
    /// at any value; values above the GPU count are clamped.
    pub fn sim_threads(mut self, n: usize) -> Self {
        self.sim_threads = n.max(1);
        self
    }

    /// Wires the interconnect as `topo` describes (default: all-to-all).
    pub fn topology(mut self, topo: TopologyConfig) -> Self {
        self.cfg.topology = topo;
        self
    }

    /// Schedules deterministic hardware fault injection (default: none).
    pub fn inject(mut self, inject: InjectConfig) -> Self {
        self.cfg.inject = inject;
        self
    }

    /// Opts release builds into the driver's automatic invariant sweeps
    /// at epoch boundaries and after every injected fault (debug builds
    /// always run them).
    pub fn check_invariants(mut self, on: bool) -> Self {
        self.cfg.check_invariants = on;
        self
    }

    /// Enables time-series instrumentation.
    pub fn observer(mut self, cfg: ObserverConfig) -> Self {
        self.observer = Some(cfg);
        self
    }

    /// Attaches a prefetcher to the UVM driver (Fig. 30).
    pub fn prefetcher(mut self, p: Box<dyn Prefetcher>) -> Self {
        self.prefetcher = Some(p);
        self
    }

    /// Attaches an event sink to the UVM driver (and its fabric); the
    /// caller keeps a clone to drain events after the run.
    pub fn tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// Threads a cancellation token (abort flag and/or wall-clock budget)
    /// into the run loop; see [`Simulation::try_run`].
    pub fn cancel(mut self, token: CancelToken) -> Self {
        self.cancel = token;
        self
    }

    /// Validates and assembles the system.
    ///
    /// # Errors
    ///
    /// Returns the first violated configuration constraint.
    pub fn build(self) -> Result<Simulation, ConfigError> {
        let mut sim = Simulation::try_new(self.cfg, self.workload, self.policy)?;
        if let Some(obs) = self.observer {
            sim.set_observer(obs);
        }
        if let Some(p) = self.prefetcher {
            sim.driver.set_prefetcher(p);
        }
        if let Some(t) = self.tracer {
            sim.driver.set_tracer(t);
        }
        sim.cancel = self.cancel;
        sim.sim_threads = self.sim_threads;
        Ok(sim)
    }
}

impl Simulation {
    /// Wires a workload and a policy into a runnable system, reporting
    /// invalid configurations (including a workload whose GPU count differs
    /// from the configuration's) as values.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn try_new(
        cfg: SimConfig,
        workload: MultiGpuWorkload,
        policy: Box<dyn PlacementPolicy>,
    ) -> Result<Self, ConfigError> {
        cfg.validate()?;
        if workload.streams.len() != cfg.num_gpus {
            return Err(ConfigError::new(
                "workload",
                format!(
                    "workload GPU count must match the configuration \
                     (workload has {}, configuration expects {})",
                    workload.streams.len(),
                    cfg.num_gpus
                ),
            ));
        }
        let driver = UvmDriver::try_new(cfg.clone(), workload.footprint_pages, policy)?;
        let gpus: Vec<GpuFrontend> = workload
            .streams
            .into_iter()
            .zip(workload.barriers)
            .map(|(s, b)| GpuFrontend::new(&cfg, s, b))
            .collect();
        let ready_heap = (0..gpus.len()).map(|i| Reverse((0, i))).collect();
        Ok(Simulation {
            gpus,
            ready_heap,
            driver,
            attrs: PageAttrTracker::new(),
            scheme_mix: SchemeMix::default(),
            accesses: 0,
            local_accesses: 0,
            remote_accesses: 0,
            footprint_pages: workload.footprint_pages,
            observer_cfg: ObserverConfig::default(),
            obs_page_by_gpu: None,
            obs_page_rw: None,
            obs_grid_ps: None,
            obs_grid_rw: None,
            obs_scheme_timeline: None,
            cancel: CancelToken::new(),
            sim_threads: 1,
            cfg,
        })
    }

    /// Enables time-series instrumentation (builder-internal; external
    /// callers configure this through [`SimulationBuilder::observer`]).
    fn set_observer(&mut self, cfg: ObserverConfig) {
        if cfg.track_page.is_some() {
            let interval = cfg.interval_cycles.max(1);
            self.obs_page_by_gpu = Some(IntervalSeries::new(interval, self.cfg.num_gpus));
            self.obs_page_rw = Some(IntervalSeries::new(interval, 2));
        }
        if cfg.grid_page_bins > 0 {
            self.obs_grid_ps = Some(AttrGrid::new(cfg.grid_intervals, cfg.grid_page_bins));
            self.obs_grid_rw = Some(AttrGrid::new(cfg.grid_intervals, cfg.grid_page_bins));
        }
        if cfg.scheme_timeline {
            self.obs_scheme_timeline = Some(IntervalSeries::new(cfg.interval_cycles.max(1), 3));
        }
        self.observer_cfg = cfg;
    }

    /// The active policy's name.
    pub fn policy_name(&self) -> String {
        self.driver.policy_name()
    }

    /// Runs the workload to completion and collects all metrics,
    /// reporting failures as values.
    ///
    /// The cancellation token installed via [`SimulationBuilder::cancel`]
    /// is polled every 4096 processed accesses (and before the first), so
    /// a raised abort flag or an expired wall-clock budget stops the run
    /// within a bounded amount of simulated work — including a zero
    /// budget, which fires before any access is replayed.
    ///
    /// # Errors
    ///
    /// [`CellError::TimedOut`] (with partial progress counters) when the
    /// budget expires, [`CellError::Cancelled`] when the shared abort flag
    /// is raised, and [`CellError::Invariant`] when post-run VM-state
    /// checks fail.
    pub fn try_run(mut self) -> Result<RunOutput, GritError> {
        let threads = self.sim_threads.clamp(1, self.gpus.len().max(1));
        if threads > 1 {
            return self.try_run_sharded(threads);
        }
        let cancel_active = self.cancel.is_active();
        loop {
            if cancel_active && self.accesses & 0xFFF == 0 {
                self.poll_cancel()?;
            }
            match self.serial_step()? {
                StepOutcome::Progress => {}
                StepOutcome::AllFinished => break,
            }
        }
        self.finish()
    }

    /// Raises the installed cancellation token's state as an error.
    fn poll_cancel(&self) -> Result<(), GritError> {
        match self.cancel.poll() {
            CancelState::Running => Ok(()),
            CancelState::Cancelled => Err(CellError::Cancelled.into()),
            CancelState::TimedOut => {
                let cycles = self.gpus.iter().map(|g| g.last_done).max().unwrap_or(0);
                Err(CellError::TimedOut {
                    budget_seconds: self.cancel.budget_seconds(),
                    cycles,
                    accesses: self.accesses,
                }
                .into())
            }
        }
    }

    /// One iteration of the serial event loop: pop the GPU with the
    /// smallest `(ready, index)` key and handle its next event.
    fn serial_step(&mut self) -> Result<StepOutcome, GritError> {
        let Some(g) = self.pop_next_gpu() else {
            if self.gpus.iter().all(|g| g.finished) {
                return Ok(StepOutcome::AllFinished);
            }
            // Every unfinished GPU sits at the barrier: synchronize
            // the node at the slowest GPU's drain point.
            self.release_barrier();
            return Ok(StepOutcome::Progress);
        };
        if let Some(out) = self.driver.maybe_run_epoch(self.gpus[g].ready) {
            self.apply_outcome(g, &out);
        }
        if self.gpus[g].at_barrier() {
            // Not re-pushed: the GPU re-enters the heap when the
            // barrier releases.
            self.gpus[g].waiting = true;
            return Ok(StepOutcome::Progress);
        }
        match self.gpus[g].stream.next_access() {
            Some(acc) => {
                self.gpus[g].consumed += 1;
                self.process(g, acc)?;
                self.ready_heap.push(Reverse((self.gpus[g].ready, g)));
            }
            None => {
                let drained = self.gpus[g].window.drain_time();
                self.gpus[g].last_done = self.gpus[g].last_done.max(drained);
                self.gpus[g].finished = true;
            }
        }
        Ok(StepOutcome::Progress)
    }

    /// The time-sharded engine: optimistic round-based speculation with
    /// undo-log rollback and canonical-order commit.
    ///
    /// Spawns a persistent worker pool (threads live for the whole run;
    /// each round is a publish/handshake on [`ShardSync`], not a thread
    /// spawn), runs the round loop, then shuts the pool down — on success,
    /// error, and panic alike (workers parked in a dead pool would hang
    /// the scope's implicit join).
    fn try_run_sharded(mut self, threads: usize) -> Result<RunOutput, GritError> {
        let n = self.gpus.len();
        let chunk = n.div_ceil(threads);
        let lat = self.cfg.lat;
        let sync = &ShardSync::new(threads - 1);
        std::thread::scope(|scope| {
            let mut workers = Vec::with_capacity(threads - 1);
            for w in 1..threads {
                let range = (w * chunk).min(n)..((w + 1) * chunk).min(n);
                let handle = scope.spawn(move || shard_worker(sync, w, range, lat));
                workers.push(handle.thread().clone());
            }
            /// Shuts the pool down on drop, so a panic unwinding out of
            /// the round loop still releases parked workers.
            struct Shutdown<'a> {
                sync: &'a ShardSync,
                workers: &'a [std::thread::Thread],
            }
            impl Drop for Shutdown<'_> {
                fn drop(&mut self) {
                    self.sync.shutdown.store(true, Ordering::Release);
                    self.sync.seq.fetch_add(1, Ordering::Release);
                    for t in self.workers {
                        t.unpark();
                    }
                }
            }
            let rounds = {
                let _shutdown = Shutdown {
                    sync,
                    workers: &workers,
                };
                self.sharded_rounds(sync, &workers, chunk)
            };
            rounds?;
            self.finish()
        })
    }

    /// The round loop of the sharded engine.
    ///
    /// Each round freezes the driver, speculatively advances every
    /// runnable GPU in parallel through its purely GPU-local accesses up
    /// to a horizon (`lookahead_bound × window_scale` past the earliest
    /// runnable cycle), then:
    ///
    /// 1. finds the *cut* — the earliest blocked serial event by
    ///    `(cycle, gpu)` key;
    /// 2. rolls any GPU that speculated past the cut back to the cut by
    ///    reversing its undo log;
    /// 3. commits every surviving logged access in the exact order the
    ///    serial engine replays them (sorted by pop key, stable per GPU),
    ///    applying their global side effects;
    /// 4. executes the cut event itself through the unchanged serial path.
    ///
    /// The committed event sequence is therefore the canonical serial
    /// prefix regardless of thread count or round structure, which is what
    /// makes the output byte-identical to the serial engine.
    fn sharded_rounds(
        &mut self,
        sync: &ShardSync,
        workers: &[std::thread::Thread],
        chunk: usize,
    ) -> Result<(), GritError> {
        /// Upper bound on the adaptive horizon multiplier.
        const MAX_WINDOW_SCALE: Cycle = 1 << 10;
        /// Serial steps batched when a round commits nothing (fault- or
        /// barrier-dominated phases), amortizing the round overhead.
        const SERIAL_BURST: usize = 256;
        let cancel_active = self.cancel.is_active();
        let mut slots: Vec<RoundSlot> =
            (0..self.gpus.len()).map(|_| RoundSlot::default()).collect();
        let mut merged: Vec<(usize, PureEntry)> = Vec::new();
        let lookahead = self.driver.lookahead_bound();
        let mut window_scale: Cycle = 1;
        // Always-on speculation telemetry: plain counter bumps per round,
        // recorded into `grit-prof` at the end if profiling is enabled.
        let mut spec = SpecStats {
            per_gpu_committed: vec![0; self.gpus.len()],
            ..SpecStats::default()
        };
        'rounds: loop {
            if cancel_active {
                self.poll_cancel()?;
            }
            if self.gpus.iter().all(|g| g.finished) {
                break;
            }
            if self.gpus.iter().all(|g| g.finished || g.waiting) {
                self.release_barrier();
                continue;
            }
            let base = self
                .gpus
                .iter()
                .filter(|g| !g.finished && !g.waiting)
                .map(|g| g.ready)
                .min()
                .expect("a runnable GPU exists");
            let horizon = base.saturating_add(lookahead.saturating_mul(window_scale));
            self.speculate_round(sync, workers, chunk, &mut slots, horizon);
            let speculated: usize = slots.iter().map(|s| s.log.len()).sum();
            spec.rounds += 1;
            spec.speculated += speculated as u64;
            let cut: Option<(Cycle, usize)> = {
                let _prof = span(Phase::SpecClassify);
                slots.iter().enumerate().filter_map(|(g, s)| s.serial_at.map(|c| (c, g))).min()
            };
            // A runnable shard with no serial stop and no finish ran out of
            // horizon, not out of pure work: the lookahead bound stalled it.
            for (g, s) in slots.iter().enumerate() {
                let f = &self.gpus[g];
                if s.serial_at.is_none()
                    && s.finished_at.is_none()
                    && !f.finished
                    && !f.waiting
                    && f.ready >= horizon
                {
                    spec.horizon_stalls += 1;
                    spec.horizon_stall_cycles += f.ready - horizon;
                }
            }
            if let Some(cut_key) = cut {
                spec.rewound += slots
                    .iter()
                    .enumerate()
                    .filter(|(g, s)| {
                        s.log.last().is_some_and(|e| (e.ready, *g) >= cut_key)
                            || s.finished_at.is_some_and(|c| (c, *g) >= cut_key)
                    })
                    .count() as u64;
                let _prof = span(Phase::SpecRollback);
                self.rewind_overruns(&mut slots, cut_key);
            }
            // Canonical merge: per-GPU logs are in execution order with
            // non-decreasing keys, and the serial pop sequence is exactly
            // the key-sorted interleaving (stable within a GPU).
            let committed = {
                let _prof = span(Phase::SpecClassify);
                merged.clear();
                for (g, slot) in slots.iter_mut().enumerate() {
                    merged.extend(slot.log.drain(..).map(|e| (g, e)));
                }
                merged.sort_by_key(|(g, e)| (e.ready, *g));
                merged.len()
            };
            spec.committed += committed as u64;
            {
                let _prof = span(Phase::SpecCommit);
                for (g, e) in &merged {
                    spec.per_gpu_committed[*g] += 1;
                    self.commit_entry(*g, e);
                }
            }
            if cut.is_some() {
                // The blocked event runs through the unchanged serial
                // path: fault, collapse, remote fetch, epoch, barrier.
                match self.serial_step()? {
                    StepOutcome::Progress => {}
                    StepOutcome::AllFinished => break,
                }
                if committed == 0 {
                    // Nothing speculates past this point cheaply; degrade
                    // to a bounded serial burst instead of paying a round
                    // barrier per single event.
                    window_scale = 1;
                    for _ in 0..SERIAL_BURST {
                        spec.serial += 1;
                        match self.serial_step()? {
                            StepOutcome::Progress => {}
                            StepOutcome::AllFinished => break 'rounds,
                        }
                    }
                } else if speculated > 2 * committed {
                    // Most of the horizon was thrown away at the cut:
                    // narrow it so speculation tracks the commit rate.
                    window_scale = (window_scale / 2).max(1);
                }
            } else {
                // Full horizon committed: widen the window to amortize
                // round barriers over more work.
                window_scale = (window_scale * 2).min(MAX_WINDOW_SCALE);
            }
        }
        if grit_prof::enabled() {
            grit_prof::record_spec(&spec);
        }
        Ok(())
    }

    /// The parallel phase of one round: the pool workers advance their GPU
    /// chunks against the frozen driver view up to `horizon` while the
    /// conductor doubles as worker zero on the first chunk.
    ///
    /// Per-GPU results depend only on that GPU's state and the shared
    /// frozen view, so slot contents are independent of the thread count
    /// and chunk assignment.
    ///
    /// Publishes fresh pointers every round (the `gpus` and `slots`
    /// allocations are stable, but the view is a per-round stack value)
    /// and returns only after every worker's `Acquire` handshake, at which
    /// point no other thread holds any of them.
    fn speculate_round(
        &mut self,
        sync: &ShardSync,
        workers: &[std::thread::Thread],
        chunk: usize,
        slots: &mut [RoundSlot],
        horizon: Cycle,
    ) {
        let n = self.gpus.len();
        let view = self.driver.view();
        let lat = self.cfg.lat;
        let seq = sync.seq.load(Ordering::Relaxed) + 1;
        sync.bound.store(horizon, Ordering::Relaxed);
        sync.gpus.store(self.gpus.as_mut_ptr(), Ordering::Relaxed);
        sync.slots.store(slots.as_mut_ptr(), Ordering::Relaxed);
        sync.view.store(
            std::ptr::from_ref(&view).cast::<()>().cast_mut(),
            Ordering::Relaxed,
        );
        sync.seq.store(seq, Ordering::Release);
        for t in workers {
            t.unpark();
        }
        // The conductor's own chunk, through the published pointers (the
        // worker chunks hold live references derived from them, so the
        // arrays must not be re-borrowed directly until the handshake).
        let gpus_ptr = sync.gpus.load(Ordering::Relaxed);
        let slots_ptr = sync.slots.load(Ordering::Relaxed);
        let prof_exec = span(Phase::SpecExecute);
        for g in 0..chunk.min(n) {
            // SAFETY: same disjointness argument as in `shard_worker`; the
            // conductor owns chunk zero for the duration of the round.
            let f = unsafe { &mut *gpus_ptr.add(g) };
            let slot = unsafe { &mut *slots_ptr.add(g) };
            advance_frontend(g, f, &view, &lat, (horizon, 0), slot);
        }
        drop(prof_exec);
        for d in &sync.done {
            let mut spins = 0u32;
            while d.load(Ordering::Acquire) != seq {
                spins += 1;
                if spins < 1 << 10 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
        if sync.poisoned.load(Ordering::Acquire) {
            panic!("sharded speculation worker panicked");
        }
    }

    /// Rolls every GPU that speculated to or past the cut back to the cut
    /// by reversing its undo log (cost proportional to the overrun, not to
    /// the frontend state size).
    fn rewind_overruns(&mut self, slots: &mut [RoundSlot], cut: (Cycle, usize)) {
        for (g, slot) in slots.iter_mut().enumerate() {
            let overran = slot.log.last().is_some_and(|e| (e.ready, g) >= cut)
                || slot.finished_at.is_some_and(|c| (c, g) >= cut);
            if overran {
                rollback_to_cut(g, &mut self.gpus[g], slot, cut);
            }
        }
    }

    /// Applies the deferred global side effects of one committed pure
    /// access — the exact shared-state mutations [`Simulation::process`]
    /// performs inline, in the same within-access order.
    fn commit_entry(&mut self, g: usize, e: &PureEntry) {
        let gpu = GpuId::new(g as u8);
        self.accesses += 1;
        self.attrs.record(gpu, e.vpn, e.kind);
        self.observe(e.t0, g, e.vpn, e.kind.is_write());
        if self.driver.wants_access_feed() {
            self.driver.feed_access(e.t0, gpu, e.vpn, e.kind);
        }
        if e.walked {
            let scheme = self.driver.scheme_of(e.vpn);
            self.scheme_mix.record(scheme);
            if let Some(series) = &mut self.obs_scheme_timeline {
                let bucket = match scheme {
                    grit_sim::Scheme::OnTouch => 0,
                    grit_sim::Scheme::AccessCounter => 1,
                    grit_sim::Scheme::Duplication => 2,
                };
                series.record(e.t0, bucket);
            }
            self.driver.charge(LatencyClass::Local, e.walk_cycles);
        }
        if e.local_miss {
            self.driver.commit_local_touch(gpu, e.vpn, e.kind.is_write());
            self.local_accesses += 1;
        }
    }

    /// Removes and returns the runnable GPU with the smallest ready cycle
    /// (ties broken toward the lowest index, matching a linear scan).
    ///
    /// Ready cycles only ever advance, so a heap entry can be *below* its
    /// GPU's current ready (a stall landed after the push) but never above;
    /// stale entries are refreshed in place. Every runnable GPU has exactly
    /// one entry; the caller re-pushes after advancing the GPU it popped.
    fn pop_next_gpu(&mut self) -> Option<usize> {
        while let Some(Reverse((ready, g))) = self.ready_heap.pop() {
            let f = &self.gpus[g];
            if f.finished || f.waiting {
                continue;
            }
            if f.ready != ready {
                self.ready_heap.push(Reverse((f.ready, g)));
                continue;
            }
            return Some(g);
        }
        None
    }

    /// Releases all GPUs held at a kernel boundary once everyone arrived:
    /// the next kernel launches after the slowest GPU drained its window.
    fn release_barrier(&mut self) {
        let mut sync = 0;
        for g in &mut self.gpus {
            let t = if g.finished {
                g.last_done
            } else {
                g.ready.max(g.window.drain_time())
            };
            sync = sync.max(t);
        }
        for (i, g) in self.gpus.iter_mut().enumerate() {
            if g.waiting {
                g.waiting = false;
                g.next_barrier += 1;
                g.ready = sync;
                g.last_done = g.last_done.max(sync);
                self.ready_heap.push(Reverse((sync, i)));
            }
        }
    }

    fn process(&mut self, g: usize, acc: Access) -> Result<(), GritError> {
        let gpu = GpuId::new(g as u8);
        let vpn = acc.vpn;
        let issue_base = self.gpus[g].ready + acc.think as Cycle;
        let t0 = self.gpus[g].window.issue_at(issue_base);
        self.gpus[g].ready = t0;

        self.accesses += 1;
        self.attrs.record(gpu, vpn, acc.kind);
        self.observe(t0, g, vpn, acc.is_write());
        if self.driver.wants_access_feed() {
            self.driver.feed_access(t0, gpu, vpn, acc.kind);
        }

        // Address translation. A coalesced frame owned by this GPU
        // translates through the 2 MB hierarchy under the frame-base key
        // (mirroring `advance_pure`); everything else through the
        // base-page TLBs.
        let large_key = match self.gpus[g].tlb_2m {
            Some(_) => self.driver.large_translation(gpu, vpn),
            None => None,
        };
        let (level, tlb_lat, mut mapping) = {
            let _prof = span(Phase::Translate);
            let (level, tlb_lat) = match (large_key, self.gpus[g].tlb_2m.as_mut()) {
                (Some(base), Some(t2)) => t2.translate(base),
                _ => self.gpus[g].tlb.translate(vpn),
            };
            (level, tlb_lat, self.driver.translate(gpu, vpn))
        };
        let mut t = t0 + tlb_lat;
        if level == TranslationLevel::Walk || mapping.is_none() {
            if level == TranslationLevel::Walk {
                let scheme = self.driver.scheme_of(vpn);
                self.scheme_mix.record(scheme);
                if let Some(series) = &mut self.obs_scheme_timeline {
                    let bucket = match scheme {
                        grit_sim::Scheme::OnTouch => 0,
                        grit_sim::Scheme::AccessCounter => 1,
                        grit_sim::Scheme::Duplication => 2,
                    };
                    series.record(t0, bucket);
                }
            }
            let walk = {
                let _prof = span(Phase::Translate);
                self.gpus[g].walker.walk(t, vpn)
            };
            self.driver.charge(LatencyClass::Local, walk.done_at - t);
            t = walk.done_at;
            if mapping.is_none() {
                let out = self.driver.handle_fault(FaultInfo {
                    now: t,
                    gpu,
                    vpn,
                    kind: acc.kind,
                    fault: FaultKind::Local,
                });
                t = t.max(out.done_at);
                self.apply_outcome(g, &out);
                // The outcome carries the mapping the mechanism installed,
                // saving a second page-table lookup on the walk path.
                mapping = out.mapping;
            }
            self.tlb_fill(g, vpn);
        }
        let mut mapping = mapping.ok_or_else(|| {
            GritError::Cell(CellError::Invariant(
                "fault handling must establish a mapping".into(),
            ))
        })?;

        // Writes to read-only replicas: protection fault (collapse) or GPS
        // store broadcast.
        if acc.is_write() && mapping == Mapping::Replica {
            if self.driver.write_mode() == WriteMode::Broadcast {
                let done = self.driver.broadcast_store(t, gpu, vpn);
                self.local_accesses += 1;
                self.complete(g, done);
                return Ok(());
            }
            let out = self.driver.handle_fault(FaultInfo {
                now: t,
                gpu,
                vpn,
                kind: acc.kind,
                fault: FaultKind::Protection,
            });
            t = t.max(out.done_at);
            self.apply_outcome(g, &out);
            self.tlb_fill(g, vpn);
            mapping = out.mapping.ok_or_else(|| {
                GritError::Cell(CellError::Invariant(
                    "collapse must leave the writer mapped".into(),
                ))
            })?;
        }

        // Data access through the cache hierarchy.
        let key = self.gpus[g].line_key(vpn, acc.line);
        if self.gpus[g].l1.get(&key).is_some() {
            t += self.cfg.lat.l1_data_hit;
        } else if self.gpus[g].l2.get(&key).is_some() {
            t += self.cfg.lat.l2_data_hit;
            self.gpus[g].l1.insert(key, ());
        } else {
            match mapping {
                Mapping::Local | Mapping::Replica => {
                    t = self.driver.local_line_access(t, gpu, vpn);
                    if acc.is_write() {
                        self.driver.mark_page_dirty(gpu, vpn);
                    }
                    self.local_accesses += 1;
                }
                Mapping::Remote(_) | Mapping::RemoteHost => {
                    let owner = match mapping {
                        Mapping::Remote(o) => MemLoc::Gpu(o),
                        _ => MemLoc::Host,
                    };
                    t = self.driver.remote_line_access(t, gpu, owner);
                    self.remote_accesses += 1;
                    if let Some(out) = self.driver.record_remote_access(t, gpu, vpn) {
                        // The counter-triggered migration proceeds in the
                        // background; this access already completed
                        // remotely, but the system-wide side effects apply.
                        self.apply_outcome(g, &out);
                    }
                }
            }
            self.gpus[g].l2.insert(key, ());
            self.gpus[g].l1.insert(key, ());
        }
        self.complete(g, t);
        Ok(())
    }

    fn complete(&mut self, g: usize, done: Cycle) {
        self.gpus[g].window.complete(done);
        self.gpus[g].last_done = self.gpus[g].last_done.max(done);
    }

    /// Fills the right TLB for `gpu`'s fresh translation of `vpn`: the
    /// 2 MB hierarchy under the frame key when the GPU owns a coalesced
    /// frame over the page (fault handling may just have coalesced or
    /// splintered it), the base hierarchy otherwise.
    fn tlb_fill(&mut self, g: usize, vpn: PageId) {
        let key = match self.gpus[g].tlb_2m {
            Some(_) => self.driver.large_translation(GpuId::new(g as u8), vpn),
            None => None,
        };
        let f = &mut self.gpus[g];
        match (key, f.tlb_2m.as_mut()) {
            (Some(base), Some(t2)) => t2.fill(base),
            _ => f.tlb.fill(vpn),
        }
    }

    fn apply_outcome(&mut self, _faulting: usize, out: &DriverOutcome) {
        for &(gpu, until) in &out.stalls {
            let f = &mut self.gpus[gpu.index()];
            f.ready = f.ready.max(until);
        }
        for &(gpu, vpn) in &out.invalidated {
            self.gpus[gpu.index()].invalidate_page(vpn);
        }
        for &(gpu, frame) in &out.splintered {
            self.gpus[gpu.index()].invalidate_large(frame);
        }
    }

    fn observe(&mut self, now: Cycle, g: usize, vpn: PageId, write: bool) {
        if self.observer_cfg.track_page == Some(vpn) {
            if let Some(s) = &mut self.obs_page_by_gpu {
                s.record(now, g);
            }
            if let Some(s) = &mut self.obs_page_rw {
                s.record(now, usize::from(write));
            }
        }
        if let Some(grid) = &mut self.obs_grid_ps {
            let interval = ((now / self.observer_cfg.interval_cycles.max(1)) as usize).min(49);
            let bin = (vpn.vpn() as usize * self.observer_cfg.grid_page_bins
                / self.footprint_pages.max(1) as usize)
                .min(self.observer_cfg.grid_page_bins - 1);
            let ps_code = if self.attrs.is_shared(vpn) { 2 } else { 1 };
            grid.mark(interval, bin, ps_code);
            if let Some(rw) = &mut self.obs_grid_rw {
                let rw_code = if self.attrs.is_written(vpn) { 2 } else { 1 };
                rw.mark(interval, bin, rw_code);
            }
        }
    }

    fn finish(self) -> Result<RunOutput, GritError> {
        // The Ideal upper bound deliberately fakes local mappings on every
        // GPU; its state is exempt from the consistency invariants.
        if !self.driver.is_ideal() {
            if let Err(e) = self.driver.check_invariants() {
                return Err(GritError::Cell(CellError::Invariant(format!(
                    "VM state invariant violated after run: {e}"
                ))));
            }
        }
        let total_cycles = self.gpus.iter().map(|g| g.last_done).max().unwrap_or(0);
        let fabric = self.driver.fabric_stats();
        let per_gpu_finish: Vec<f64> = self.gpus.iter().map(|g| g.last_done as f64).collect();
        let per_gpu_accesses: Vec<f64> = self.gpus.iter().map(|g| g.consumed as f64).collect();
        let mut metrics = RunMetrics {
            total_cycles,
            accesses: self.accesses,
            local_accesses: self.local_accesses,
            remote_accesses: self.remote_accesses,
            breakdown: self.driver.breakdown(),
            faults: self.driver.fault_counters(),
            scheme_mix: self.scheme_mix,
            // GPU-side wire bytes across every class, so the headline
            // column stays comparable between topologies (identical to
            // plain NVLink bytes on the default all-to-all).
            nvlink_bytes: fabric.wire_bytes(),
            pcie_bytes: fabric.pcie_bytes,
            oversubscription_rate: self.driver.oversubscription_rate(),
            aux: HashMap::new(),
        };
        metrics.set_aux("per_gpu_finish_cycles", per_gpu_finish);
        metrics.set_aux("per_gpu_accesses", per_gpu_accesses);
        // Per-class fabric traffic (class order: nvlink, switch,
        // inter-node, pcie) — the source of the report's `fabric` object.
        metrics.set_aux(
            "fabric_class_bytes",
            vec![
                fabric.nvlink_bytes as f64,
                fabric.switch_bytes as f64,
                fabric.inter_node_bytes as f64,
                fabric.pcie_bytes as f64,
            ],
        );
        metrics.set_aux(
            "fabric_queue_cycles",
            vec![
                fabric.nvlink_queue_cycles as f64,
                fabric.switch_queue_cycles as f64,
                fabric.inter_node_queue_cycles as f64,
                fabric.pcie_queue_cycles as f64,
            ],
        );
        metrics.set_aux(
            "per_gpu_faults",
            self.driver.faults_per_gpu().iter().map(|&f| f as f64).collect(),
        );
        // Fault-injection outcomes (the report's `resilience` object);
        // only injected runs carry the series, so uninjected reports are
        // byte-identical to pre-injection ones.
        if self.driver.injection_active() {
            metrics.set_aux(
                "resilience_counters",
                self.driver.resilience_counters().as_aux(),
            );
        }
        let h = self.driver.fault_latency();
        metrics.set_aux(
            "fault_latency_summary",
            vec![
                h.samples() as f64,
                h.mean(),
                h.percentile(0.5) as f64,
                h.percentile(0.99) as f64,
                h.max() as f64,
            ],
        );
        let (l1_rates, l2_rates): (Vec<f64>, Vec<f64>) = self
            .gpus
            .iter()
            .map(|g| {
                let (l1, l2) = g.tlb.level_stats();
                (l1.hit_rate(), l2.hit_rate())
            })
            .unzip();
        metrics.set_aux("tlb_l1_hit_rate", l1_rates);
        metrics.set_aux("tlb_l2_hit_rate", l2_rates);
        // Multi-page-size telemetry; only large-page runs carry the
        // series, so uniform-4 KB outputs stay byte-identical.
        if self.driver.large_pages_active() {
            metrics.set_aux("pagesize_counters", self.driver.pagesize_series());
            let (l1_2m, l2_2m): (Vec<f64>, Vec<f64>) = self
                .gpus
                .iter()
                .map(|g| {
                    let t2 = g.tlb_2m.as_ref().expect("large-page mode allocates 2 MB TLBs");
                    let (l1, l2) = t2.level_stats();
                    (l1.hit_rate(), l2.hit_rate())
                })
                .unzip();
            metrics.set_aux("tlb_l1_hit_rate_2m", l1_2m);
            metrics.set_aux("tlb_l2_hit_rate_2m", l2_2m);
        }
        // Cycle-domain profiling series. Always recorded (the sources sit
        // on rare paths), and byte-identical at any `sim_threads`: the
        // histograms live behind the driver, which only ever runs in
        // canonical serial order, and the MLP stall counter undoes its
        // speculative contributions on rollback.
        metrics.set_aux(
            "prof_fault_occupancy_hist",
            hist_aux(self.driver.fault_occupancy()),
        );
        metrics.set_aux(
            "prof_migration_latency_hist",
            hist_aux(self.driver.migration_latency()),
        );
        metrics.set_aux(
            "prof_fabric_queue_hist",
            hist_aux(self.driver.fabric_queue_wait()),
        );
        metrics.set_aux(
            "prof_mlp_stall_cycles",
            self.gpus.iter().map(|g| g.window.stall_cycles() as f64).collect(),
        );
        let any_observer = self.obs_page_by_gpu.is_some()
            || self.obs_grid_ps.is_some()
            || self.obs_scheme_timeline.is_some();
        let observer = any_observer.then(|| RunObserver {
            page_by_gpu: self.obs_page_by_gpu.unwrap_or_else(|| IntervalSeries::new(1, 1)),
            page_rw: self.obs_page_rw.unwrap_or_else(|| IntervalSeries::new(1, 2)),
            grid_private_shared: self.obs_grid_ps,
            grid_read_rw: self.obs_grid_rw,
            grid_interval_cycles: self.observer_cfg.interval_cycles,
            scheme_timeline: self.obs_scheme_timeline,
        });
        Ok(RunOutput {
            metrics,
            page_attrs: self.attrs.summary(),
            attrs: self.attrs,
            observer,
            timing: CellTiming::default(),
            events: None,
        })
    }
}

/// Flattens a latency histogram into a self-describing aux series:
/// `[samples, mean, max, lb0, c0, lb1, c1, ...]` over non-empty buckets
/// (`lb` = bucket lower bound in cycles, `c` = sample count).
fn hist_aux(h: &LatencyHistogram) -> Vec<f64> {
    let mut v = vec![h.samples() as f64, h.mean(), h.max() as f64];
    for (lb, c) in h.iter() {
        v.push(lb as f64);
        v.push(c as f64);
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use grit_sim::{AccessKind, Scheme};
    use grit_uvm::StaticPolicy;
    use grit_workloads::{App, MultiGpuWorkload, WorkloadBuilder};

    /// Hand-built two-GPU workload: explicit accesses and barriers.
    fn tiny_workload(
        per_gpu: Vec<Vec<Access>>,
        barriers: Vec<Vec<usize>>,
        pages: u64,
    ) -> MultiGpuWorkload {
        MultiGpuWorkload {
            app: App::Bfs,
            footprint_pages: pages,
            streams: per_gpu.into_iter().map(SliceStream::new).collect(),
            barriers,
        }
    }

    fn two_gpu_cfg() -> SimConfig {
        SimConfig {
            num_gpus: 2,
            ..SimConfig::default()
        }
    }

    fn run(w: MultiGpuWorkload, cfg: SimConfig) -> RunOutput {
        let policy = Box::new(StaticPolicy::new(Scheme::OnTouch));
        Simulation::try_new(cfg, w, policy).unwrap().try_run().unwrap()
    }

    #[test]
    fn empty_streams_finish_at_zero_cost() {
        let w = tiny_workload(vec![vec![], vec![]], vec![vec![], vec![]], 4);
        let out = run(w, two_gpu_cfg());
        assert_eq!(out.metrics.accesses, 0);
        assert_eq!(out.metrics.total_cycles, 0);
    }

    #[test]
    fn single_access_faults_once_and_completes() {
        let w = tiny_workload(
            vec![vec![Access::read(PageId(1), 0)], vec![]],
            vec![vec![], vec![]],
            4,
        );
        let out = run(w, two_gpu_cfg());
        assert_eq!(out.metrics.accesses, 1);
        assert_eq!(out.metrics.faults.local_faults, 1);
        assert!(out.metrics.total_cycles > 0);
    }

    #[test]
    fn repeated_access_hits_tlb_and_cache() {
        let accesses = vec![Access::read(PageId(1), 0); 8];
        let w = tiny_workload(vec![accesses, vec![]], vec![vec![], vec![]], 4);
        let out = run(w, two_gpu_cfg());
        // One fault total: the other seven accesses hit the warm path.
        assert_eq!(out.metrics.faults.local_faults, 1);
        assert_eq!(
            out.metrics.local_accesses, 1,
            "later touches hit the L1/L2 cache"
        );
    }

    #[test]
    fn barriers_hold_the_fast_gpu() {
        // GPU0: one access, then a barrier, then another access.
        // GPU1: a long stream before its barrier.
        let long: Vec<Access> =
            (0..200).map(|i| Access::read(PageId(1 + (i % 3)), (i % 64) as u16)).collect();
        let w = tiny_workload(
            vec![
                vec![Access::read(PageId(0), 0), Access::read(PageId(0), 1)],
                long.clone(),
            ],
            vec![vec![1], vec![long.len()]],
            8,
        );
        let out = run(w, two_gpu_cfg());
        // GPU0's second access can only issue after GPU1 finished its
        // pre-barrier work, so the total run is bounded below by GPU1's
        // stream length in think cycles.
        assert!(out.metrics.total_cycles > 200 * 4);
    }

    #[test]
    fn empty_phase_barriers_pass_through() {
        // Both GPUs carry two consecutive barriers at the same position
        // (an empty phase, e.g. a kernel run by neither GPU).
        let w = tiny_workload(
            vec![
                vec![Access::read(PageId(0), 0), Access::read(PageId(1), 0)],
                vec![Access::read(PageId(2), 0), Access::read(PageId(3), 0)],
            ],
            vec![vec![1, 1], vec![1, 1]],
            8,
        );
        let out = run(w, two_gpu_cfg());
        assert_eq!(out.metrics.accesses, 4);
    }

    #[test]
    fn protection_fault_on_replica_write() {
        let mut cfg = two_gpu_cfg();
        cfg.num_gpus = 2;
        let w = tiny_workload(
            vec![
                // GPU0 reads (becomes owner via first-touch migration
                // under duplication policy), then GPU1 reads (replica)
                // and writes (protection fault -> collapse).
                vec![Access::read(PageId(1), 0)],
                vec![
                    Access::read(PageId(1), 1).with_think(50_000),
                    Access::write(PageId(1), 2).with_think(50_000),
                ],
            ],
            vec![vec![], vec![]],
            4,
        );
        let policy = Box::new(StaticPolicy::new(Scheme::Duplication));
        let out = Simulation::try_new(cfg, w, policy).unwrap().try_run().unwrap();
        assert_eq!(out.metrics.faults.protection_faults, 1);
        assert_eq!(out.metrics.faults.collapses, 1);
    }

    #[test]
    fn observer_tracks_only_the_requested_page() {
        let w = tiny_workload(
            vec![
                vec![Access::read(PageId(1), 0), Access::read(PageId(2), 0)],
                vec![Access::read(PageId(1), 1)],
            ],
            vec![vec![], vec![]],
            4,
        );
        let policy = Box::new(StaticPolicy::new(Scheme::OnTouch));
        let sim = SimulationBuilder::new(two_gpu_cfg(), w, policy)
            .observer(ObserverConfig::tracking(PageId(1)))
            .build()
            .unwrap();
        let out = sim.try_run().unwrap();
        let obs = out.observer.expect("observer configured");
        let total: u64 = obs.page_by_gpu.iter().map(|(_, r)| r.iter().sum::<u64>()).sum();
        assert_eq!(total, 2, "only page 1's two accesses are recorded");
    }

    #[test]
    fn line_key_generation_isolates_invalidated_pages() {
        let cfg = SimConfig::default();
        let mut f = GpuFrontend::new(&cfg, SliceStream::new(vec![]), vec![]);
        let k1 = f.line_key(PageId(7), 3);
        f.invalidate_page(PageId(7));
        let k2 = f.line_key(PageId(7), 3);
        assert_ne!(k1, k2, "invalidation must retire cached lines");
        assert_eq!(k1.vpn, k2.vpn);
    }

    #[test]
    fn generated_workload_runs_with_matching_gpu_count() {
        let cfg = SimConfig::with_gpus(8);
        let w = WorkloadBuilder::new(App::Gemm).num_gpus(8).scale(0.02).build();
        let policy = Box::new(StaticPolicy::new(Scheme::OnTouch));
        let out = Simulation::try_new(cfg, w, policy).unwrap().try_run().unwrap();
        assert!(out.metrics.total_cycles > 0);
        let finish = out.metrics.aux("per_gpu_finish_cycles").unwrap();
        assert_eq!(finish.len(), 8);
        assert!(finish.iter().all(|&t| t > 0.0));
    }

    #[test]
    fn gpu_count_mismatch_rejected() {
        let w = WorkloadBuilder::new(App::Gemm).num_gpus(2).scale(0.02).build();
        let policy = Box::new(StaticPolicy::new(Scheme::OnTouch));
        let err = match Simulation::try_new(SimConfig::default(), w, policy) {
            Err(e) => e,
            Ok(_) => panic!("mismatched GPU count must be rejected"),
        };
        assert_eq!(err.field, "workload");
        assert!(err.to_string().contains("GPU count must match"));
    }

    #[test]
    fn zero_budget_run_times_out_with_partial_counters() {
        let w = tiny_workload(
            vec![vec![Access::read(PageId(1), 0)], vec![]],
            vec![vec![], vec![]],
            4,
        );
        let policy = Box::new(StaticPolicy::new(Scheme::OnTouch));
        let sim = SimulationBuilder::new(two_gpu_cfg(), w, policy)
            .cancel(CancelToken::new().with_budget(std::time::Duration::ZERO))
            .build()
            .unwrap();
        match sim.try_run() {
            Err(GritError::Cell(CellError::TimedOut {
                budget_seconds,
                accesses,
                ..
            })) => {
                assert_eq!(budget_seconds, 0.0);
                assert_eq!(accesses, 0, "zero budget fires before the first access");
            }
            other => panic!("expected TimedOut, got {other:?}"),
        }
    }

    #[test]
    fn cancelled_token_aborts_run() {
        let w = tiny_workload(
            vec![vec![Access::read(PageId(1), 0)], vec![]],
            vec![vec![], vec![]],
            4,
        );
        let policy = Box::new(StaticPolicy::new(Scheme::OnTouch));
        let token = CancelToken::shared();
        token.cancel();
        let sim = SimulationBuilder::new(two_gpu_cfg(), w, policy).cancel(token).build().unwrap();
        assert!(matches!(
            sim.try_run(),
            Err(GritError::Cell(CellError::Cancelled))
        ));
    }

    /// Serial vs sharded digest over everything a run reports. The `aux`
    /// map is rendered with sorted keys: std `HashMap` iteration order is
    /// not stable across instances, and no consumer depends on it.
    fn digest(out: &RunOutput) -> String {
        let m = &out.metrics;
        let mut keys: Vec<&String> = m.aux.keys().collect();
        keys.sort();
        let aux: String = keys.iter().map(|k| format!("{k}={:?};", m.aux(k).unwrap())).collect();
        format!(
            "cycles={} acc={} local={} remote={} breakdown={:?} faults={:?} \
             mix={:?} nv={} pcie={} ovs={} aux[{aux}] attrs={:?} obs={:?}",
            m.total_cycles,
            m.accesses,
            m.local_accesses,
            m.remote_accesses,
            m.breakdown,
            m.faults,
            m.scheme_mix,
            m.nvlink_bytes,
            m.pcie_bytes,
            m.oversubscription_rate,
            out.page_attrs,
            out.observer,
        )
    }

    fn sharded_run(app: App, gpus: usize, threads: usize) -> RunOutput {
        let cfg = SimConfig::with_gpus(gpus);
        let w = WorkloadBuilder::new(app).num_gpus(gpus).scale(0.02).build();
        let policy = Box::new(StaticPolicy::new(Scheme::OnTouch));
        SimulationBuilder::new(cfg, w, policy)
            .sim_threads(threads)
            .observer(ObserverConfig::tracking(PageId(1)).with_grids(20))
            .build()
            .unwrap()
            .try_run()
            .unwrap()
    }

    #[test]
    fn sharded_run_is_byte_identical_to_serial() {
        for app in [App::Bfs, App::Gemm] {
            let serial = digest(&sharded_run(app, 4, 1));
            for threads in [2, 4, 8] {
                let sharded = digest(&sharded_run(app, 4, threads));
                assert_eq!(serial, sharded, "{app:?} diverges at sim_threads={threads}");
            }
        }
    }

    #[test]
    fn sharded_engine_respects_barriers_and_tiny_streams() {
        // The hand-built barrier workload from `barriers_hold_the_fast_gpu`
        // exercises barrier stops, finish rollbacks, and equal-key ties.
        let long: Vec<Access> =
            (0..200).map(|i| Access::read(PageId(1 + (i % 3)), (i % 64) as u16)).collect();
        let make = || {
            tiny_workload(
                vec![
                    vec![Access::read(PageId(0), 0), Access::read(PageId(0), 1)],
                    long.clone(),
                ],
                vec![vec![1], vec![long.len()]],
                8,
            )
        };
        let policy = || Box::new(StaticPolicy::new(Scheme::Duplication));
        let serial = digest(
            &SimulationBuilder::new(two_gpu_cfg(), make(), policy())
                .build()
                .unwrap()
                .try_run()
                .unwrap(),
        );
        let sharded = digest(
            &SimulationBuilder::new(two_gpu_cfg(), make(), policy())
                .sim_threads(2)
                .build()
                .unwrap()
                .try_run()
                .unwrap(),
        );
        assert_eq!(serial, sharded);
    }

    #[test]
    fn sharded_cancelled_token_aborts_run() {
        let w = tiny_workload(
            vec![vec![Access::read(PageId(1), 0)], vec![]],
            vec![vec![], vec![]],
            4,
        );
        let policy = Box::new(StaticPolicy::new(Scheme::OnTouch));
        let token = CancelToken::shared();
        token.cancel();
        let sim = SimulationBuilder::new(two_gpu_cfg(), w, policy)
            .sim_threads(2)
            .cancel(token)
            .build()
            .unwrap();
        assert!(matches!(
            sim.try_run(),
            Err(GritError::Cell(CellError::Cancelled))
        ));
    }

    #[test]
    fn writes_count_for_attrs_even_when_remote() {
        let w = tiny_workload(
            vec![
                vec![Access::write(PageId(1), 0)],
                vec![Access::write(PageId(1), 1).with_think(50_000)],
            ],
            vec![vec![], vec![]],
            4,
        );
        let out = run(w, two_gpu_cfg());
        assert_eq!(out.page_attrs.shared_read_write_pages, 1);
        assert_eq!(out.page_attrs.read_pages, 0);
    }

    #[test]
    fn kind_of_access_reaches_the_fault_path() {
        // A cold write must register as a write in the central table.
        let w = tiny_workload(
            vec![vec![Access::write(PageId(3), 0)], vec![]],
            vec![vec![], vec![]],
            4,
        );
        let policy = Box::new(StaticPolicy::new(Scheme::OnTouch));
        let out = Simulation::try_new(two_gpu_cfg(), w, policy).unwrap().try_run().unwrap();
        assert_eq!(out.metrics.faults.local_faults, 1);
        assert!(out.attrs.is_written(PageId(3)));
        let _ = AccessKind::Write; // silence unused import in some cfgs
    }
}
