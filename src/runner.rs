//! The full-system simulation: per-GPU frontends (trace stream, MLP window,
//! TLB hierarchy, page-walker pool, L2 data cache) around the UVM driver.
//!
//! The loop is a discrete-event replay: the GPU with the smallest
//! next-ready cycle issues its next access, so cross-GPU interactions —
//! migrations, invalidation broadcasts, write collapses, counter trips —
//! are globally ordered in simulated time.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use grit_mem::{CacheKey, Mapping, SetAssocCache, TlbHierarchy, TranslationLevel, WalkerPool};
use grit_metrics::{
    AttrGrid, IntervalSeries, LatencyClass, PageAttrSummary, PageAttrTracker, RunMetrics, SchemeMix,
};
use grit_sim::{
    Access, AccessStream, CancelState, CancelToken, CellError, ConfigError, Cycle, FxHashMap,
    GpuId, GritError, InjectConfig, MemLoc, MlpWindow, PageId, SimConfig, SliceStream,
    TopologyConfig,
};
use grit_trace::{CellTiming, TraceEvent, Tracer};
use grit_uvm::{
    DriverOutcome, FaultInfo, FaultKind, PlacementPolicy, Prefetcher, UvmDriver, WriteMode,
};
use grit_workloads::MultiGpuWorkload;

/// L2 data-cache key: page + generation + line. Bumping a page's
/// generation on invalidation makes all of its cached lines unreachable in
/// O(1) instead of scanning the cache.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct LineKey {
    vpn: PageId,
    generation: u32,
    line: u16,
}

impl CacheKey for LineKey {
    fn index(&self) -> u64 {
        (self.vpn.vpn() << 6) | self.line as u64 & 0x3f
    }
}

/// One GPU's frontend state.
struct GpuFrontend {
    stream: SliceStream,
    /// Kernel boundaries (positions in the stream); the node synchronizes
    /// at each one.
    barriers: Vec<usize>,
    next_barrier: usize,
    consumed: usize,
    waiting: bool,
    ready: Cycle,
    window: MlpWindow,
    tlb: TlbHierarchy,
    walker: WalkerPool,
    l1: SetAssocCache<LineKey, ()>,
    l2: SetAssocCache<LineKey, ()>,
    line_generation: FxHashMap<PageId, u32>,
    finished: bool,
    last_done: Cycle,
}

impl GpuFrontend {
    fn new(cfg: &SimConfig, stream: SliceStream, barriers: Vec<usize>) -> Self {
        GpuFrontend {
            stream,
            barriers,
            next_barrier: 0,
            consumed: 0,
            waiting: false,
            ready: 0,
            window: MlpWindow::new(cfg.mlp_window),
            tlb: TlbHierarchy::new(cfg.l1_tlb, cfg.l2_tlb),
            walker: WalkerPool::new(cfg.walk),
            l1: SetAssocCache::with_entries(cfg.l1_cache.entries, cfg.l1_cache.ways),
            l2: SetAssocCache::with_entries(cfg.l2_cache.entries, cfg.l2_cache.ways),
            line_generation: FxHashMap::default(),
            finished: false,
            last_done: 0,
        }
    }

    /// Whether the frontend sits exactly on its next kernel boundary.
    fn at_barrier(&self) -> bool {
        self.barriers.get(self.next_barrier) == Some(&self.consumed)
    }

    fn line_key(&self, vpn: PageId, line: u16) -> LineKey {
        LineKey {
            vpn,
            generation: self.line_generation.get(&vpn).copied().unwrap_or(0),
            line,
        }
    }

    fn invalidate_page(&mut self, vpn: PageId) {
        self.tlb.invalidate(vpn);
        *self.line_generation.entry(vpn).or_insert(0) += 1;
    }
}

/// Optional per-figure instrumentation attached to a run.
#[derive(Clone, Debug, Default)]
pub struct ObserverConfig {
    /// Track a single page's per-GPU and read/write activity over
    /// intervals (Figs. 5 and 10).
    pub track_page: Option<PageId>,
    /// Interval length in cycles for the tracked-page series (paper: one
    /// million cycles).
    pub interval_cycles: Cycle,
    /// Record pages × intervals attribute grids (Figs. 6–8), with this
    /// many page bins. Zero disables the grids.
    pub grid_page_bins: usize,
    /// Rows (time intervals) for the attribute grids (paper: 50).
    pub grid_intervals: usize,
    /// Record the per-interval placement-scheme mix of L2-TLB-missing
    /// accesses (the adaptation timeline of the GRIT policy).
    pub scheme_timeline: bool,
}

impl ObserverConfig {
    /// Tracks one page at the paper's one-million-cycle interval.
    pub fn tracking(page: PageId) -> Self {
        ObserverConfig {
            track_page: Some(page),
            interval_cycles: 1_000_000,
            ..Default::default()
        }
    }

    /// Records the Figs. 6–8 attribute grids.
    pub fn with_grids(mut self, page_bins: usize) -> Self {
        self.grid_page_bins = page_bins;
        self.grid_intervals = 50;
        if self.interval_cycles == 0 {
            self.interval_cycles = 1_000_000;
        }
        self
    }
}

/// Recorded time-series instrumentation of a run.
#[derive(Clone, Debug)]
pub struct RunObserver {
    /// Per-interval access counts by GPU for the tracked page (Fig. 5).
    pub page_by_gpu: IntervalSeries,
    /// Per-interval read(0)/write(1) counts for the tracked page (Fig. 10).
    pub page_rw: IntervalSeries,
    /// Private(1)/shared(2) attribute grid over page bins (Figs. 6 & 8).
    pub grid_private_shared: Option<AttrGrid>,
    /// Read(1)/read-write(2) attribute grid over page bins (Fig. 7).
    pub grid_read_rw: Option<AttrGrid>,
    /// Cycles per grid row (derived from the configured interval).
    pub grid_interval_cycles: Cycle,
    /// Per-interval scheme mix at L2-TLB misses (buckets: on-touch,
    /// access-counter, duplication), when requested.
    pub scheme_timeline: Option<IntervalSeries>,
}

/// Everything a finished run yields.
#[derive(Clone, Debug)]
pub struct RunOutput {
    /// Aggregate metrics (Fig. 1/3/17/18/19 inputs).
    pub metrics: RunMetrics,
    /// Whole-run page-attribute summary (Figs. 4 & 9).
    pub page_attrs: PageAttrSummary,
    /// The full per-page attribute tracker (page selection for Figs. 5/10).
    pub attrs: PageAttrTracker,
    /// Time-series instrumentation, when configured.
    pub observer: Option<RunObserver>,
    /// Wall-clock profile of the cell; filled in by the batch executor
    /// (the simulation itself has no wall-clock view of workload builds).
    pub timing: CellTiming,
    /// Events captured by an attached tracer, drained after the run;
    /// `None` when tracing was disabled.
    pub events: Option<Vec<TraceEvent>>,
}

/// The assembled multi-GPU system.
pub struct Simulation {
    cfg: SimConfig,
    gpus: Vec<GpuFrontend>,
    /// Min-heap of `(ready, gpu)` over runnable GPUs. Entries go stale when
    /// a stall raises a GPU's ready cycle; [`Simulation::pop_next_gpu`]
    /// refreshes them lazily, replacing the per-access O(num_gpus) scan.
    ready_heap: BinaryHeap<Reverse<(Cycle, usize)>>,
    driver: UvmDriver,
    attrs: PageAttrTracker,
    scheme_mix: SchemeMix,
    accesses: u64,
    local_accesses: u64,
    remote_accesses: u64,
    footprint_pages: u64,
    observer_cfg: ObserverConfig,
    obs_page_by_gpu: Option<IntervalSeries>,
    obs_page_rw: Option<IntervalSeries>,
    obs_grid_ps: Option<AttrGrid>,
    obs_grid_rw: Option<AttrGrid>,
    obs_scheme_timeline: Option<IntervalSeries>,
    cancel: CancelToken,
}

/// Fluent constructor for [`Simulation`], absorbing the old
/// `set_prefetcher` / `set_tracer` / `set_observer` mutators.
///
/// ```no_run
/// use grit::prelude::*;
/// use grit_uvm::StaticPolicy;
/// use grit_workloads::WorkloadBuilder;
///
/// let cfg = SimConfig::default();
/// let w = WorkloadBuilder::new(App::Bfs).num_gpus(cfg.num_gpus).scale(0.02).build();
/// let sim = SimulationBuilder::new(cfg, w, Box::new(StaticPolicy::new(grit_sim::Scheme::OnTouch)))
///     .observer(ObserverConfig::default().with_grids(50))
///     .build()
///     .expect("valid configuration");
/// let out = sim.run();
/// ```
pub struct SimulationBuilder {
    cfg: SimConfig,
    workload: MultiGpuWorkload,
    policy: Box<dyn PlacementPolicy>,
    observer: Option<ObserverConfig>,
    prefetcher: Option<Box<dyn Prefetcher>>,
    tracer: Option<Tracer>,
    cancel: CancelToken,
}

impl SimulationBuilder {
    /// Starts a builder from the three mandatory ingredients.
    pub fn new(
        cfg: SimConfig,
        workload: MultiGpuWorkload,
        policy: Box<dyn PlacementPolicy>,
    ) -> Self {
        SimulationBuilder {
            cfg,
            workload,
            policy,
            observer: None,
            prefetcher: None,
            tracer: None,
            cancel: CancelToken::new(),
        }
    }

    /// Wires the interconnect as `topo` describes (default: all-to-all).
    pub fn topology(mut self, topo: TopologyConfig) -> Self {
        self.cfg.topology = topo;
        self
    }

    /// Schedules deterministic hardware fault injection (default: none).
    pub fn inject(mut self, inject: InjectConfig) -> Self {
        self.cfg.inject = inject;
        self
    }

    /// Opts release builds into the driver's automatic invariant sweeps
    /// at epoch boundaries and after every injected fault (debug builds
    /// always run them).
    pub fn check_invariants(mut self, on: bool) -> Self {
        self.cfg.check_invariants = on;
        self
    }

    /// Enables time-series instrumentation.
    pub fn observer(mut self, cfg: ObserverConfig) -> Self {
        self.observer = Some(cfg);
        self
    }

    /// Attaches a prefetcher to the UVM driver (Fig. 30).
    pub fn prefetcher(mut self, p: Box<dyn Prefetcher>) -> Self {
        self.prefetcher = Some(p);
        self
    }

    /// Attaches an event sink to the UVM driver (and its fabric); the
    /// caller keeps a clone to drain events after the run.
    pub fn tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// Threads a cancellation token (abort flag and/or wall-clock budget)
    /// into the run loop; see [`Simulation::try_run`].
    pub fn cancel(mut self, token: CancelToken) -> Self {
        self.cancel = token;
        self
    }

    /// Validates and assembles the system.
    ///
    /// # Errors
    ///
    /// Returns the first violated configuration constraint.
    pub fn build(self) -> Result<Simulation, ConfigError> {
        let mut sim = Simulation::try_new(self.cfg, self.workload, self.policy)?;
        if let Some(obs) = self.observer {
            sim.set_observer(obs);
        }
        if let Some(p) = self.prefetcher {
            sim.driver.set_prefetcher(p);
        }
        if let Some(t) = self.tracer {
            sim.driver.set_tracer(t);
        }
        sim.cancel = self.cancel;
        Ok(sim)
    }
}

impl Simulation {
    /// Wires a workload and a policy into a runnable system.
    ///
    /// # Panics
    ///
    /// Panics if the workload GPU count differs from the configuration or
    /// the configuration is invalid.
    #[deprecated(note = "use Simulation::try_new or SimulationBuilder")]
    pub fn new(
        cfg: SimConfig,
        workload: MultiGpuWorkload,
        policy: Box<dyn PlacementPolicy>,
    ) -> Self {
        Simulation::try_new(cfg, workload, policy).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Wires a workload and a policy into a runnable system, reporting
    /// invalid configurations (including a workload whose GPU count differs
    /// from the configuration's) as values.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn try_new(
        cfg: SimConfig,
        workload: MultiGpuWorkload,
        policy: Box<dyn PlacementPolicy>,
    ) -> Result<Self, ConfigError> {
        cfg.validate()?;
        if workload.streams.len() != cfg.num_gpus {
            return Err(ConfigError::new(
                "workload",
                format!(
                    "workload GPU count must match the configuration \
                     (workload has {}, configuration expects {})",
                    workload.streams.len(),
                    cfg.num_gpus
                ),
            ));
        }
        let driver = UvmDriver::try_new(cfg.clone(), workload.footprint_pages, policy)?;
        let gpus: Vec<GpuFrontend> = workload
            .streams
            .into_iter()
            .zip(workload.barriers)
            .map(|(s, b)| GpuFrontend::new(&cfg, s, b))
            .collect();
        let ready_heap = (0..gpus.len()).map(|i| Reverse((0, i))).collect();
        Ok(Simulation {
            gpus,
            ready_heap,
            driver,
            attrs: PageAttrTracker::new(),
            scheme_mix: SchemeMix::default(),
            accesses: 0,
            local_accesses: 0,
            remote_accesses: 0,
            footprint_pages: workload.footprint_pages,
            observer_cfg: ObserverConfig::default(),
            obs_page_by_gpu: None,
            obs_page_rw: None,
            obs_grid_ps: None,
            obs_grid_rw: None,
            obs_scheme_timeline: None,
            cancel: CancelToken::new(),
            cfg,
        })
    }

    /// Enables time-series instrumentation (builder-internal; external
    /// callers configure this through [`SimulationBuilder::observer`]).
    fn set_observer(&mut self, cfg: ObserverConfig) {
        if cfg.track_page.is_some() {
            let interval = cfg.interval_cycles.max(1);
            self.obs_page_by_gpu = Some(IntervalSeries::new(interval, self.cfg.num_gpus));
            self.obs_page_rw = Some(IntervalSeries::new(interval, 2));
        }
        if cfg.grid_page_bins > 0 {
            self.obs_grid_ps = Some(AttrGrid::new(cfg.grid_intervals, cfg.grid_page_bins));
            self.obs_grid_rw = Some(AttrGrid::new(cfg.grid_intervals, cfg.grid_page_bins));
        }
        if cfg.scheme_timeline {
            self.obs_scheme_timeline = Some(IntervalSeries::new(cfg.interval_cycles.max(1), 3));
        }
        self.observer_cfg = cfg;
    }

    /// The active policy's name.
    pub fn policy_name(&self) -> String {
        self.driver.policy_name()
    }

    /// Runs the workload to completion and collects all metrics.
    ///
    /// # Panics
    ///
    /// Panics on any [`Simulation::try_run`] error (invariant violation,
    /// timeout, cancellation).
    pub fn run(self) -> RunOutput {
        self.try_run().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Runs the workload to completion and collects all metrics,
    /// reporting failures as values.
    ///
    /// The cancellation token installed via [`SimulationBuilder::cancel`]
    /// is polled every 4096 processed accesses (and before the first), so
    /// a raised abort flag or an expired wall-clock budget stops the run
    /// within a bounded amount of simulated work — including a zero
    /// budget, which fires before any access is replayed.
    ///
    /// # Errors
    ///
    /// [`CellError::TimedOut`] (with partial progress counters) when the
    /// budget expires, [`CellError::Cancelled`] when the shared abort flag
    /// is raised, and [`CellError::Invariant`] when post-run VM-state
    /// checks fail.
    pub fn try_run(mut self) -> Result<RunOutput, GritError> {
        let cancel_active = self.cancel.is_active();
        loop {
            if cancel_active && self.accesses & 0xFFF == 0 {
                match self.cancel.poll() {
                    CancelState::Running => {}
                    CancelState::Cancelled => return Err(CellError::Cancelled.into()),
                    CancelState::TimedOut => {
                        let cycles = self.gpus.iter().map(|g| g.last_done).max().unwrap_or(0);
                        return Err(CellError::TimedOut {
                            budget_seconds: self.cancel.budget_seconds(),
                            cycles,
                            accesses: self.accesses,
                        }
                        .into());
                    }
                }
            }
            let Some(g) = self.pop_next_gpu() else {
                if self.gpus.iter().all(|g| g.finished) {
                    break;
                }
                // Every unfinished GPU sits at the barrier: synchronize
                // the node at the slowest GPU's drain point.
                self.release_barrier();
                continue;
            };
            if let Some(out) = self.driver.maybe_run_epoch(self.gpus[g].ready) {
                self.apply_outcome(g, &out);
            }
            if self.gpus[g].at_barrier() {
                // Not re-pushed: the GPU re-enters the heap when the
                // barrier releases.
                self.gpus[g].waiting = true;
                continue;
            }
            match self.gpus[g].stream.next_access() {
                Some(acc) => {
                    self.gpus[g].consumed += 1;
                    self.process(g, acc)?;
                    self.ready_heap.push(Reverse((self.gpus[g].ready, g)));
                }
                None => {
                    let drained = self.gpus[g].window.drain_time();
                    self.gpus[g].last_done = self.gpus[g].last_done.max(drained);
                    self.gpus[g].finished = true;
                }
            }
        }
        self.finish()
    }

    /// Removes and returns the runnable GPU with the smallest ready cycle
    /// (ties broken toward the lowest index, matching a linear scan).
    ///
    /// Ready cycles only ever advance, so a heap entry can be *below* its
    /// GPU's current ready (a stall landed after the push) but never above;
    /// stale entries are refreshed in place. Every runnable GPU has exactly
    /// one entry; the caller re-pushes after advancing the GPU it popped.
    fn pop_next_gpu(&mut self) -> Option<usize> {
        while let Some(Reverse((ready, g))) = self.ready_heap.pop() {
            let f = &self.gpus[g];
            if f.finished || f.waiting {
                continue;
            }
            if f.ready != ready {
                self.ready_heap.push(Reverse((f.ready, g)));
                continue;
            }
            return Some(g);
        }
        None
    }

    /// Releases all GPUs held at a kernel boundary once everyone arrived:
    /// the next kernel launches after the slowest GPU drained its window.
    fn release_barrier(&mut self) {
        let mut sync = 0;
        for g in &mut self.gpus {
            let t = if g.finished {
                g.last_done
            } else {
                g.ready.max(g.window.drain_time())
            };
            sync = sync.max(t);
        }
        for (i, g) in self.gpus.iter_mut().enumerate() {
            if g.waiting {
                g.waiting = false;
                g.next_barrier += 1;
                g.ready = sync;
                g.last_done = g.last_done.max(sync);
                self.ready_heap.push(Reverse((sync, i)));
            }
        }
    }

    fn process(&mut self, g: usize, acc: Access) -> Result<(), GritError> {
        let gpu = GpuId::new(g as u8);
        let vpn = acc.vpn;
        let issue_base = self.gpus[g].ready + acc.think as Cycle;
        let t0 = self.gpus[g].window.issue_at(issue_base);
        self.gpus[g].ready = t0;

        self.accesses += 1;
        self.attrs.record(gpu, vpn, acc.kind);
        self.observe(t0, g, &acc);
        if self.driver.wants_access_feed() {
            self.driver.feed_access(t0, gpu, vpn, acc.kind);
        }

        // Address translation.
        let (level, tlb_lat) = self.gpus[g].tlb.translate(vpn);
        let mut t = t0 + tlb_lat;
        let mut mapping = self.driver.translate(gpu, vpn);
        if level == TranslationLevel::Walk || mapping.is_none() {
            if level == TranslationLevel::Walk {
                let scheme = self.driver.scheme_of(vpn);
                self.scheme_mix.record(scheme);
                if let Some(series) = &mut self.obs_scheme_timeline {
                    let bucket = match scheme {
                        grit_sim::Scheme::OnTouch => 0,
                        grit_sim::Scheme::AccessCounter => 1,
                        grit_sim::Scheme::Duplication => 2,
                    };
                    series.record(t0, bucket);
                }
            }
            let walk = self.gpus[g].walker.walk(t, vpn);
            self.driver.charge(LatencyClass::Local, walk.done_at - t);
            t = walk.done_at;
            if mapping.is_none() {
                let out = self.driver.handle_fault(FaultInfo {
                    now: t,
                    gpu,
                    vpn,
                    kind: acc.kind,
                    fault: FaultKind::Local,
                });
                t = t.max(out.done_at);
                self.apply_outcome(g, &out);
                // The outcome carries the mapping the mechanism installed,
                // saving a second page-table lookup on the walk path.
                mapping = out.mapping;
            }
            self.gpus[g].tlb.fill(vpn);
        }
        let mut mapping = mapping.ok_or_else(|| {
            GritError::Cell(CellError::Invariant(
                "fault handling must establish a mapping".into(),
            ))
        })?;

        // Writes to read-only replicas: protection fault (collapse) or GPS
        // store broadcast.
        if acc.is_write() && mapping == Mapping::Replica {
            if self.driver.write_mode() == WriteMode::Broadcast {
                let done = self.driver.broadcast_store(t, gpu, vpn);
                self.local_accesses += 1;
                self.complete(g, done);
                return Ok(());
            }
            let out = self.driver.handle_fault(FaultInfo {
                now: t,
                gpu,
                vpn,
                kind: acc.kind,
                fault: FaultKind::Protection,
            });
            t = t.max(out.done_at);
            self.apply_outcome(g, &out);
            self.gpus[g].tlb.fill(vpn);
            mapping = out.mapping.ok_or_else(|| {
                GritError::Cell(CellError::Invariant(
                    "collapse must leave the writer mapped".into(),
                ))
            })?;
        }

        // Data access through the cache hierarchy.
        let key = self.gpus[g].line_key(vpn, acc.line);
        if self.gpus[g].l1.get(&key).is_some() {
            t += self.cfg.lat.l1_data_hit;
        } else if self.gpus[g].l2.get(&key).is_some() {
            t += self.cfg.lat.l2_data_hit;
            self.gpus[g].l1.insert(key, ());
        } else {
            match mapping {
                Mapping::Local | Mapping::Replica => {
                    t = self.driver.local_line_access(t, gpu, vpn);
                    if acc.is_write() {
                        self.driver.mark_page_dirty(gpu, vpn);
                    }
                    self.local_accesses += 1;
                }
                Mapping::Remote(_) | Mapping::RemoteHost => {
                    let owner = match mapping {
                        Mapping::Remote(o) => MemLoc::Gpu(o),
                        _ => MemLoc::Host,
                    };
                    t = self.driver.remote_line_access(t, gpu, owner);
                    self.remote_accesses += 1;
                    if let Some(out) = self.driver.record_remote_access(t, gpu, vpn) {
                        // The counter-triggered migration proceeds in the
                        // background; this access already completed
                        // remotely, but the system-wide side effects apply.
                        self.apply_outcome(g, &out);
                    }
                }
            }
            self.gpus[g].l2.insert(key, ());
            self.gpus[g].l1.insert(key, ());
        }
        self.complete(g, t);
        Ok(())
    }

    fn complete(&mut self, g: usize, done: Cycle) {
        self.gpus[g].window.complete(done);
        self.gpus[g].last_done = self.gpus[g].last_done.max(done);
    }

    fn apply_outcome(&mut self, _faulting: usize, out: &DriverOutcome) {
        for &(gpu, until) in &out.stalls {
            let f = &mut self.gpus[gpu.index()];
            f.ready = f.ready.max(until);
        }
        for &(gpu, vpn) in &out.invalidated {
            self.gpus[gpu.index()].invalidate_page(vpn);
        }
    }

    fn observe(&mut self, now: Cycle, g: usize, acc: &Access) {
        if self.observer_cfg.track_page == Some(acc.vpn) {
            if let Some(s) = &mut self.obs_page_by_gpu {
                s.record(now, g);
            }
            if let Some(s) = &mut self.obs_page_rw {
                s.record(now, usize::from(acc.is_write()));
            }
        }
        if let Some(grid) = &mut self.obs_grid_ps {
            let interval = ((now / self.observer_cfg.interval_cycles.max(1)) as usize).min(49);
            let bin = (acc.vpn.vpn() as usize * self.observer_cfg.grid_page_bins
                / self.footprint_pages.max(1) as usize)
                .min(self.observer_cfg.grid_page_bins - 1);
            let ps_code = if self.attrs.is_shared(acc.vpn) { 2 } else { 1 };
            grid.mark(interval, bin, ps_code);
            if let Some(rw) = &mut self.obs_grid_rw {
                let rw_code = if self.attrs.is_written(acc.vpn) { 2 } else { 1 };
                rw.mark(interval, bin, rw_code);
            }
        }
    }

    fn finish(self) -> Result<RunOutput, GritError> {
        // The Ideal upper bound deliberately fakes local mappings on every
        // GPU; its state is exempt from the consistency invariants.
        if !self.driver.is_ideal() {
            if let Err(e) = self.driver.check_invariants() {
                return Err(GritError::Cell(CellError::Invariant(format!(
                    "VM state invariant violated after run: {e}"
                ))));
            }
        }
        let total_cycles = self.gpus.iter().map(|g| g.last_done).max().unwrap_or(0);
        let fabric = self.driver.fabric_stats();
        let per_gpu_finish: Vec<f64> = self.gpus.iter().map(|g| g.last_done as f64).collect();
        let per_gpu_accesses: Vec<f64> = self.gpus.iter().map(|g| g.consumed as f64).collect();
        let mut metrics = RunMetrics {
            total_cycles,
            accesses: self.accesses,
            local_accesses: self.local_accesses,
            remote_accesses: self.remote_accesses,
            breakdown: self.driver.breakdown(),
            faults: self.driver.fault_counters(),
            scheme_mix: self.scheme_mix,
            // GPU-side wire bytes across every class, so the headline
            // column stays comparable between topologies (identical to
            // plain NVLink bytes on the default all-to-all).
            nvlink_bytes: fabric.wire_bytes(),
            pcie_bytes: fabric.pcie_bytes,
            oversubscription_rate: self.driver.oversubscription_rate(),
            aux: HashMap::new(),
        };
        metrics.set_aux("per_gpu_finish_cycles", per_gpu_finish);
        metrics.set_aux("per_gpu_accesses", per_gpu_accesses);
        // Per-class fabric traffic (class order: nvlink, switch,
        // inter-node, pcie) — the source of the report's `fabric` object.
        metrics.set_aux(
            "fabric_class_bytes",
            vec![
                fabric.nvlink_bytes as f64,
                fabric.switch_bytes as f64,
                fabric.inter_node_bytes as f64,
                fabric.pcie_bytes as f64,
            ],
        );
        metrics.set_aux(
            "fabric_queue_cycles",
            vec![
                fabric.nvlink_queue_cycles as f64,
                fabric.switch_queue_cycles as f64,
                fabric.inter_node_queue_cycles as f64,
                fabric.pcie_queue_cycles as f64,
            ],
        );
        metrics.set_aux(
            "per_gpu_faults",
            self.driver.faults_per_gpu().iter().map(|&f| f as f64).collect(),
        );
        // Fault-injection outcomes (the report's `resilience` object);
        // only injected runs carry the series, so uninjected reports are
        // byte-identical to pre-injection ones.
        if self.driver.injection_active() {
            metrics.set_aux(
                "resilience_counters",
                self.driver.resilience_counters().as_aux(),
            );
        }
        let h = self.driver.fault_latency();
        metrics.set_aux(
            "fault_latency_summary",
            vec![
                h.samples() as f64,
                h.mean(),
                h.percentile(0.5) as f64,
                h.percentile(0.99) as f64,
                h.max() as f64,
            ],
        );
        let (l1_rates, l2_rates): (Vec<f64>, Vec<f64>) = self
            .gpus
            .iter()
            .map(|g| {
                let (l1, l2) = g.tlb.level_stats();
                (l1.hit_rate(), l2.hit_rate())
            })
            .unzip();
        metrics.set_aux("tlb_l1_hit_rate", l1_rates);
        metrics.set_aux("tlb_l2_hit_rate", l2_rates);
        let any_observer = self.obs_page_by_gpu.is_some()
            || self.obs_grid_ps.is_some()
            || self.obs_scheme_timeline.is_some();
        let observer = any_observer.then(|| RunObserver {
            page_by_gpu: self.obs_page_by_gpu.unwrap_or_else(|| IntervalSeries::new(1, 1)),
            page_rw: self.obs_page_rw.unwrap_or_else(|| IntervalSeries::new(1, 2)),
            grid_private_shared: self.obs_grid_ps,
            grid_read_rw: self.obs_grid_rw,
            grid_interval_cycles: self.observer_cfg.interval_cycles,
            scheme_timeline: self.obs_scheme_timeline,
        });
        Ok(RunOutput {
            metrics,
            page_attrs: self.attrs.summary(),
            attrs: self.attrs,
            observer,
            timing: CellTiming::default(),
            events: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grit_sim::{AccessKind, Scheme};
    use grit_uvm::StaticPolicy;
    use grit_workloads::{App, MultiGpuWorkload, WorkloadBuilder};

    /// Hand-built two-GPU workload: explicit accesses and barriers.
    fn tiny_workload(
        per_gpu: Vec<Vec<Access>>,
        barriers: Vec<Vec<usize>>,
        pages: u64,
    ) -> MultiGpuWorkload {
        MultiGpuWorkload {
            app: App::Bfs,
            footprint_pages: pages,
            streams: per_gpu.into_iter().map(SliceStream::new).collect(),
            barriers,
        }
    }

    fn two_gpu_cfg() -> SimConfig {
        SimConfig {
            num_gpus: 2,
            ..SimConfig::default()
        }
    }

    fn run(w: MultiGpuWorkload, cfg: SimConfig) -> RunOutput {
        let policy = Box::new(StaticPolicy::new(Scheme::OnTouch));
        Simulation::try_new(cfg, w, policy).unwrap().run()
    }

    #[test]
    fn empty_streams_finish_at_zero_cost() {
        let w = tiny_workload(vec![vec![], vec![]], vec![vec![], vec![]], 4);
        let out = run(w, two_gpu_cfg());
        assert_eq!(out.metrics.accesses, 0);
        assert_eq!(out.metrics.total_cycles, 0);
    }

    #[test]
    fn single_access_faults_once_and_completes() {
        let w = tiny_workload(
            vec![vec![Access::read(PageId(1), 0)], vec![]],
            vec![vec![], vec![]],
            4,
        );
        let out = run(w, two_gpu_cfg());
        assert_eq!(out.metrics.accesses, 1);
        assert_eq!(out.metrics.faults.local_faults, 1);
        assert!(out.metrics.total_cycles > 0);
    }

    #[test]
    fn repeated_access_hits_tlb_and_cache() {
        let accesses = vec![Access::read(PageId(1), 0); 8];
        let w = tiny_workload(vec![accesses, vec![]], vec![vec![], vec![]], 4);
        let out = run(w, two_gpu_cfg());
        // One fault total: the other seven accesses hit the warm path.
        assert_eq!(out.metrics.faults.local_faults, 1);
        assert_eq!(
            out.metrics.local_accesses, 1,
            "later touches hit the L1/L2 cache"
        );
    }

    #[test]
    fn barriers_hold_the_fast_gpu() {
        // GPU0: one access, then a barrier, then another access.
        // GPU1: a long stream before its barrier.
        let long: Vec<Access> =
            (0..200).map(|i| Access::read(PageId(1 + (i % 3)), (i % 64) as u16)).collect();
        let w = tiny_workload(
            vec![
                vec![Access::read(PageId(0), 0), Access::read(PageId(0), 1)],
                long.clone(),
            ],
            vec![vec![1], vec![long.len()]],
            8,
        );
        let out = run(w, two_gpu_cfg());
        // GPU0's second access can only issue after GPU1 finished its
        // pre-barrier work, so the total run is bounded below by GPU1's
        // stream length in think cycles.
        assert!(out.metrics.total_cycles > 200 * 4);
    }

    #[test]
    fn empty_phase_barriers_pass_through() {
        // Both GPUs carry two consecutive barriers at the same position
        // (an empty phase, e.g. a kernel run by neither GPU).
        let w = tiny_workload(
            vec![
                vec![Access::read(PageId(0), 0), Access::read(PageId(1), 0)],
                vec![Access::read(PageId(2), 0), Access::read(PageId(3), 0)],
            ],
            vec![vec![1, 1], vec![1, 1]],
            8,
        );
        let out = run(w, two_gpu_cfg());
        assert_eq!(out.metrics.accesses, 4);
    }

    #[test]
    fn protection_fault_on_replica_write() {
        let mut cfg = two_gpu_cfg();
        cfg.num_gpus = 2;
        let w = tiny_workload(
            vec![
                // GPU0 reads (becomes owner via first-touch migration
                // under duplication policy), then GPU1 reads (replica)
                // and writes (protection fault -> collapse).
                vec![Access::read(PageId(1), 0)],
                vec![
                    Access::read(PageId(1), 1).with_think(50_000),
                    Access::write(PageId(1), 2).with_think(50_000),
                ],
            ],
            vec![vec![], vec![]],
            4,
        );
        let policy = Box::new(StaticPolicy::new(Scheme::Duplication));
        let out = Simulation::try_new(cfg, w, policy).unwrap().run();
        assert_eq!(out.metrics.faults.protection_faults, 1);
        assert_eq!(out.metrics.faults.collapses, 1);
    }

    #[test]
    fn observer_tracks_only_the_requested_page() {
        let w = tiny_workload(
            vec![
                vec![Access::read(PageId(1), 0), Access::read(PageId(2), 0)],
                vec![Access::read(PageId(1), 1)],
            ],
            vec![vec![], vec![]],
            4,
        );
        let policy = Box::new(StaticPolicy::new(Scheme::OnTouch));
        let sim = SimulationBuilder::new(two_gpu_cfg(), w, policy)
            .observer(ObserverConfig::tracking(PageId(1)))
            .build()
            .unwrap();
        let out = sim.run();
        let obs = out.observer.expect("observer configured");
        let total: u64 = obs.page_by_gpu.iter().map(|(_, r)| r.iter().sum::<u64>()).sum();
        assert_eq!(total, 2, "only page 1's two accesses are recorded");
    }

    #[test]
    fn line_key_generation_isolates_invalidated_pages() {
        let cfg = SimConfig::default();
        let mut f = GpuFrontend::new(&cfg, SliceStream::new(vec![]), vec![]);
        let k1 = f.line_key(PageId(7), 3);
        f.invalidate_page(PageId(7));
        let k2 = f.line_key(PageId(7), 3);
        assert_ne!(k1, k2, "invalidation must retire cached lines");
        assert_eq!(k1.vpn, k2.vpn);
    }

    #[test]
    fn generated_workload_runs_with_matching_gpu_count() {
        let cfg = SimConfig::with_gpus(8);
        let w = WorkloadBuilder::new(App::Gemm).num_gpus(8).scale(0.02).build();
        let policy = Box::new(StaticPolicy::new(Scheme::OnTouch));
        let out = Simulation::try_new(cfg, w, policy).unwrap().run();
        assert!(out.metrics.total_cycles > 0);
        let finish = out.metrics.aux("per_gpu_finish_cycles").unwrap();
        assert_eq!(finish.len(), 8);
        assert!(finish.iter().all(|&t| t > 0.0));
    }

    #[test]
    fn gpu_count_mismatch_rejected() {
        let w = WorkloadBuilder::new(App::Gemm).num_gpus(2).scale(0.02).build();
        let policy = Box::new(StaticPolicy::new(Scheme::OnTouch));
        let err = match Simulation::try_new(SimConfig::default(), w, policy) {
            Err(e) => e,
            Ok(_) => panic!("mismatched GPU count must be rejected"),
        };
        assert_eq!(err.field, "workload");
        assert!(err.to_string().contains("GPU count must match"));
    }

    #[test]
    #[allow(deprecated)]
    #[should_panic(expected = "GPU count must match")]
    fn deprecated_new_still_panics_on_mismatch() {
        let w = WorkloadBuilder::new(App::Gemm).num_gpus(2).scale(0.02).build();
        let policy = Box::new(StaticPolicy::new(Scheme::OnTouch));
        let _ = Simulation::new(SimConfig::default(), w, policy);
    }

    #[test]
    fn zero_budget_run_times_out_with_partial_counters() {
        let w = tiny_workload(
            vec![vec![Access::read(PageId(1), 0)], vec![]],
            vec![vec![], vec![]],
            4,
        );
        let policy = Box::new(StaticPolicy::new(Scheme::OnTouch));
        let sim = SimulationBuilder::new(two_gpu_cfg(), w, policy)
            .cancel(CancelToken::new().with_budget(std::time::Duration::ZERO))
            .build()
            .unwrap();
        match sim.try_run() {
            Err(GritError::Cell(CellError::TimedOut {
                budget_seconds,
                accesses,
                ..
            })) => {
                assert_eq!(budget_seconds, 0.0);
                assert_eq!(accesses, 0, "zero budget fires before the first access");
            }
            other => panic!("expected TimedOut, got {other:?}"),
        }
    }

    #[test]
    fn cancelled_token_aborts_run() {
        let w = tiny_workload(
            vec![vec![Access::read(PageId(1), 0)], vec![]],
            vec![vec![], vec![]],
            4,
        );
        let policy = Box::new(StaticPolicy::new(Scheme::OnTouch));
        let token = CancelToken::shared();
        token.cancel();
        let sim = SimulationBuilder::new(two_gpu_cfg(), w, policy).cancel(token).build().unwrap();
        assert!(matches!(
            sim.try_run(),
            Err(GritError::Cell(CellError::Cancelled))
        ));
    }

    #[test]
    fn writes_count_for_attrs_even_when_remote() {
        let w = tiny_workload(
            vec![
                vec![Access::write(PageId(1), 0)],
                vec![Access::write(PageId(1), 1).with_think(50_000)],
            ],
            vec![vec![], vec![]],
            4,
        );
        let out = run(w, two_gpu_cfg());
        assert_eq!(out.page_attrs.shared_read_write_pages, 1);
        assert_eq!(out.page_attrs.read_pages, 0);
    }

    #[test]
    fn kind_of_access_reaches_the_fault_path() {
        // A cold write must register as a write in the central table.
        let w = tiny_workload(
            vec![vec![Access::write(PageId(3), 0)], vec![]],
            vec![vec![], vec![]],
            4,
        );
        let policy = Box::new(StaticPolicy::new(Scheme::OnTouch));
        let out = Simulation::try_new(two_gpu_cfg(), w, policy).unwrap().run();
        assert_eq!(out.metrics.faults.local_faults, 1);
        assert!(out.attrs.is_written(PageId(3)));
        let _ = AccessKind::Write; // silence unused import in some cfgs
    }
}
