//! `repro` — regenerates every table and figure of the GRIT paper.
//!
//! ```text
//! repro all                # every figure at the default scale
//! repro fig17              # one figure
//! repro fig17 --quick      # CI-sized inputs
//! repro fig17 --full       # Table II full footprints (slow)
//! repro all --jobs 8       # cap the worker pool (default: all cores)
//! repro list               # figure index
//! ```
//!
//! Experiment cells fan out across a worker pool sized by `--jobs`, the
//! `GRIT_JOBS` environment variable, or the machine's core count; tables
//! are byte-identical to a serial run regardless of the worker count.
//!
//! Resilience flags:
//!
//! ```text
//! repro all --cell-timeout 120     # budget each cell; expired cells become err! rows
//! repro all --resume               # persist finished cells under .grit-resume/
//! repro all --resume-dir DIR       # ... under an explicit store directory
//! repro all --fail-fast            # abort the campaign on the first failed cell
//! repro all --keep-going           # (default) failed cells become rows, exit 0
//! ```
//!
//! A failed cell — panic, timeout, invariant violation — renders as an
//! `err!` row in the affected tables and as a structured error record in
//! `run_report.json`; the process exits nonzero only under `--fail-fast`.
//! Interrupting a `--resume` run and re-invoking it completes the
//! remaining cells and prints byte-identical tables at any `--jobs`.
//!
//! Observability flags:
//!
//! ```text
//! repro fig18 --trace t.jsonl          # structured event stream (JSONL)
//! repro fig18 --trace t.jsonl --trace-filter fault,migration --trace-sample 16
//! repro all --metrics-out out/         # out/run_report.json + BENCH_run.json
//! repro all --emit-bench-json          # BENCH_run.json in the cwd
//! ```
//!
//! Profiling flags and tooling:
//!
//! ```text
//! repro fig17 --profile                  # phase timers + speculation telemetry
//! repro fig17 --profile-out prof.json    # Chrome trace-event / Perfetto JSON
//! repro all --progress                   # 1 Hz heartbeat (cells done, ETA, phase)
//! repro profile out/run_report.json      # render a report's profile section
//! repro bench-diff BENCH_baseline.json BENCH_run.json --threshold 25
//! ```
//!
//! Profiling is zero-overhead when disabled (one relaxed atomic load per
//! span site). `--metrics-out` refuses to overwrite an existing
//! `run_report.json` unless `--force` is given. `bench-diff` compares two
//! `BENCH_*.json` documents per target and exits nonzero when any target
//! slowed down by more than `--threshold` percent.

use std::collections::{HashMap, HashSet};
use std::env;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use grit::experiments::{self as ex, report_sink, ExpConfig};
use grit_metrics::Table;
use grit_trace::{
    writer as trace_writer, BenchSummary, CategoryMask, HistReport, Json, PhaseEntry, RunReport,
    TraceConfig,
};

const FIGURES: &[(&str, &str)] = &[
    ("fig1", "Uniform schemes + Ideal vs on-touch (motivation)"),
    ("fig3", "Page-handling latency breakdown per scheme"),
    ("fig4", "Private/shared pages and accesses"),
    ("fig5", "Shared-page access mix over time (C2D, ST)"),
    ("fig6", "Attribute grids: GEMM & ST (Figs 6-8)"),
    ("fig9", "Accesses to read vs read-write pages"),
    ("fig10", "Read/write mix over time for one RW page (ST)"),
    ("fig17", "HEADLINE: GRIT vs uniform schemes"),
    ("fig18", "GPU page faults per policy"),
    ("fig19", "Scheme mix under GRIT"),
    ("fig20", "Component ablation"),
    ("fig21", "Fault-threshold sensitivity"),
    ("fig22", "2/8/16-GPU scaling (Figs 22-24)"),
    ("fig25", "2MB pages with enlarged inputs"),
    ("fig26", "Griffin comparison"),
    ("fig27", "GPS comparison"),
    ("fig28", "Griffin-DPC + Trans-FW comparison"),
    ("fig29", "First-touch comparison"),
    ("fig30", "Prefetching combination"),
    ("fig31", "DNN model parallelism"),
    ("oracle", "EXT: GRIT vs profile-guided static oracle"),
    ("pacache", "EXT: PA-Cache capacity sweep"),
    (
        "sweeps",
        "EXT: capacity / remote-gap / MLP sensitivity sweeps",
    ),
    (
        "adapt",
        "EXT: GRIT adaptation timeline (scheme mix over time)",
    ),
    ("extra", "EXT: GRIT on SpMV and PageRank"),
    (
        "ext-topology",
        "EXT: topology x GPU-count sweep (GRIT vs on-touch, fabric queueing)",
    ),
    (
        "ext-resilience",
        "EXT: injected-fault scenarios x GPU count (slowdown vs healthy run)",
    ),
    (
        "ext-pagesize",
        "EXT: page-size mode x policy sweep (2MB coalescing, per-size TLBs)",
    ),
];

/// Tables that later targets can reuse — `repro all` runs fig17/fig18
/// before the summary, and the digest must not re-run them.
#[derive(Default)]
struct TableCache {
    fig17: Option<Table>,
    fig18: Option<Table>,
}

fn run_summary(exp: &ExpConfig, cache: &mut TableCache) {
    use grit::experiments::fig17_grit;
    use grit::experiments::fig18_faults;
    let t17 = cache.fig17.get_or_insert_with(|| fig17_grit::run(exp));
    let (ot, ac, d) = fig17_grit::headline(t17);
    let t18 = cache.fig18.get_or_insert_with(|| fig18_faults::run(exp));
    report_sink::record_headline(ot, ac, d);
    if let Some(g) = t18.cell("GEOMEAN", "grit") {
        report_sink::record_fig18_geomean(g);
    }
    println!("== GRIT reproduction digest ==");
    println!(
        "performance: GRIT vs on-touch {:+.0}%, vs access-counter {:+.0}%, vs duplication {:+.0}%",
        100.0 * ot,
        100.0 * ac,
        100.0 * d
    );
    println!("paper:       GRIT vs on-touch +60%, vs access-counter +49%, vs duplication +29%");
    let g18 = t18.cell("GEOMEAN", "grit").unwrap_or(1.0);
    println!(
        "page faults: GRIT raises {:.0}% fewer GPU faults than on-touch (paper: 39% fewer)",
        100.0 * (1.0 - g18)
    );
    println!("\nper-app speedup over on-touch (GRIT / best uniform scheme):");
    for (label, row) in t17.rows() {
        if label == "GEOMEAN" {
            continue;
        }
        let best = row[0].max(row[1]).max(row[2]);
        println!("  {label:<6} {:>6.2}x / {best:>5.2}x", row[3]);
    }
}

fn run_validate(exp: &ExpConfig) -> bool {
    use grit_workloads::{validate, App, WorkloadBuilder};
    let mut ok = true;
    println!("== generator characterization check ==");
    for app in App::TABLE2.into_iter().chain(App::DNN).chain(App::EXTRA) {
        let w = WorkloadBuilder::new(app)
            .scale(exp.scale)
            .intensity(exp.intensity)
            .seed(exp.seed)
            .build();
        match validate(app, w) {
            Ok(c) => println!(
                "  {:<8} OK  ({} pages, {} accesses, {:.0}% shared, {:.0}% writes)",
                app.abbr(),
                c.pages,
                c.accesses,
                100.0 * c.shared_pages,
                100.0 * c.write_accesses
            ),
            Err(e) => {
                ok = false;
                println!("  {:<8} DRIFTED: {e}", app.abbr());
            }
        }
    }
    ok
}

fn dump_trace(app_name: &str, path: &str, exp: &ExpConfig) -> bool {
    use grit_workloads::{write_trace, App, WorkloadBuilder};
    let Some(app) = App::TABLE2
        .into_iter()
        .chain(App::DNN)
        .find(|a| a.abbr().eq_ignore_ascii_case(app_name))
    else {
        eprintln!("unknown app {app_name}");
        return false;
    };
    let w = WorkloadBuilder::new(app)
        .scale(exp.scale)
        .intensity(exp.intensity)
        .seed(exp.seed)
        .build();
    let file = match fs::File::create(path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cannot create {path}: {e}");
            return false;
        }
    };
    match write_trace(&w, std::io::BufWriter::new(file)) {
        Ok(()) => {
            eprintln!(
                "[repro] wrote {}: {} accesses over {} pages",
                path,
                w.total_accesses(),
                w.footprint_pages
            );
            true
        }
        Err(e) => {
            eprintln!("write failed: {e}");
            false
        }
    }
}

fn trace_info(path: &str) -> bool {
    use grit_workloads::{characterize, read_trace};
    let file = match fs::File::open(path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cannot open {path}: {e}");
            return false;
        }
    };
    match read_trace(std::io::BufReader::new(file)) {
        Ok(w) => {
            println!("app:        {}", w.app.abbr());
            println!("GPUs:       {}", w.streams.len());
            println!("footprint:  {} pages", w.footprint_pages);
            println!("accesses:   {}", w.total_accesses());
            println!("phases:     {}", w.barriers[0].len());
            let c = characterize(w);
            println!("shared:     {:.1}% of pages", 100.0 * c.shared_pages);
            println!("writes:     {:.1}% of accesses", 100.0 * c.write_accesses);
            println!("shared-RW:  {:.1}% of pages", 100.0 * c.shared_rw_pages);
            true
        }
        Err(e) => {
            eprintln!("not a valid trace: {e}");
            false
        }
    }
}

/// Renders wall-clock phase totals as an aligned text table.
fn render_phase_table(entries: &[PhaseEntry]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "  {:<22} {:>12} {:>10} {:>12}\n",
        "phase", "total ms", "spans", "mean us"
    ));
    let mut rows: Vec<&PhaseEntry> = entries.iter().collect();
    rows.sort_by_key(|e| std::cmp::Reverse(e.nanos));
    for e in rows {
        let ms = e.nanos as f64 / 1e6;
        let mean_us = if e.count > 0 {
            e.nanos as f64 / 1e3 / e.count as f64
        } else {
            0.0
        };
        out.push_str(&format!(
            "  {:<22} {:>12.2} {:>10} {:>12.2}\n",
            e.phase, ms, e.count, mean_us
        ));
    }
    out
}

/// Renders one cycle-domain histogram line (`samples / mean / max` plus the
/// non-empty power-of-two buckets).
fn render_hist(name: &str, h: &HistReport) -> String {
    let buckets: Vec<String> = h.buckets.iter().map(|(lb, c)| format!("{lb}:{c}")).collect();
    format!(
        "  {:<22} samples={:<10} mean={:<10.1} max={:<10} buckets[{}]",
        name,
        h.samples,
        h.mean,
        h.max,
        buckets.join(" ")
    )
}

fn load_json(path: &str) -> Option<Json> {
    let text = match fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return None;
        }
    };
    match Json::parse(&text) {
        Ok(v) => Some(v),
        Err(e) => {
            eprintln!("{path}: not valid JSON: {e}");
            None
        }
    }
}

/// `repro profile <run_report.json>`: renders the report's `profile`
/// object — phase table, speculation telemetry, cycle-domain histograms.
fn cmd_profile(path: &str) -> bool {
    let Some(json) = load_json(path) else {
        return false;
    };
    let report = match RunReport::from_json(&json) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{path}: not a run report: {e}");
            return false;
        }
    };
    let Some(profile) = &report.profile else {
        eprintln!("{path} has no profile section; re-run repro with --profile --metrics-out");
        return false;
    };
    println!("== wall-clock phases ==");
    print!("{}", render_phase_table(&profile.wall));
    if let Some(s) = &profile.speculation {
        println!("\n== speculation (--sim-threads) ==");
        println!("  rounds                 {}", s.rounds);
        println!(
            "  speculated / committed {} / {} (rollback rate {:.1}%)",
            s.speculated,
            s.committed,
            100.0 * s.rollback_rate
        );
        println!("  shards rewound         {}", s.rewound);
        println!("  serial-burst steps     {}", s.serial_burst_steps);
        println!(
            "  horizon stalls         {} ({} cycles)",
            s.horizon_stalls, s.horizon_stall_cycles
        );
        println!(
            "  load imbalance         {:.3} (max/mean committed)",
            s.load_imbalance
        );
        let per_gpu: Vec<String> = s.per_gpu_committed.iter().map(u64::to_string).collect();
        println!("  committed per GPU      [{}]", per_gpu.join(" "));
    }
    println!("\n== cycle-domain (deterministic) ==");
    println!(
        "{}",
        render_hist("fault_occupancy", &profile.cycle.fault_occupancy)
    );
    println!(
        "{}",
        render_hist("migration_latency", &profile.cycle.migration_latency)
    );
    println!(
        "{}",
        render_hist("fabric_queue", &profile.cycle.fabric_queue)
    );
    println!(
        "  mlp_stall_cycles       {}",
        profile.cycle.mlp_stall_cycles
    );
    true
}

/// `repro bench-diff <A> <B>`: per-target wall-clock deltas between two
/// `BENCH_*.json` documents. Returns `false` (exit nonzero) when any
/// shared target — or the total — slowed down past `threshold` percent.
fn cmd_bench_diff(a_path: &str, b_path: &str, threshold: f64) -> bool {
    let (Some(aj), Some(bj)) = (load_json(a_path), load_json(b_path)) else {
        return false;
    };
    let (a, b) = match (BenchSummary::from_json(&aj), BenchSummary::from_json(&bj)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) => {
            eprintln!("{a_path}: not a bench summary: {e}");
            return false;
        }
        (_, Err(e)) => {
            eprintln!("{b_path}: not a bench summary: {e}");
            return false;
        }
    };
    println!("== bench-diff: {a_path} (baseline) vs {b_path} ==");
    if (a.scale, a.intensity, a.seed) != (b.scale, b.intensity, b.seed) {
        println!(
            "  WARNING: configs differ (scale {} vs {}, intensity {} vs {}, seed {:#x} vs {:#x}); timings are not comparable",
            a.scale, b.scale, a.intensity, b.intensity, a.seed, b.seed
        );
    }
    if a.jobs != b.jobs || a.sim_threads != b.sim_threads {
        println!(
            "  note: jobs {}x{} vs {}x{} (threading differs; wall-clock shifts expected)",
            a.jobs, a.sim_threads, b.jobs, b.sim_threads
        );
    }
    println!(
        "  {:<18} {:>12} {:>12} {:>9}",
        "target", "baseline s", "current s", "delta"
    );
    let mut regressed = false;
    let delta_of =
        |base: f64, cur: f64| -> Option<f64> { (base > 0.0).then(|| 100.0 * (cur - base) / base) };
    for tb in &b.targets {
        let Some(ta) = a.targets.iter().find(|t| t.name == tb.name) else {
            println!(
                "  {:<18} {:>12} {:>12.3} {:>9}",
                tb.name, "-", tb.seconds, "new"
            );
            continue;
        };
        match delta_of(ta.seconds, tb.seconds) {
            Some(d) => {
                let flag = if d > threshold {
                    regressed = true;
                    "  REGRESSED"
                } else {
                    ""
                };
                println!(
                    "  {:<18} {:>12.3} {:>12.3} {:>+8.1}%{flag}",
                    tb.name, ta.seconds, tb.seconds, d
                );
            }
            None => println!(
                "  {:<18} {:>12.3} {:>12.3} {:>9}",
                tb.name, ta.seconds, tb.seconds, "n/a"
            ),
        }
    }
    for ta in &a.targets {
        if !b.targets.iter().any(|t| t.name == ta.name) {
            println!(
                "  {:<18} {:>12.3} {:>12} {:>9}",
                ta.name, ta.seconds, "-", "removed"
            );
        }
    }
    match delta_of(a.total_seconds, b.total_seconds) {
        Some(d) => {
            let flag = if d > threshold {
                regressed = true;
                "  REGRESSED"
            } else {
                ""
            };
            println!(
                "  {:<18} {:>12.3} {:>12.3} {:>+8.1}%{flag}",
                "TOTAL", a.total_seconds, b.total_seconds, d
            );
        }
        None => println!(
            "  {:<18} {:>12.3} {:>12.3} {:>9}",
            "TOTAL", a.total_seconds, b.total_seconds, "n/a"
        ),
    }
    if a.cells_run != b.cells_run {
        println!("  note: cells_run {} vs {}", a.cells_run, b.cells_run);
    }
    // Fault totals are deterministic for a fixed config: a drift under an
    // identical config is a fidelity bug, not a perf regression.
    if (a.scale, a.intensity, a.seed) == (b.scale, b.intensity, b.seed)
        && a.cells_run == b.cells_run
        && a.fault_totals != b.fault_totals
    {
        println!("  WARNING: fault totals drifted under an identical config");
        regressed = true;
    }
    if regressed {
        eprintln!("[bench-diff] regression past {threshold}% threshold");
    } else {
        println!("  ok: no target regressed past {threshold}%");
    }
    !regressed
}

fn print_usage() {
    eprintln!(
        "usage: repro <figN|all|tables|list> [--quick|--full] [--jobs N] [--sim-threads N] [--scale X] [--intensity X] [--seed N] [--csv DIR] [--trace PATH] [--metrics-out DIR] [--emit-bench-json] [--bench-baseline] [--cell-timeout SECS] [--resume|--resume-dir DIR] [--fail-fast|--keep-going]"
    );
    eprintln!("figures:");
    for (name, desc) in FIGURES {
        eprintln!("  {name:<7} {desc}");
    }
    eprintln!("  tables   print the configuration tables (Table I-V)");
    eprintln!("  summary  one-screen digest of the headline results");
    eprintln!("  validate check every generator against its characterization band");
    eprintln!("  dump-trace <APP> <PATH> / trace-info <PATH>  trace tooling");
    eprintln!(
        "  serve    long-lived campaign server (grit-serve/v1 over TCP): --port N (0 = ephemeral), --port-file PATH, --store DIR (default .grit-serve-store), --store-max-bytes N, --max-queued N (admission control; 0 = unbounded), --jobs N; SIGINT/SIGTERM drains queued cells before exit"
    );
    eprintln!(
        "  submit   run an --apps x --policies campaign: --connect HOST:PORT against a server (--shutdown stops it afterwards, --retry resubmits unresolved cells with capped exponential backoff), or --local through the in-process engine; stdout carries only the table"
    );
    eprintln!("  profile <REPORT>    render the profile section of a run_report.json");
    eprintln!(
        "  bench-diff <A> <B>  compare two BENCH_*.json; exit nonzero past --threshold PCT regression (default 25)"
    );
    eprintln!(
        "  --jobs N  worker threads for experiment cells (also GRIT_JOBS; default: all cores)"
    );
    eprintln!(
        "  --sim-threads N     event-loop threads sharding each cell (also GRIT_SIM_THREADS; default: 1; output is byte-identical at any value; jobs x sim-threads is clamped to the core count)"
    );
    eprintln!(
        "  --topology T        interconnect for every cell: all-to-all (default), nvswitch[:RADIX], ring, mesh2d, hierarchical"
    );
    eprintln!("  --page-size N       base page size in bytes for every cell (default 4096)");
    eprintln!(
        "  --page-size-mode M  large-page management for every cell: uniform4k (default), uniform2m, mixed"
    );
    eprintln!(
        "  --inject SPEC       deterministic fault schedule for every cell, e.g. 'outage@1000:wire=0:for=5000;retire@2000:gpu=1:pct=10'"
    );
    eprintln!(
        "  --check-invariants  run the driver's VM-state invariant sweeps in release builds too"
    );
    eprintln!("  --trace PATH        write a structured JSONL event stream");
    eprintln!("  --trace-filter L    comma-separated event categories (default: all)");
    eprintln!("  --trace-sample N    keep every Nth event per category (default: 1)");
    eprintln!(
        "  --metrics-out DIR   write run_report.json + BENCH_run.json (refuses to overwrite an existing run_report.json without --force)"
    );
    eprintln!("  --force             allow overwriting an existing run_report.json");
    eprintln!(
        "  --profile           wall-clock phase timers + speculation telemetry (profile object in run_report.json; zero overhead when off)"
    );
    eprintln!(
        "  --profile-out PATH  write a Chrome trace-event / Perfetto JSON span trace (implies --profile)"
    );
    eprintln!("  --progress          1 Hz heartbeat: cells done, ETA, current phase");
    eprintln!("  --threshold PCT     bench-diff regression threshold (default 25)");
    eprintln!("  --emit-bench-json   write BENCH_run.json (cwd unless --metrics-out)");
    eprintln!(
        "  --bench-baseline    like --emit-bench-json but writes BENCH_baseline.json (the committed reference)"
    );
    eprintln!("  --cell-timeout SECS wall-clock budget per cell (expired cells become err! rows)");
    eprintln!(
        "  --resume            store finished cells under .grit-resume/ and skip them on re-run"
    );
    eprintln!("  --resume-dir DIR    like --resume, with an explicit store directory");
    eprintln!(
        "  --store-max-bytes N bound any result store; oldest entries are evicted deterministically"
    );
    eprintln!("  --fail-fast         abort the campaign (exit nonzero) on the first failed cell");
    eprintln!("  --keep-going        render failed cells as rows and keep running (default)");
}

/// Prints a table and optionally appends its CSV rendering to `csv_dir`.
fn emit(table: &Table, name: &str, csv_dir: &Option<PathBuf>) {
    println!("{}", table.to_text());
    if let Some(dir) = csv_dir {
        let path = dir.join(format!("{name}.csv"));
        if let Err(e) = fs::write(&path, table.to_csv()) {
            eprintln!("[repro] failed to write {}: {e}", path.display());
        }
    }
}

fn print_config_tables() {
    use grit_sim::SimConfig;
    use grit_workloads::App;
    let cfg = SimConfig::default();
    println!("== Table I: baseline multi-GPU configuration ==");
    println!("  GPUs                      {}", cfg.num_gpus);
    println!("  page size                 {} B", cfg.page_size);
    println!(
        "  DRAM per GPU              {:.0}% of footprint",
        100.0 * cfg.capacity_ratio
    );
    println!(
        "  L1 data cache             {} x 64 B, {}-way",
        cfg.l1_cache.entries, cfg.l1_cache.ways
    );
    println!(
        "  L2 data cache             {} x 64 B, {}-way",
        cfg.l2_cache.entries, cfg.l2_cache.ways
    );
    println!(
        "  L1 TLB                    {} entries, {}-way, {} cyc",
        cfg.l1_tlb.entries, cfg.l1_tlb.ways, cfg.l1_tlb.lookup_latency
    );
    println!(
        "  L2 TLB                    {} entries, {}-way, {} cyc",
        cfg.l2_tlb.entries, cfg.l2_tlb.ways, cfg.l2_tlb.lookup_latency
    );
    println!(
        "  page walkers              {} shared, {} cyc/level, {} levels",
        cfg.walk.walkers, cfg.walk.cycles_per_level, cfg.walk.levels
    );
    println!(
        "  page-walk cache / queue   {} / {} entries",
        cfg.walk.walk_cache_entries, cfg.walk.queue_capacity
    );
    println!(
        "  access-counter threshold  {}",
        cfg.access_counter_threshold
    );
    println!(
        "  NVLink / PCIe             {:.0} / {:.0} B per cycle",
        cfg.links.nvlink_bytes_per_cycle, cfg.links.pcie_bytes_per_cycle
    );
    println!();
    println!("== Table II: applications ==");
    println!(
        "  {:<5} {:<30} {:<12} {:<15} {:>9}",
        "abbr", "application", "suite", "pattern", "footprint"
    );
    for app in App::TABLE2 {
        println!(
            "  {:<5} {:<30} {:<12} {:<15} {:>6} MB",
            app.abbr(),
            app.full_name(),
            app.suite(),
            format!("{:?}", app.pattern()),
            app.footprint_bytes() / (1024 * 1024)
        );
    }
    println!();
    println!("== Table III: policy preference ==");
    use grit_core::{preference, RwClass, SharingClass};
    for (label, s) in [
        ("private", SharingClass::Private),
        ("pc-shared", SharingClass::PcShared),
        ("all-shared", SharingClass::AllShared),
    ] {
        for (rw_label, rw) in [("read", RwClass::Read), ("read-write", RwClass::ReadWrite)] {
            let pref: Vec<String> = preference(s, rw).iter().map(|x| x.to_string()).collect();
            println!("  {label:<10} {rw_label:<10} -> {}", pref.join(" / "));
        }
    }
    println!();
    println!("== Table IV: scheme bits ==");
    use grit_sim::Scheme;
    for s in Scheme::ALL {
        println!("  {:#04b}  {s}", s.bits());
    }
    println!();
    println!("== Table V: group bits ==");
    use grit_sim::GroupSize;
    for g in [
        GroupSize::One,
        GroupSize::Eight,
        GroupSize::SixtyFour,
        GroupSize::FiveTwelve,
    ] {
        println!(
            "  {:#04b}  {:>3} pages ({} KB)",
            g.bits(),
            g.pages(),
            g.pages() * 4
        );
    }
}

fn run_figure(
    name: &str,
    exp: &ExpConfig,
    csv_dir: &Option<PathBuf>,
    cache: &mut TableCache,
) -> bool {
    match name {
        "tables" => print_config_tables(),
        "summary" => run_summary(exp, cache),
        "validate" => {
            if !run_validate(exp) {
                eprintln!("[repro] at least one generator drifted from its band");
            }
        }
        "stats" => {
            use grit::experiments::{run_cell, PolicyKind};
            use grit_sim::Scheme;
            for app in grit_workloads::App::TABLE2 {
                for p in [
                    PolicyKind::Static(Scheme::OnTouch),
                    PolicyKind::Static(Scheme::AccessCounter),
                    PolicyKind::Static(Scheme::Duplication),
                    PolicyKind::GRIT,
                    PolicyKind::Ideal,
                ] {
                    let out = run_cell(app, p, exp);
                    let m = &out.metrics;
                    let fl = m.aux("fault_latency_summary").unwrap_or(&[]).to_vec();
                    println!(
                        "{:<5} {:<16} cycles={:<12} acc={:<9} faults(l={},p={}) migr={} dup={} col={} evic={} remote={} fault-lat(mean={:.0} p99={:.0}) bd[{}]",
                        app.abbr(),
                        p.label(),
                        m.total_cycles,
                        m.accesses,
                        m.faults.local_faults,
                        m.faults.protection_faults,
                        m.faults.migrations,
                        m.faults.duplications,
                        m.faults.collapses,
                        m.faults.evictions,
                        m.remote_accesses,
                        fl.get(1).copied().unwrap_or(0.0),
                        fl.get(3).copied().unwrap_or(0.0),
                        m.breakdown,
                    );
                }
            }
        }
        "fig1" => emit(&ex::fig01_schemes::run(exp), "fig1", csv_dir),
        "fig3" => emit(&ex::fig03_breakdown::run(exp), "fig3", csv_dir),
        "fig4" => emit(&ex::fig04_sharing::run(exp), "fig4", csv_dir),
        "fig5" => {
            for (i, t) in ex::fig05_page_timeline::run(exp).into_iter().enumerate() {
                emit(&t, &format!("fig5_{i}"), csv_dir);
            }
        }
        "fig6" | "fig7" | "fig8" => emit(&ex::fig06_attr_grids::run(exp), "fig6_8", csv_dir),
        "fig9" => emit(&ex::fig09_rw::run(exp), "fig9", csv_dir),
        "fig10" => emit(&ex::fig10_rw_timeline::run(exp), "fig10", csv_dir),
        "fig17" => {
            let t = ex::fig17_grit::run(exp);
            emit(&t, "fig17", csv_dir);
            let (ot, ac, d) = ex::fig17_grit::headline(&t);
            report_sink::record_headline(ot, ac, d);
            println!(
                "headline: GRIT vs on-touch +{:.0}%  vs access-counter +{:.0}%  vs duplication +{:.0}%",
                100.0 * ot,
                100.0 * ac,
                100.0 * d
            );
            println!(
                "paper:    GRIT vs on-touch +60%  vs access-counter +49%  vs duplication +29%\n"
            );
            cache.fig17 = Some(t);
        }
        "fig18" => {
            let t = ex::fig18_faults::run(exp);
            emit(&t, "fig18", csv_dir);
            if let Some(g) = t.cell("GEOMEAN", "grit") {
                report_sink::record_fig18_geomean(g);
            }
            cache.fig18 = Some(t);
        }
        "fig19" => emit(&ex::fig19_scheme_mix::run(exp), "fig19", csv_dir),
        "fig20" => emit(&ex::fig20_ablation::run(exp), "fig20", csv_dir),
        "fig21" => emit(&ex::fig21_threshold::run(exp), "fig21", csv_dir),
        "fig22" | "fig23" | "fig24" => {
            for (n, perf, faults) in ex::fig22_gpu_scaling::run(exp) {
                println!("--- {n} GPUs ---");
                emit(&perf, &format!("fig22_24_{n}gpu_perf"), csv_dir);
                emit(&faults, &format!("fig22_24_{n}gpu_faults"), csv_dir);
            }
        }
        "fig25" => emit(&ex::fig25_large_pages::run(exp), "fig25", csv_dir),
        "fig26" => emit(&ex::fig26_griffin::run(exp), "fig26", csv_dir),
        "fig27" => emit(&ex::fig27_gps::run(exp), "fig27", csv_dir),
        "fig28" => emit(&ex::fig28_transfw::run(exp), "fig28", csv_dir),
        "fig29" => emit(&ex::fig29_first_touch::run(exp), "fig29", csv_dir),
        "fig30" => emit(&ex::fig30_prefetch::run(exp), "fig30", csv_dir),
        "fig31" => emit(&ex::fig31_dnn::run(exp), "fig31", csv_dir),
        "oracle" => emit(&ex::ext_oracle::run(exp), "oracle", csv_dir),
        "pacache" => emit(&ex::ext_pa_cache::run(exp), "pacache", csv_dir),
        "extra" => emit(&ex::ext_workloads::run(exp), "extra_workloads", csv_dir),
        "adapt" => {
            for (i, t) in ex::ext_adaptation::run(exp).into_iter().enumerate() {
                emit(&t, &format!("adapt_{i}"), csv_dir);
            }
        }
        "sweeps" => {
            emit(
                &ex::ext_sweeps::run_capacity(exp),
                "sweep_capacity",
                csv_dir,
            );
            emit(
                &ex::ext_sweeps::run_remote_gap(exp),
                "sweep_remote_gap",
                csv_dir,
            );
            emit(&ex::ext_sweeps::run_mlp(exp), "sweep_mlp", csv_dir);
        }
        "ext-topology" | "topology" => {
            let study = ex::ext_topology::run(exp);
            emit(&study.speedup, "ext_topology_speedup", csv_dir);
            emit(&study.queue, "ext_topology_queue", csv_dir);
        }
        "ext-pagesize" | "pagesize" => {
            let study = ex::ext_pagesize::run(exp);
            emit(&study.speedup, "ext_pagesize_speedup", csv_dir);
            emit(&study.tlb, "ext_pagesize_tlb", csv_dir);
            emit(&study.activity, "ext_pagesize_activity", csv_dir);
        }
        "ext-resilience" | "resilience" => {
            let study = ex::ext_resilience::run(exp);
            emit(&study.slowdown, "ext_resilience_slowdown", csv_dir);
            for (scenario, r) in &study.counters {
                println!(
                    "[resilience] {scenario}: injected {} recovered {} blocked {} \
                     (retried-ok {} remote {} staged {}) retired-frames {} checks {}",
                    r.faults_injected,
                    r.recoveries,
                    r.migrations_blocked,
                    r.retry_successes,
                    r.fallback_remote,
                    r.host_staged,
                    r.frames_retired,
                    r.invariant_checks,
                );
                if !r.all_blocked_resolved() {
                    eprintln!("[repro] {scenario}: blocked migrations left unresolved");
                }
            }
        }
        _ => return false,
    }
    true
}

/// Inputs to `repro submit`, collected from the flag loop.
struct SubmitArgs {
    /// Override spec with scale/intensity/seed and trace knobs applied;
    /// app and policy are filled per campaign cell.
    base: grit_sim::RunSpec,
    connect: Option<String>,
    apps: Option<String>,
    policies: Option<String>,
    shutdown: bool,
    local: bool,
    retry: bool,
    trace_path: Option<PathBuf>,
}

fn split_list(raw: &str) -> Vec<String> {
    raw.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(String::from)
        .collect()
}

/// Renders an app x policy campaign as a total-cycles table. Both the
/// served and the `--local` paths funnel through here, so their stdout
/// is comparable byte for byte.
fn render_campaign(apps: &[String], pols: &[String], cycles: &[f64]) -> Table {
    let mut t = Table::new("campaign total cycles", pols.to_vec());
    for (ai, app) in apps.iter().enumerate() {
        let row: Vec<f64> = (0..pols.len()).map(|pi| cycles[ai * pols.len() + pi]).collect();
        t.push_row(app, row);
    }
    t
}

/// One connect → submit → drain pass over the given `(id, spec)` cells.
fn campaign_attempt(
    addr: &str,
    cells: &[(u64, &grit_sim::RunSpec)],
    shutdown: bool,
) -> Result<grit_serve::CampaignOutcome, grit_serve::ClientError> {
    let mut client = grit_serve::ServeClient::connect(addr)?;
    for (id, spec) in cells {
        client.submit(*id, spec)?;
    }
    if shutdown {
        client.shutdown_server()?;
    }
    client.finish()
}

/// What a completed campaign hands back to `cmd_submit`: per-cell
/// results in declaration order, trace lines tagged by cell id, and any
/// server-side error strings.
type CampaignYield = (Vec<grit_serve::CellResult>, Vec<(u64, Json)>, Vec<String>);

/// Drives a served campaign to completion. Without `retry` a single
/// attempt is made and any failure is final. With `retry`, connection
/// failures, timeouts, and `busy` admission rejections trigger a
/// reconnect that resubmits only the still-unresolved ids, backing off
/// on the capped exponential schedule of [`grit_inject::Backoff`]
/// (2s/4s/8s/16s; base overridable via `GRIT_SUBMIT_RETRY_BASE_MS` for
/// tests, floor also raised to any server-sent `retry_after_ms`).
/// Resubmission is idempotent: the server keys its result store by
/// canonical spec, so cells that already ran come back as store hits
/// and a kill-and-retry campaign renders the same table as an
/// uninterrupted one.
///
/// When both `shutdown` and `retry` are requested, the shutdown is
/// deferred to a dedicated final connection so a failed mid-campaign
/// attempt can never stop the server while cells are still unresolved.
fn run_served_campaign(
    addr: &str,
    specs: &[grit_sim::RunSpec],
    shutdown: bool,
    retry: bool,
) -> Result<CampaignYield, String> {
    let mut backoff = grit_inject::Backoff::default();
    if let Some(ms) = env::var("GRIT_SUBMIT_RETRY_BASE_MS")
        .ok()
        .and_then(|raw| raw.parse::<u64>().ok())
    {
        backoff.base = ms.max(1);
    }
    let mut resolved: HashMap<u64, grit_serve::CellResult> = HashMap::new();
    let mut traces: Vec<(u64, Json)> = Vec::new();
    let mut server_errors: Vec<String> = Vec::new();
    let mut shutdown_pending = shutdown;
    let mut attempt: u32 = 0;
    let sleep_then_retry = |attempt: &mut u32, busy_hint: u64, why: &str| -> Result<(), String> {
        if *attempt >= backoff.max_attempts {
            return Err(format!("giving up after {} attempts: {why}", *attempt + 1));
        }
        let delay = backoff.delay(*attempt).max(busy_hint);
        eprintln!("[repro] submit: {why}; retrying in {delay}ms");
        std::thread::sleep(Duration::from_millis(delay));
        *attempt += 1;
        Ok(())
    };
    loop {
        let pending: Vec<(u64, &grit_sim::RunSpec)> = specs
            .iter()
            .enumerate()
            .map(|(i, s)| (i as u64, s))
            .filter(|(id, _)| !resolved.contains_key(id))
            .collect();
        if pending.is_empty() && !shutdown_pending {
            break;
        }
        // Under --retry the shutdown rides on its own final, empty
        // submission once every cell has a result.
        let send_shutdown = shutdown_pending && (!retry || pending.is_empty());
        match campaign_attempt(addr, &pending, send_shutdown) {
            Ok(outcome) => {
                server_errors.extend(outcome.errors);
                // Duplicate `result` lines across attempts (or from a
                // duplicating link) are harmless: first resolution wins,
                // and traces are kept only for ids resolved just now.
                let newly: HashSet<u64> = outcome
                    .results
                    .iter()
                    .map(|r| r.id)
                    .filter(|id| !resolved.contains_key(id))
                    .collect();
                traces.extend(outcome.traces.into_iter().filter(|(id, _)| newly.contains(id)));
                for r in outcome.results {
                    resolved.entry(r.id).or_insert(r);
                }
                if send_shutdown {
                    shutdown_pending = false;
                }
                let unresolved =
                    pending.iter().filter(|(id, _)| !resolved.contains_key(id)).count();
                if unresolved == 0 {
                    attempt = 0;
                    continue;
                }
                let busy_hint = outcome.busy.iter().map(|&(_, ms)| ms).max().unwrap_or(0);
                let why = format!(
                    "{unresolved} of {} cells unresolved ({} busy-rejected)",
                    specs.len(),
                    outcome.busy.len()
                );
                if !retry {
                    return Err(format!("{why}; pass --retry to resubmit"));
                }
                if !newly.is_empty() {
                    attempt = 0;
                }
                sleep_then_retry(&mut attempt, busy_hint, &why)?;
            }
            Err(e) => {
                if !retry {
                    return Err(e.to_string());
                }
                sleep_then_retry(&mut attempt, 0, &e.to_string())?;
            }
        }
    }
    let mut results = Vec::with_capacity(specs.len());
    for id in 0..specs.len() as u64 {
        results.push(resolved.remove(&id).expect("loop exits only once every id resolved"));
    }
    // Arrival order within one connection is id order already; a stable
    // sort normalizes trace order across multi-attempt campaigns while
    // preserving per-cell event order.
    traces.sort_by_key(|&(id, _)| id);
    Ok((results, traces, server_errors))
}

/// `repro submit`: run an app x policy campaign against a server
/// (`--connect`) or through the in-process engine (`--local`). Status
/// goes to stderr; stdout carries only the table, so the two paths can
/// be diffed directly.
fn cmd_submit(a: &SubmitArgs) -> ExitCode {
    let apps = a.apps.as_deref().map(split_list).unwrap_or_default();
    let pols = a
        .policies
        .as_deref()
        .map(split_list)
        .unwrap_or_else(|| vec!["grit".to_string()]);
    if apps.is_empty() && !a.shutdown {
        eprintln!("submit needs --apps A,B,... (or --shutdown to only stop a server)");
        return ExitCode::FAILURE;
    }
    for app in &apps {
        if grit_workloads::App::parse(app).is_none() {
            eprintln!("submit: unknown app '{app}'");
            return ExitCode::FAILURE;
        }
    }
    for p in &pols {
        if ex::PolicyKind::parse(p).is_none() {
            eprintln!("submit: unknown policy '{p}'");
            return ExitCode::FAILURE;
        }
    }
    let mut specs = Vec::new();
    for app in &apps {
        for p in &pols {
            let mut s = a.base.clone();
            s.app = app.clone();
            s.policy = p.clone();
            specs.push(s);
        }
    }

    let (cycles, hits, errs, trace_text) = if a.local {
        let mut cells = Vec::new();
        for spec in &specs {
            match grit::service::parse_spec_cell(spec) {
                Ok(c) => cells.push(c),
                Err(e) => {
                    eprintln!("submit: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        let outs = ex::run_batch_with(&cells, &ex::BatchOptions::from_defaults());
        let mut errs = 0usize;
        for (i, out) in outs.iter().enumerate() {
            if let Err(e) = out {
                errs += 1;
                eprintln!("[repro] cell {i}: {}: {e}", e.status());
            }
        }
        let hits = outs.iter().flatten().filter(|o| o.timing.resumed).count();
        let mut trace_text = String::new();
        for out in outs.iter().flatten() {
            if let Some(evs) = &out.events {
                trace_text.push_str(&grit_trace::events_to_jsonl(evs));
            }
        }
        let cycles: Vec<f64> = outs
            .iter()
            .map(|o| o.as_ref().map_or(0.0, |o| o.metrics.total_cycles as f64))
            .collect();
        (cycles, hits, errs, trace_text)
    } else {
        let Some(addr) = &a.connect else {
            eprintln!("submit needs --connect HOST:PORT (or --local)");
            return ExitCode::FAILURE;
        };
        let (results, traces, server_errors) =
            match run_served_campaign(addr, &specs, a.shutdown, a.retry) {
                Ok(v) => v,
                Err(e) => {
                    eprintln!("submit: {e}");
                    return ExitCode::FAILURE;
                }
            };
        for e in &server_errors {
            eprintln!("[repro] server error: {e}");
        }
        if let Some((i, r)) = results.iter().enumerate().find(|(i, r)| r.id != *i as u64) {
            eprintln!(
                "[repro] submit: result {i} carries id {} — declaration order broken",
                r.id
            );
            return ExitCode::FAILURE;
        }
        let mut errs = 0usize;
        for r in &results {
            if !r.is_ok() {
                errs += 1;
                eprintln!(
                    "[repro] cell {}: {}{}",
                    r.id,
                    r.status,
                    r.error.as_deref().map(|m| format!(": {m}")).unwrap_or_default()
                );
            }
        }
        let quarantined: u64 = results.iter().map(|r| r.store_quarantined).sum();
        if quarantined > 0 {
            eprintln!("[repro] submit: server quarantined {quarantined} corrupt store files");
        }
        let hits = results.iter().filter(|r| r.store_hit).count();
        let mut trace_text = String::new();
        for (_id, ev) in &traces {
            trace_text.push_str(&ev.to_string());
            trace_text.push('\n');
        }
        let cycles: Vec<f64> = results.iter().map(|r| r.total_cycles as f64).collect();
        (cycles, hits, errs, trace_text)
    };

    if let Some(path) = &a.trace_path {
        if let Err(e) = fs::write(path, &trace_text) {
            eprintln!("cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    eprintln!(
        "[repro] submit: {} cells, {} store hits, {} errors",
        specs.len(),
        hits,
        errs
    );
    if !specs.is_empty() {
        print!("{}", render_campaign(&apps, &pols, &cycles).to_text());
    }
    if errs == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    if args.is_empty() {
        print_usage();
        return ExitCode::FAILURE;
    }

    let mut exp = ExpConfig::default();
    let mut targets: Vec<String> = Vec::new();
    let mut csv_dir: Option<PathBuf> = None;
    let mut trace_path: Option<PathBuf> = None;
    let mut trace_mask = CategoryMask::ALL;
    let mut trace_sample: u64 = 1;
    let mut metrics_dir: Option<PathBuf> = None;
    let mut emit_bench = false;
    let mut bench_baseline = false;
    let mut profile_on = false;
    let mut profile_out: Option<PathBuf> = None;
    let mut force = false;
    let mut threshold = 25.0_f64;
    // The machine/execution overrides accumulate into one RunSpec — the
    // same struct the result store keys on and the serve wire carries.
    let mut ospec = grit_sim::RunSpec::default();
    let mut trace_filter_raw: Option<String> = None;
    let mut port: u16 = 0;
    let mut port_file: Option<PathBuf> = None;
    let mut store_dir: Option<PathBuf> = None;
    let mut store_max_bytes: Option<u64> = None;
    let mut connect_addr: Option<String> = None;
    let mut apps_raw: Option<String> = None;
    let mut policies_raw: Option<String> = None;
    let mut do_shutdown = false;
    let mut local_mode = false;
    let mut do_retry = false;
    let mut max_queued: usize = 0;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => exp = ExpConfig::quick(),
            "--full" => exp = ExpConfig::full(),
            "--scale" => {
                i += 1;
                let Some(v) = args.get(i).and_then(|s| s.parse().ok()) else {
                    eprintln!("--scale needs a number");
                    return ExitCode::FAILURE;
                };
                exp.scale = v;
            }
            "--intensity" => {
                i += 1;
                let Some(v) = args.get(i).and_then(|s| s.parse().ok()) else {
                    eprintln!("--intensity needs a number");
                    return ExitCode::FAILURE;
                };
                exp.intensity = v;
            }
            "--seed" => {
                i += 1;
                let Some(v) = args.get(i).and_then(|s| s.parse().ok()) else {
                    eprintln!("--seed needs an integer");
                    return ExitCode::FAILURE;
                };
                exp.seed = v;
            }
            "--jobs" | "-j" => {
                i += 1;
                let Some(v) = args.get(i).and_then(|s| s.parse::<usize>().ok()).filter(|&n| n > 0)
                else {
                    eprintln!("--jobs needs a positive integer");
                    return ExitCode::FAILURE;
                };
                ex::set_jobs(v);
            }
            "--sim-threads" => {
                i += 1;
                let Some(v) = args.get(i).and_then(|s| s.parse::<usize>().ok()).filter(|&n| n > 0)
                else {
                    eprintln!("--sim-threads needs a positive integer");
                    return ExitCode::FAILURE;
                };
                ospec = ospec.sim_threads(v);
            }
            "--csv" => {
                i += 1;
                let Some(dir) = args.get(i) else {
                    eprintln!("--csv needs a directory");
                    return ExitCode::FAILURE;
                };
                let dir = PathBuf::from(dir);
                if let Err(e) = fs::create_dir_all(&dir) {
                    eprintln!("cannot create {}: {e}", dir.display());
                    return ExitCode::FAILURE;
                }
                csv_dir = Some(dir);
            }
            "--trace" => {
                i += 1;
                let Some(path) = args.get(i) else {
                    eprintln!("--trace needs a file path");
                    return ExitCode::FAILURE;
                };
                trace_path = Some(PathBuf::from(path));
            }
            "--trace-filter" => {
                i += 1;
                let Some(list) = args.get(i) else {
                    eprintln!("--trace-filter needs a comma-separated category list");
                    return ExitCode::FAILURE;
                };
                match CategoryMask::parse(list) {
                    Ok(mask) => trace_mask = mask,
                    Err(e) => {
                        eprintln!("--trace-filter: {e}");
                        return ExitCode::FAILURE;
                    }
                }
                trace_filter_raw = Some(list.clone());
            }
            "--trace-sample" => {
                i += 1;
                let Some(n) = args.get(i).and_then(|s| s.parse::<u64>().ok()).filter(|&n| n > 0)
                else {
                    eprintln!("--trace-sample needs a positive integer");
                    return ExitCode::FAILURE;
                };
                trace_sample = n;
            }
            "--metrics-out" => {
                i += 1;
                let Some(dir) = args.get(i) else {
                    eprintln!("--metrics-out needs a directory");
                    return ExitCode::FAILURE;
                };
                let dir = PathBuf::from(dir);
                if let Err(e) = fs::create_dir_all(&dir) {
                    eprintln!("cannot create {}: {e}", dir.display());
                    return ExitCode::FAILURE;
                }
                metrics_dir = Some(dir);
            }
            "--profile" => profile_on = true,
            "--profile-out" => {
                i += 1;
                let Some(path) = args.get(i) else {
                    eprintln!("--profile-out needs a file path");
                    return ExitCode::FAILURE;
                };
                profile_out = Some(PathBuf::from(path));
                profile_on = true;
            }
            "--progress" => ex::set_progress(true),
            "--force" => force = true,
            "--threshold" => {
                i += 1;
                let Some(v) = args.get(i).and_then(|s| s.parse::<f64>().ok()).filter(|v| *v >= 0.0)
                else {
                    eprintln!("--threshold needs a non-negative percentage");
                    return ExitCode::FAILURE;
                };
                threshold = v;
            }
            "--emit-bench-json" => emit_bench = true,
            "--bench-baseline" => {
                emit_bench = true;
                bench_baseline = true;
            }
            "--cell-timeout" => {
                i += 1;
                let Some(v) = args.get(i).and_then(|s| s.parse::<f64>().ok()).filter(|v| *v >= 0.0)
                else {
                    eprintln!("--cell-timeout needs a non-negative number of seconds");
                    return ExitCode::FAILURE;
                };
                ospec = ospec.timeout_secs(v);
            }
            "--resume" => ex::set_resume_dir(Some(PathBuf::from(".grit-resume"))),
            "--resume-dir" => {
                i += 1;
                let Some(dir) = args.get(i) else {
                    eprintln!("--resume-dir needs a directory");
                    return ExitCode::FAILURE;
                };
                ex::set_resume_dir(Some(PathBuf::from(dir)));
            }
            "--fail-fast" => ex::set_fail_fast(true),
            "--keep-going" => ex::set_fail_fast(false),
            "--topology" => {
                i += 1;
                let Some(spec) = args.get(i) else {
                    eprintln!("--topology needs a name (all-to-all, nvswitch[:RADIX], ring, mesh2d, hierarchical)");
                    return ExitCode::FAILURE;
                };
                if let Err(e) = grit_sim::TopologyConfig::parse(spec) {
                    eprintln!("--topology: {e}");
                    return ExitCode::FAILURE;
                }
                ospec = ospec.topology(spec);
            }
            "--page-size" => {
                i += 1;
                let Some(v) = args.get(i).and_then(|s| s.parse::<u64>().ok()) else {
                    eprintln!("--page-size needs a byte count (e.g. 4096, 65536)");
                    return ExitCode::FAILURE;
                };
                if let Err(e) = grit_sim::lines_per_page_checked(v) {
                    eprintln!("--page-size: {e}");
                    return ExitCode::FAILURE;
                }
                ospec = ospec.page_size(v);
            }
            "--page-size-mode" => {
                i += 1;
                let Some(spec) = args.get(i) else {
                    eprintln!("--page-size-mode needs a mode (uniform4k, uniform2m, mixed)");
                    return ExitCode::FAILURE;
                };
                if let Err(e) = grit_sim::PageSizeMode::parse(spec) {
                    eprintln!("--page-size-mode: {e}");
                    return ExitCode::FAILURE;
                }
                ospec = ospec.page_size_mode(spec.as_str());
            }
            "--inject" => {
                i += 1;
                let Some(spec) = args.get(i) else {
                    eprintln!(
                        "--inject needs a spec, e.g. 'degrade@1000:wire=0:frac=0.25:for=100000'"
                    );
                    return ExitCode::FAILURE;
                };
                if let Err(e) = grit_sim::InjectConfig::parse(spec) {
                    eprintln!("--inject: {e}");
                    return ExitCode::FAILURE;
                }
                ospec = ospec.inject(spec);
            }
            "--check-invariants" => ospec = ospec.check_invariants(true),
            "--store-max-bytes" => {
                i += 1;
                let Some(v) = args.get(i).and_then(|s| s.parse::<u64>().ok()).filter(|&n| n > 0)
                else {
                    eprintln!("--store-max-bytes needs a positive byte count");
                    return ExitCode::FAILURE;
                };
                store_max_bytes = Some(v);
                ex::set_store_max_bytes(Some(v));
            }
            "--port" => {
                i += 1;
                let Some(v) = args.get(i).and_then(|s| s.parse::<u16>().ok()) else {
                    eprintln!("--port needs a TCP port number (0 = ephemeral)");
                    return ExitCode::FAILURE;
                };
                port = v;
            }
            "--port-file" => {
                i += 1;
                let Some(path) = args.get(i) else {
                    eprintln!("--port-file needs a file path");
                    return ExitCode::FAILURE;
                };
                port_file = Some(PathBuf::from(path));
            }
            "--store" => {
                i += 1;
                let Some(dir) = args.get(i) else {
                    eprintln!("--store needs a directory");
                    return ExitCode::FAILURE;
                };
                // One flag, one store: the serve store and the local
                // resume store are the same directory, so `submit
                // --local` and a server share hits.
                store_dir = Some(PathBuf::from(dir));
                ex::set_resume_dir(Some(PathBuf::from(dir)));
            }
            "--connect" => {
                i += 1;
                let Some(addr) = args.get(i) else {
                    eprintln!("--connect needs HOST:PORT");
                    return ExitCode::FAILURE;
                };
                connect_addr = Some(addr.clone());
            }
            "--apps" => {
                i += 1;
                let Some(list) = args.get(i) else {
                    eprintln!("--apps needs a comma-separated list (e.g. GEMM,BFS)");
                    return ExitCode::FAILURE;
                };
                apps_raw = Some(list.clone());
            }
            "--policies" => {
                i += 1;
                let Some(list) = args.get(i) else {
                    eprintln!("--policies needs a comma-separated list (e.g. grit,on-touch)");
                    return ExitCode::FAILURE;
                };
                policies_raw = Some(list.clone());
            }
            "--shutdown" => do_shutdown = true,
            "--local" => local_mode = true,
            "--retry" => do_retry = true,
            "--max-queued" => {
                i += 1;
                let Some(v) = args.get(i).and_then(|v| v.parse::<usize>().ok()) else {
                    eprintln!("--max-queued needs a cell count (0 = unbounded)");
                    return ExitCode::FAILURE;
                };
                max_queued = v;
            }
            "list" | "--list" | "-l" => {
                print_usage();
                return ExitCode::SUCCESS;
            }
            other => targets.push(other.to_string()),
        }
        i += 1;
    }
    ex::set_override_spec(Some(ospec.clone()));

    // Trace tooling takes positional arguments.
    if targets.first().map(String::as_str) == Some("dump-trace") {
        let (Some(app), Some(path)) = (targets.get(1), targets.get(2)) else {
            eprintln!("usage: repro dump-trace <APP> <PATH> [--scale X]");
            return ExitCode::FAILURE;
        };
        return if dump_trace(app, path, &exp) {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }
    if targets.first().map(String::as_str) == Some("trace-info") {
        let Some(path) = targets.get(1) else {
            eprintln!("usage: repro trace-info <PATH>");
            return ExitCode::FAILURE;
        };
        return if trace_info(path) {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }
    if targets.first().map(String::as_str) == Some("profile") {
        let Some(path) = targets.get(1) else {
            eprintln!("usage: repro profile <run_report.json>");
            return ExitCode::FAILURE;
        };
        return if cmd_profile(path) {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }
    if targets.first().map(String::as_str) == Some("bench-diff") {
        let (Some(a), Some(b)) = (targets.get(1), targets.get(2)) else {
            eprintln!("usage: repro bench-diff <A.json> <B.json> [--threshold PCT]");
            return ExitCode::FAILURE;
        };
        return if cmd_bench_diff(a, b, threshold) {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }
    if targets.first().map(String::as_str) == Some("submit") {
        let mut base = ospec.clone().scale(exp.scale).intensity(exp.intensity).seed(exp.seed);
        if trace_path.is_some() {
            base = base.trace(true).trace_sample(trace_sample);
            if let Some(filter) = &trace_filter_raw {
                base = base.trace_filter(filter);
            }
        }
        return cmd_submit(&SubmitArgs {
            base,
            connect: connect_addr,
            apps: apps_raw,
            policies: policies_raw,
            shutdown: do_shutdown,
            local: local_mode,
            retry: do_retry,
            trace_path,
        });
    }

    // A half-finished campaign must not silently clobber a report the user
    // still needs; make replacement an explicit decision.
    if let Some(dir) = &metrics_dir {
        let path = dir.join("run_report.json");
        if path.exists() && !force {
            eprintln!(
                "refusing to overwrite existing {}; pass --force to replace it",
                path.display()
            );
            return ExitCode::FAILURE;
        }
    }

    let serve_mode = targets.first().map(String::as_str) == Some("serve");
    if serve_mode && targets.len() > 1 {
        eprintln!("serve takes no figure targets");
        return ExitCode::FAILURE;
    }

    if targets.iter().any(|t| t == "all") {
        // Every figure, capped by the digest — which reuses the fig17 and
        // fig18 tables computed moments earlier.
        targets = FIGURES.iter().map(|(n, _)| n.to_string()).collect();
        targets.push("summary".to_string());
    }
    if targets.is_empty() {
        print_usage();
        return ExitCode::FAILURE;
    }

    if let Some(path) = &trace_path {
        if serve_mode {
            // A global trace writer would disable the shared store for
            // every client; served cells opt into tracing per spec.
            eprintln!("serve ignores --trace; clients request traces per cell");
        } else {
            let cfg = TraceConfig {
                categories: trace_mask,
                sample_every: trace_sample,
            };
            if let Err(e) = trace_writer::install_global(cfg, path) {
                eprintln!("cannot create trace file {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }
    if metrics_dir.is_some() || emit_bench {
        report_sink::enable();
    }
    if profile_on {
        grit_prof::set_enabled(true);
    }
    if profile_out.is_some() {
        grit_prof::set_capture(true);
    }

    eprintln!(
        "[repro] scale={} intensity={} seed={:#x} jobs={} sim-threads={}",
        exp.scale,
        exp.intensity,
        exp.seed,
        ex::effective_jobs(),
        ex::effective_sim_threads()
    );
    let mut cache = TableCache::default();
    let t0 = Instant::now();
    if serve_mode {
        let mut sopts = grit_serve::ServeOptions::new()
            .port(port)
            .jobs(ex::effective_jobs())
            .max_queued(max_queued);
        if let Some(pf) = &port_file {
            sopts = sopts.port_file(pf);
        }
        let dir = store_dir.clone().unwrap_or_else(|| PathBuf::from(".grit-serve-store"));
        let started = Instant::now();
        match grit::service::serve(&sopts, Some(dir), store_max_bytes) {
            Ok(s) => {
                report_sink::record_target("serve", started.elapsed().as_secs_f64());
                eprintln!(
                    "[repro] serve: {} cells ({} store hits, {} errors) over {} connections",
                    s.cells, s.store_hits, s.errors, s.connections
                );
            }
            Err(e) => {
                eprintln!("serve: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        for t in &targets {
            eprintln!("[repro] running {t} ...");
            let started = Instant::now();
            if !run_figure(t, &exp, &csv_dir, &mut cache) {
                eprintln!("unknown figure: {t}");
                print_usage();
                return ExitCode::FAILURE;
            }
            let seconds = started.elapsed().as_secs_f64();
            report_sink::record_target(t, seconds);
            eprintln!("[repro] {t} time: {seconds:.2}s");
            if ex::fail_fast_triggered() {
                eprintln!(
                    "[repro] fail-fast: a cell failed during {t}; skipping remaining targets"
                );
                break;
            }
        }
    }
    let total_seconds = t0.elapsed().as_secs_f64();
    eprintln!(
        "[repro] total time: {total_seconds:.2}s ({} targets, {} jobs)",
        targets.len(),
        ex::effective_jobs()
    );

    if trace_path.is_some() {
        if let Err(e) = trace_writer::flush_global() {
            eprintln!("trace: flush failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    if profile_on {
        let totals: Vec<PhaseEntry> = grit_prof::phase_totals()
            .iter()
            .filter(|t| t.count > 0)
            .map(|t| PhaseEntry {
                phase: t.phase.name().to_string(),
                nanos: t.nanos,
                count: t.count,
            })
            .collect();
        if totals.is_empty() {
            eprintln!("[repro] profile: no spans recorded");
        } else {
            eprintln!("[repro] wall-clock phases:");
            eprint!("{}", render_phase_table(&totals));
        }
    }
    if let Some(path) = &profile_out {
        let (events, dropped) = grit_prof::drain_events();
        if let Err(e) = fs::write(path, grit_prof::chrome_trace_json(&events, dropped)) {
            eprintln!("cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!(
            "[repro] wrote {} ({} span events, {} dropped)",
            path.display(),
            events.len(),
            dropped
        );
    }
    let jobs = ex::effective_jobs();
    if let Some(dir) = &metrics_dir {
        let report = report_sink::build_report(&exp, jobs, total_seconds);
        let path = dir.join("run_report.json");
        if let Err(e) = fs::write(&path, format!("{}\n", report.to_json())) {
            eprintln!("cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!(
            "[repro] wrote {} ({} cells)",
            path.display(),
            report.cells.len()
        );
    }
    if emit_bench || metrics_dir.is_some() {
        let bench = report_sink::build_bench_summary(&exp, jobs, total_seconds);
        let name = if bench_baseline {
            "BENCH_baseline.json"
        } else {
            "BENCH_run.json"
        };
        let path = metrics_dir.as_deref().unwrap_or_else(|| std::path::Path::new(".")).join(name);
        if let Err(e) = fs::write(&path, format!("{}\n", bench.to_json())) {
            eprintln!("cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("[repro] wrote {}", path.display());
    }
    if ex::fail_fast_triggered() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
