//! Glue between the campaign server (`grit-serve`) and the experiment
//! engine: turns a serialized [`RunSpec`] into a [`CellSpec`], runs it
//! through the resilient batch executor, and packages the outcome for
//! the wire.
//!
//! `grit-serve` itself knows nothing about simulations — it executes
//! cells through an opaque [`SpecRunner`] callback. This module is the
//! one place that callback is implemented for real, which keeps the
//! dependency arrow pointing the right way (`grit` → `grit-serve`, not
//! the reverse) and means every served cell goes through exactly the
//! same engine — workload cache, result store, catch-unwind isolation —
//! as a `repro` batch run.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use grit_serve::{ServeOptions, ServeSummary, Server, SpecFailure, SpecResult, SpecRunner};
use grit_sim::{RunSpec, SimConfig};
use grit_trace::{CategoryMask, TraceConfig};
use grit_workloads::App;

use crate::experiments::{run_batch_with, BatchOptions, CellSpec, ExpConfig, PolicyKind};

/// Resolves a wire-level [`RunSpec`] into a runnable [`CellSpec`].
///
/// # Errors
///
/// A message naming the offending field: unknown app or policy label,
/// or machine knobs [`RunSpec::apply_to`] rejects.
pub fn parse_spec_cell(spec: &RunSpec) -> Result<CellSpec, String> {
    let app = App::parse(&spec.app).ok_or_else(|| format!("unknown app '{}'", spec.app))?;
    let policy = PolicyKind::parse(&spec.policy)
        .ok_or_else(|| format!("unknown policy '{}'", spec.policy))?;
    let mut cfg = SimConfig::default();
    spec.apply_to(&mut cfg).map_err(|e| e.to_string())?;
    let exp = ExpConfig {
        scale: spec.scale,
        intensity: spec.intensity,
        seed: spec.seed,
    };
    let mut cell = CellSpec::new(app, policy, &exp).with_cfg(cfg);
    if spec.trace {
        let categories = match &spec.trace_filter {
            Some(filter) => CategoryMask::parse(filter)?,
            None => CategoryMask::ALL,
        };
        cell = cell.traced(TraceConfig {
            categories,
            sample_every: spec.trace_sample.max(1),
        });
    }
    Ok(cell)
}

/// Runs one spec through the batch engine, honoring the spec's own
/// execution knobs (`sim_threads`, `timeout_secs`) plus the server's
/// shared store.
pub fn run_spec(
    spec: &RunSpec,
    store_dir: Option<&Path>,
    store_max_bytes: Option<u64>,
) -> Result<SpecResult, SpecFailure> {
    let cell =
        parse_spec_cell(spec).map_err(|message| SpecFailure::new("invalid-spec", message))?;
    let mut opts = BatchOptions::from(spec);
    if let Some(dir) = store_dir {
        opts = opts.resume_dir(dir);
    }
    if let Some(bytes) = store_max_bytes {
        opts = opts.store_max_bytes(bytes);
    }
    let mut results = run_batch_with(std::slice::from_ref(&cell), &opts);
    match results.pop().expect("one cell in, one result out") {
        Ok(out) => {
            let mut res = SpecResult::default();
            res.store_hit = out.timing.resumed;
            res.total_cycles = out.metrics.total_cycles;
            res.accesses = out.metrics.accesses;
            res.local_faults = out.metrics.faults.local_faults;
            res.migrations = out.metrics.faults.migrations;
            res.sim_seconds = out.timing.sim_seconds;
            res.trace_lines = out
                .events
                .as_deref()
                .unwrap_or_default()
                .iter()
                .map(|ev| ev.to_json().to_string())
                .collect();
            Ok(res)
        }
        Err(err) => Err(SpecFailure::new(err.status(), err.to_string())),
    }
}

/// Builds the production [`SpecRunner`]: every cell (from any client)
/// shares this process's workload cache and the given result store.
pub fn spec_runner(store_dir: Option<PathBuf>, store_max_bytes: Option<u64>) -> SpecRunner {
    Arc::new(move |spec: &RunSpec| run_spec(spec, store_dir.as_deref(), store_max_bytes))
}

/// Starts a campaign server and blocks until a client asks it to shut
/// down. Prints the bound address to stderr (and to `opts.port_file`
/// when set) so scripts started with port 0 can find it.
///
/// # Errors
///
/// Bind or port-file failures, as a message.
pub fn serve(
    opts: &ServeOptions,
    store_dir: Option<PathBuf>,
    store_max_bytes: Option<u64>,
) -> Result<ServeSummary, String> {
    let server = Server::start(opts, spec_runner(store_dir, store_max_bytes))?;
    eprintln!("repro serve: listening on {}", server.local_addr());
    Ok(server.run())
}
