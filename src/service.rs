//! Glue between the campaign server (`grit-serve`) and the experiment
//! engine: turns a serialized [`RunSpec`] into a [`CellSpec`], runs it
//! through the resilient batch executor, and packages the outcome for
//! the wire.
//!
//! `grit-serve` itself knows nothing about simulations — it executes
//! cells through an opaque [`SpecRunner`] callback. This module is the
//! one place that callback is implemented for real, which keeps the
//! dependency arrow pointing the right way (`grit` → `grit-serve`, not
//! the reverse) and means every served cell goes through exactly the
//! same engine — workload cache, result store, catch-unwind isolation —
//! as a `repro` batch run.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use grit_serve::{ServeOptions, ServeSummary, Server, SpecFailure, SpecResult, SpecRunner};
use grit_sim::{RunSpec, SimConfig};
use grit_trace::{CategoryMask, TraceConfig};
use grit_workloads::App;

use crate::experiments::{run_batch_with_stats, BatchOptions, CellSpec, ExpConfig, PolicyKind};

/// Per-cell deadline applied by the server when the spec carries none,
/// so one runaway cell cannot wedge a shared campaign server forever.
pub const DEFAULT_CELL_TIMEOUT_SECS: f64 = 600.0;

/// Resolves a wire-level [`RunSpec`] into a runnable [`CellSpec`].
///
/// # Errors
///
/// A message naming the offending field: unknown app or policy label,
/// or machine knobs [`RunSpec::apply_to`] rejects.
pub fn parse_spec_cell(spec: &RunSpec) -> Result<CellSpec, String> {
    let app = App::parse(&spec.app).ok_or_else(|| format!("unknown app '{}'", spec.app))?;
    let policy = PolicyKind::parse(&spec.policy)
        .ok_or_else(|| format!("unknown policy '{}'", spec.policy))?;
    let mut cfg = SimConfig::default();
    spec.apply_to(&mut cfg).map_err(|e| e.to_string())?;
    let exp = ExpConfig {
        scale: spec.scale,
        intensity: spec.intensity,
        seed: spec.seed,
    };
    let mut cell = CellSpec::new(app, policy, &exp).with_cfg(cfg);
    if spec.trace {
        let categories = match &spec.trace_filter {
            Some(filter) => CategoryMask::parse(filter)?,
            None => CategoryMask::ALL,
        };
        cell = cell.traced(TraceConfig {
            categories,
            sample_every: spec.trace_sample.max(1),
        });
    }
    Ok(cell)
}

/// Runs one spec through the batch engine, honoring the spec's own
/// execution knobs (`sim_threads`, `timeout_secs`) plus the server's
/// shared store. When the spec carries no deadline, `default_timeout`
/// (if any) is applied as a batch-level timeout — *not* written into
/// the spec, which would change its canonical store key and break the
/// resubmit-hits-the-store guarantee.
pub fn run_spec(
    spec: &RunSpec,
    store_dir: Option<&Path>,
    store_max_bytes: Option<u64>,
    default_timeout: Option<Duration>,
) -> Result<SpecResult, SpecFailure> {
    let cell =
        parse_spec_cell(spec).map_err(|message| SpecFailure::new("invalid-spec", message))?;
    let mut opts = BatchOptions::from(spec);
    if let Some(dir) = store_dir {
        opts = opts.resume_dir(dir);
    }
    if let Some(bytes) = store_max_bytes {
        opts = opts.store_max_bytes(bytes);
    }
    if spec.timeout_secs.is_none() {
        if let Some(deadline) = default_timeout {
            opts = opts.timeout(deadline);
        }
    }
    let (mut results, store) = run_batch_with_stats(std::slice::from_ref(&cell), &opts);
    match results.pop().expect("one cell in, one result out") {
        Ok(out) => {
            let mut res = SpecResult::default();
            res.store_hit = out.timing.resumed;
            res.total_cycles = out.metrics.total_cycles;
            res.accesses = out.metrics.accesses;
            res.local_faults = out.metrics.faults.local_faults;
            res.migrations = out.metrics.faults.migrations;
            res.sim_seconds = out.timing.sim_seconds;
            res.store_hits = store.hits;
            res.store_misses = store.misses;
            res.store_quarantined = store.quarantined;
            res.trace_lines = out
                .events
                .as_deref()
                .unwrap_or_default()
                .iter()
                .map(|ev| ev.to_json().to_string())
                .collect();
            Ok(res)
        }
        Err(err) => Err(SpecFailure::new(err.status(), err.to_string())),
    }
}

/// Builds the production [`SpecRunner`]: every cell (from any client)
/// shares this process's workload cache and the given result store.
/// Cells whose spec carries no deadline get none either — use
/// [`spec_runner_with`] for the served default.
pub fn spec_runner(store_dir: Option<PathBuf>, store_max_bytes: Option<u64>) -> SpecRunner {
    spec_runner_with(store_dir, store_max_bytes, None)
}

/// [`spec_runner`] with a server-side default per-cell deadline for
/// specs that carry none (`repro serve` passes
/// [`DEFAULT_CELL_TIMEOUT_SECS`] unless overridden).
pub fn spec_runner_with(
    store_dir: Option<PathBuf>,
    store_max_bytes: Option<u64>,
    default_timeout_secs: Option<f64>,
) -> SpecRunner {
    let default_timeout = default_timeout_secs.filter(|s| *s > 0.0).map(Duration::from_secs_f64);
    Arc::new(move |spec: &RunSpec| {
        run_spec(spec, store_dir.as_deref(), store_max_bytes, default_timeout)
    })
}

/// Starts a campaign server and blocks until a client asks it to shut
/// down, or SIGINT/SIGTERM arrives (drain-then-exit: queued cells are
/// answered and every open connection gets its `done` before the
/// process returns). Prints the bound address to stderr (and to
/// `opts.port_file` when set) so scripts started with port 0 can find
/// it.
///
/// Served cells whose spec carries no deadline run under
/// [`DEFAULT_CELL_TIMEOUT_SECS`].
///
/// # Errors
///
/// Bind or port-file failures, as a message.
pub fn serve(
    opts: &ServeOptions,
    store_dir: Option<PathBuf>,
    store_max_bytes: Option<u64>,
) -> Result<ServeSummary, String> {
    let runner = spec_runner_with(store_dir, store_max_bytes, Some(DEFAULT_CELL_TIMEOUT_SECS));
    let server = Server::start(opts, runner)?;
    eprintln!("repro serve: listening on {}", server.local_addr());
    #[cfg(unix)]
    drain_on_signals(server.shutdown_handle());
    Ok(server.run())
}

/// Arranges a graceful drain on SIGINT/SIGTERM. The handler itself only
/// flips a flag (the only async-signal-safe thing it may do); a
/// detached poller thread notices within ~100ms and triggers the
/// server's [`grit_serve::ShutdownHandle`], which locks and allocates
/// freely.
#[cfg(unix)]
fn drain_on_signals(handle: grit_serve::ShutdownHandle) {
    use std::sync::atomic::{AtomicBool, Ordering};

    static SIGNALLED: AtomicBool = AtomicBool::new(false);
    extern "C" fn on_signal(_signum: i32) {
        SIGNALLED.store(true, Ordering::SeqCst);
    }
    // `signal(2)` comes from the C runtime std already links; declaring
    // it directly avoids a libc crate dependency. SIG_ERR replies are
    // ignorable: worst case the default handler stays and the process
    // dies undrained, which is exactly the pre-handler behaviour.
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_signal as *const () as usize);
        signal(SIGTERM, on_signal as *const () as usize);
    }
    std::thread::spawn(move || loop {
        if SIGNALLED.load(Ordering::SeqCst) {
            eprintln!("repro serve: signal received, draining queued cells before exit");
            handle.shutdown();
            return;
        }
        std::thread::sleep(Duration::from_millis(100));
    });
}
