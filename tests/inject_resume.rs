//! Fault-injected campaigns through the resilient batch harness: an
//! interrupted `--inject` run resumed from the on-disk result store is
//! byte-identical to an uninterrupted one, and the injection schedule is
//! part of the cache identity — a cached healthy result can never be
//! served to an injected cell or vice versa.

use std::path::PathBuf;

use grit::prelude::*;
use grit_sim::{InjectConfig, SimConfig};
use grit_trace::{MetricsReport, ResilienceReport};
use grit_workloads::App;

const OUTAGE: &str = "outage@20000:wire=*:for=120000";

fn exp() -> ExpConfig {
    ExpConfig {
        scale: 0.02,
        intensity: 0.5,
        seed: 0x1217,
    }
}

fn tmp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("grit-inject-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// A cell with an explicit fault schedule (empty `spec` = healthy).
fn injected_cell(app: App, spec: &str) -> CellSpec {
    CellSpec {
        app,
        policy: PolicySpec::Kind(PolicyKind::GRIT),
        exp: exp(),
        cfg: SimConfig {
            inject: InjectConfig::parse(spec).expect("spec is grammatical"),
            ..SimConfig::with_gpus(4)
        },
        observer: None,
        prefetcher: None,
        trace: None,
    }
}

/// Canonical byte representation of a cell's result, including the
/// resilience counter series (which ride in the aux map).
fn fingerprint(r: &Result<RunOutput, CellError>) -> String {
    let out = r.as_ref().expect("cell must succeed");
    let mut s = MetricsReport::from_metrics(&out.metrics).to_json().to_string();
    let mut aux: Vec<_> = out.metrics.aux.iter().collect();
    aux.sort_by(|a, b| a.0.cmp(b.0));
    for (k, v) in aux {
        s.push_str(&format!("|{k}={v:?}"));
    }
    s
}

#[test]
fn interrupted_injected_campaign_resumes_byte_identical() {
    let cells: Vec<CellSpec> = [App::Bfs, App::Fir, App::Gemm]
        .into_iter()
        .map(|a| injected_cell(a, OUTAGE))
        .collect();

    // The uninterrupted reference campaign.
    let fresh = run_batch_with(&cells, &BatchOptions::new().jobs(1));
    let reference: Vec<String> = fresh.iter().map(fingerprint).collect();

    // The injected runs must actually have injected something, or this
    // test proves nothing.
    for r in &fresh {
        let aux: Vec<(String, Vec<f64>)> = r
            .as_ref()
            .unwrap()
            .metrics
            .aux
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        let rep = ResilienceReport::from_aux(&aux);
        assert!(rep.faults_injected > 0, "outage plan must fire: {rep:?}");
        assert!(rep.all_blocked_resolved(), "{rep:?}");
    }

    let dir = tmp_dir("resume");
    let with_store = |jobs: usize| BatchOptions::new().jobs(jobs).resume_dir(&dir);

    // "Kill" the campaign after the first cell lands in the store.
    let partial = run_batch_with(&cells[..1], &with_store(1));
    assert!(partial[0].is_ok());

    // Resume serially and in parallel: same bytes as the fresh run — the
    // fault schedule round-trips through the store untouched.
    for jobs in [1, 4] {
        let resumed = run_batch_with(&cells, &with_store(jobs));
        let got: Vec<String> = resumed.iter().map(fingerprint).collect();
        assert_eq!(got, reference, "--jobs {jobs} injected resume diverged");
        assert!(
            resumed[0].as_ref().unwrap().timing.resumed,
            "--jobs {jobs}: first cell must come from the store"
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn injection_schedule_is_part_of_the_cache_identity() {
    let dir = tmp_dir("keyed");
    let opts = BatchOptions::new().jobs(1).resume_dir(&dir);

    // Seed the store with a healthy run.
    let healthy = run_batch_with(&[injected_cell(App::Bfs, "")], &opts);
    assert!(!healthy[0].as_ref().unwrap().timing.resumed);

    // The same cell under an outage plan must be recomputed, not served
    // the healthy bytes: the schedule is baked into the resume key.
    let injected = run_batch_with(&[injected_cell(App::Bfs, OUTAGE)], &opts);
    let out = injected[0].as_ref().unwrap();
    assert!(
        !out.timing.resumed,
        "healthy cache hit leaked into an injected run"
    );
    assert_ne!(
        fingerprint(&healthy[0]),
        fingerprint(&injected[0]),
        "outage must change the result"
    );

    // Each variant still resumes against its own cached result.
    for (spec, label) in [("", "healthy"), (OUTAGE, "injected")] {
        let again = run_batch_with(&[injected_cell(App::Bfs, spec)], &opts);
        assert!(
            again[0].as_ref().unwrap().timing.resumed,
            "{label} rerun must hit its own cache entry"
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}
