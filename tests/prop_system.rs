//! Randomized end-to-end stress: arbitrary (application, policy, GPU
//! count, seed) combinations must run to completion with the driver's
//! cross-structure invariants intact (the runner re-checks them after
//! every run) and with sane aggregate metrics.

use proptest::prelude::*;

use grit::experiments::PolicyKind;
use grit::prelude::*;

fn app_strategy() -> impl Strategy<Value = App> {
    prop_oneof![
        Just(App::Bfs),
        Just(App::Bs),
        Just(App::C2d),
        Just(App::Fir),
        Just(App::Gemm),
        Just(App::Mm),
        Just(App::Sc),
        Just(App::St),
        Just(App::Vgg16),
    ]
}

fn policy_strategy() -> impl Strategy<Value = PolicyKind> {
    prop_oneof![
        Just(PolicyKind::Static(Scheme::OnTouch)),
        Just(PolicyKind::Static(Scheme::AccessCounter)),
        Just(PolicyKind::Static(Scheme::Duplication)),
        Just(PolicyKind::GRIT),
        Just(PolicyKind::Grit {
            threshold: 2,
            pa_cache: false,
            nap: true
        }),
        Just(PolicyKind::FirstTouch),
        Just(PolicyKind::Gps),
        Just(PolicyKind::GriffinDpc),
        Just(PolicyKind::Ideal),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn any_combination_runs_clean(
        app in app_strategy(),
        policy in policy_strategy(),
        gpus in 1usize..=6,
        seed in any::<u64>(),
        tight_memory in any::<bool>(),
    ) {
        let mut cfg = SimConfig::with_gpus(gpus);
        if tight_memory {
            cfg.capacity_ratio = 0.3; // force heavy eviction churn
        }
        let workload = WorkloadBuilder::new(app)
            .num_gpus(gpus)
            .scale(0.012)
            .intensity(0.4)
            .seed(seed)
            .build();
        let expected_accesses = workload.total_accesses();
        let p = policy.build(&cfg, workload.footprint_pages);
        // `Simulation::run` panics if any VM invariant breaks.
        let out = Simulation::try_new(cfg, workload, p).unwrap().try_run().unwrap();

        prop_assert_eq!(out.metrics.accesses, expected_accesses);
        prop_assert!(out.metrics.total_cycles > 0);
        prop_assert!(
            out.metrics.local_accesses + out.metrics.remote_accesses
                <= out.metrics.accesses,
            "cache hits may absorb accesses but never invent them"
        );
        // Single-GPU nodes can never share pages.
        if gpus == 1 {
            prop_assert_eq!(out.page_attrs.shared_pages, 0);
            prop_assert_eq!(out.metrics.faults.collapses, 0);
        }
    }

    #[test]
    fn single_gpu_all_policies_agree_on_fault_count(
        app in app_strategy(),
        seed in any::<u64>(),
    ) {
        // With one GPU and memory large enough for the whole footprint
        // there is no sharing and no eviction: every placement policy sees
        // exactly one cold fault per touched page.
        let mut counts = Vec::new();
        for policy in [
            PolicyKind::Static(Scheme::OnTouch),
            PolicyKind::Static(Scheme::AccessCounter),
            PolicyKind::Static(Scheme::Duplication),
            PolicyKind::GRIT,
        ] {
            let mut cfg = SimConfig::with_gpus(1);
            cfg.capacity_ratio = 1.2; // the lone GPU holds everything
            let w = WorkloadBuilder::new(app)
                .num_gpus(1)
                .scale(0.012)
                .intensity(0.4)
                .seed(seed)
                .build();
            let p = policy.build(&cfg, w.footprint_pages);
            let out = Simulation::try_new(cfg, w, p).unwrap().try_run().unwrap();
            prop_assert_eq!(out.metrics.faults.evictions, 0);
            // Migration-style policies never take protection faults; the
            // duplication scheme can (a lone GPU still writes to its own
            // read-only replica of a host-resident page).
            if matches!(
                policy,
                PolicyKind::Static(Scheme::OnTouch) | PolicyKind::Static(Scheme::AccessCounter)
            ) {
                prop_assert_eq!(out.metrics.faults.protection_faults, 0);
            }
            counts.push(out.metrics.faults.local_faults);
        }
        prop_assert!(
            counts.windows(2).all(|w| w[0] == w[1]),
            "policies diverged on a shareless run: {:?}",
            counts
        );
    }
}
