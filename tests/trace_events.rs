//! The tracer's event stream must agree exactly with the printed
//! `FaultCounters`: every counter increment has exactly one event emitted
//! at the same site, so the two can never drift.

use grit::experiments::{CellSpec, ExpConfig, PolicyKind};
use grit_sim::Scheme;
use grit_trace::{events_to_jsonl, EventCategory, Json, TraceConfig, TraceEvent};
use grit_workloads::App;

fn count(events: &[TraceEvent], cat: EventCategory) -> u64 {
    events.iter().filter(|e| e.category() == cat).count() as u64
}

#[test]
fn event_counts_match_fault_counters() {
    let exp = ExpConfig {
        scale: 0.03,
        intensity: 1.0,
        seed: 0x7A11,
    };
    let policies = [
        PolicyKind::Static(Scheme::OnTouch),
        PolicyKind::Static(Scheme::Duplication),
        PolicyKind::GRIT,
    ];
    for app in [App::Bfs, App::St] {
        for policy in policies {
            let out = CellSpec::new(app, policy, &exp).traced(TraceConfig::default()).run();
            let events = out.events.as_deref().expect("tracing was enabled");
            let f = &out.metrics.faults;
            assert_eq!(
                count(events, EventCategory::Fault),
                f.total_faults(),
                "{app:?}/{policy:?}: fault events vs counters"
            );
            assert_eq!(count(events, EventCategory::Migration), f.migrations);
            assert_eq!(count(events, EventCategory::Duplication), f.duplications);
            assert_eq!(count(events, EventCategory::Collapse), f.collapses);
            assert_eq!(count(events, EventCategory::Eviction), f.evictions);
            assert_eq!(count(events, EventCategory::SchemeChange), f.scheme_changes);
        }
    }
}

#[test]
fn every_emitted_event_serializes_and_parses() {
    let exp = ExpConfig {
        scale: 0.02,
        intensity: 0.5,
        seed: 0x7A12,
    };
    let out = CellSpec::new(App::Fir, PolicyKind::GRIT, &exp)
        .traced(TraceConfig::default())
        .run();
    let events = out.events.as_deref().expect("tracing was enabled");
    assert!(!events.is_empty(), "a GRIT run must emit events");
    let jsonl = events_to_jsonl(events);
    for (line, event) in jsonl.lines().zip(events) {
        let v = Json::parse(line).expect("every line is valid JSON");
        let back = TraceEvent::from_json(&v).expect("every line round-trips");
        assert_eq!(back, *event);
    }
}

#[test]
fn filtered_trace_keeps_only_requested_categories() {
    let exp = ExpConfig {
        scale: 0.02,
        intensity: 0.5,
        seed: 0x7A13,
    };
    let mask = grit_trace::CategoryMask::NONE
        .with(EventCategory::Fault)
        .with(EventCategory::Migration);
    let out = CellSpec::new(App::Bfs, PolicyKind::Static(Scheme::OnTouch), &exp)
        .traced(TraceConfig::filtered(mask))
        .run();
    let events = out.events.as_deref().expect("tracing was enabled");
    assert!(!events.is_empty());
    assert!(events.iter().all(|e| matches!(
        e.category(),
        EventCategory::Fault | EventCategory::Migration
    )));
}
