//! End-to-end GRIT behaviour: the policy must converge to the right scheme
//! per page class, reduce faults, and respect its design parameters.

use grit::experiments::{run_cell, ExpConfig, PolicyKind};
use grit::prelude::*;

fn exp() -> ExpConfig {
    ExpConfig::quick()
}

#[test]
fn grit_converges_to_duplication_for_read_shared_inputs() {
    // GEMM's B matrix is read by all four GPUs: after four faults GRIT
    // flips those pages to duplication and NAP propagates it (§VI-A).
    let out = run_cell(App::Gemm, PolicyKind::GRIT, &exp());
    let (_, _, dup) = out.metrics.scheme_mix.fractions();
    assert!(
        dup > 0.2,
        "GEMM under GRIT must use substantial duplication: {dup}"
    );
    assert!(out.metrics.faults.duplications > 0);
}

#[test]
fn grit_keeps_private_apps_on_touch() {
    // FIR/SC pages fault once and never reach the threshold: the entire
    // execution stays on the on-touch baseline (Fig. 19).
    for app in [App::Fir, App::Sc] {
        let out = run_cell(app, PolicyKind::GRIT, &exp());
        let (ot, _, _) = out.metrics.scheme_mix.fractions();
        assert!(ot > 0.90, "{app} must stay ~fully on-touch, got {ot}");
        // The only scheme changes come from the few read-shared halo pages
        // at partition borders.
        assert!(
            out.metrics.faults.scheme_changes <= out.page_attrs.total_pages / 20,
            "{app}: {} changes across {} pages",
            out.metrics.faults.scheme_changes,
            out.page_attrs.total_pages
        );
    }
}

#[test]
fn grit_flips_write_shared_pages_to_access_counter() {
    let out = run_cell(App::Bs, PolicyKind::GRIT, &exp());
    let (_, ac, _) = out.metrics.scheme_mix.fractions();
    assert!(ac > 0.15, "BS must shift toward access-counter: {ac}");
    assert!(out.metrics.faults.scheme_changes > 0);
    assert!(
        out.metrics.remote_accesses > 0,
        "AC pages are accessed remotely"
    );
}

#[test]
fn grit_matches_or_beats_on_touch_on_every_app() {
    for app in App::TABLE2 {
        let ot = run_cell(app, PolicyKind::Static(Scheme::OnTouch), &exp()).metrics.total_cycles;
        let grit = run_cell(app, PolicyKind::GRIT, &exp()).metrics.total_cycles;
        // GRIT starts from the on-touch baseline: on apps where on-touch
        // is right it must stay within a small overhead; elsewhere it must
        // win outright.
        assert!(
            (grit as f64) < 1.10 * ot as f64,
            "{app}: grit {grit} must be within 10% of on-touch {ot} or better"
        );
    }
}

#[test]
fn grit_reduces_total_faults_versus_on_touch() {
    let mut grit_total = 0u64;
    let mut ot_total = 0u64;
    for app in App::TABLE2 {
        ot_total += run_cell(app, PolicyKind::Static(Scheme::OnTouch), &exp())
            .metrics
            .faults
            .total_faults();
        grit_total += run_cell(app, PolicyKind::GRIT, &exp()).metrics.faults.total_faults();
    }
    assert!(
        grit_total < ot_total,
        "GRIT faults {grit_total} must undercut on-touch {ot_total} (Fig. 18)"
    );
}

#[test]
fn lower_threshold_adapts_faster() {
    // Threshold 2 changes schemes earlier than threshold 16, so it must
    // perform at least as well on the adaptation-hungry shared apps.
    for app in [App::Bfs, App::St] {
        let fast = run_cell(
            app,
            PolicyKind::Grit {
                threshold: 2,
                pa_cache: true,
                nap: true,
            },
            &exp(),
        )
        .metrics
        .total_cycles;
        let slow = run_cell(
            app,
            PolicyKind::Grit {
                threshold: 16,
                pa_cache: true,
                nap: true,
            },
            &exp(),
        )
        .metrics
        .total_cycles;
        assert!(fast < slow, "{app}: threshold 2 ({fast}) vs 16 ({slow})");
    }
}

#[test]
fn nap_accelerates_adaptation() {
    // With NAP, neighbor pages adopt the predicted scheme without reaching
    // the threshold -> fewer scheme-change interrupts per converged page
    // and at least comparable performance on neighbor-friendly BFS.
    let with = run_cell(
        App::Bfs,
        PolicyKind::Grit {
            threshold: 4,
            pa_cache: true,
            nap: true,
        },
        &exp(),
    )
    .metrics;
    let without = run_cell(
        App::Bfs,
        PolicyKind::Grit {
            threshold: 4,
            pa_cache: true,
            nap: false,
        },
        &exp(),
    )
    .metrics;
    assert!(
        with.total_cycles as f64 <= 1.05 * without.total_cycles as f64,
        "NAP must not hurt BFS: {} vs {}",
        with.total_cycles,
        without.total_cycles
    );
    // NAP propagation means fewer pages have to earn their change through
    // the full fault threshold.
    assert!(
        with.faults.scheme_changes <= without.faults.scheme_changes,
        "NAP should reduce explicit scheme changes: {} vs {}",
        with.faults.scheme_changes,
        without.faults.scheme_changes
    );
}

#[test]
fn pa_cache_absorbs_table_traffic() {
    let cfg = SimConfig::default();
    let workload = WorkloadBuilder::new(App::St).scale(0.04).intensity(1.5).build();
    // Isolate the cache: both runs keep NAP off (table_and_cache vs
    // table_only differ only in the PA-Cache bit), so the comparison is
    // identical but for where PA-Table lookups are served.
    let policy = GritPolicy::new(GritConfig::table_and_cache(&cfg), workload.footprint_pages);
    // Drive through the full system, then inspect the policy indirectly:
    // a second, identical run with the PA-Cache disabled must charge more
    // decision latency, visible as extra host-class cycles.
    let with_cache = Simulation::try_new(cfg.clone(), workload, Box::new(policy))
        .unwrap()
        .try_run()
        .unwrap()
        .metrics
        .breakdown
        .get(LatencyClass::Host);
    let workload = WorkloadBuilder::new(App::St).scale(0.04).intensity(1.5).build();
    let no_cache = GritPolicy::new(
        grit_core::GritConfig::table_only(&cfg),
        workload.footprint_pages,
    );
    let without_cache = Simulation::try_new(cfg, workload, Box::new(no_cache))
        .unwrap()
        .try_run()
        .unwrap()
        .metrics
        .breakdown
        .get(LatencyClass::Host);
    assert!(
        with_cache < without_cache,
        "PA-Cache must reduce host-side handling: {with_cache} vs {without_cache}"
    );
}

#[test]
fn scheme_changes_only_happen_on_shared_pages() {
    // Per §V-C a private page faults once and never re-registers; scheme
    // changes therefore imply sharing. Run GRIT and verify no app records
    // more scheme changes than it has shared pages (each page can flip
    // between schemes a handful of times).
    for app in App::TABLE2 {
        let out = run_cell(app, PolicyKind::GRIT, &exp());
        let shared = out.page_attrs.shared_pages;
        let changes = out.metrics.faults.scheme_changes;
        assert!(
            changes <= shared * 8,
            "{app}: {changes} scheme changes for {shared} shared pages"
        );
        if shared == 0 {
            assert_eq!(
                changes, 0,
                "{app}: private-only app must never change schemes"
            );
        }
    }
}
