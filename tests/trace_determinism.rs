//! The trace stream must be independent of the worker count: the parallel
//! batch executor submits events in declaration order after the barrier,
//! so `--jobs 1` and `--jobs 4` produce byte-identical streams.

use grit::experiments::{run_batch_with, BatchOptions, CellSpec, ExpConfig, PolicyKind};
use grit_sim::Scheme;
use grit_trace::{events_to_jsonl, TraceConfig};
use grit_workloads::App;

fn grid() -> Vec<CellSpec> {
    let exp = ExpConfig {
        scale: 0.02,
        intensity: 0.5,
        seed: 0xD37,
    };
    [App::Bfs, App::Fir]
        .into_iter()
        .flat_map(|app| {
            [PolicyKind::Static(Scheme::OnTouch), PolicyKind::GRIT]
                .map(|p| CellSpec::new(app, p, &exp).traced(TraceConfig::default()))
        })
        .collect()
}

/// Concatenated JSONL of the whole batch, in declaration order.
fn stream(jobs: usize) -> String {
    run_batch_with(&grid(), &BatchOptions::new().jobs(jobs))
        .iter()
        .map(|out| {
            let out = out.as_ref().expect("cell must succeed");
            events_to_jsonl(out.events.as_deref().expect("tracing was enabled"))
        })
        .collect()
}

#[test]
fn event_stream_is_byte_identical_across_worker_counts() {
    let serial = stream(1);
    assert!(!serial.is_empty(), "the grid must emit events");
    let parallel = stream(4);
    assert_eq!(
        serial, parallel,
        "trace streams diverge between --jobs 1 and --jobs 4"
    );
}
