//! Chaos tests for the campaign service: every fault is injected on a
//! deterministic byte/line schedule (via [`grit_serve::ChaosProxy`]) or
//! through explicit process control (SIGKILL, gated runners), so each
//! scenario replays identically at `--jobs 1` and `--jobs 4`.
//!
//! Covered invariants:
//!
//! * A campaign severed mid-submission and finished by
//!   `repro submit --retry` against a restarted server (same port, same
//!   store, the original SIGKILLed) renders a byte-identical table —
//!   even when the retry connection duplicates every response line.
//! * Corrupted store entries are quarantined exactly once, re-run, and
//!   surfaced through the client-visible counters.
//! * A client that stops reading is cut loose (bounded sink + write
//!   timeout) while concurrent clients keep declaration order.
//! * An over-bound queue answers `busy` + `retry_after_ms`, and backing
//!   off then resubmitting succeeds.
//! * A request stream truncated mid-line yields a per-line `error`
//!   response and the server keeps serving.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use grit_serve::{
    ChaosFault, ChaosProxy, Request, Response, ServeClient, ServeOptions, Server, SpecResult,
    SpecRunner,
};
use grit_sim::RunSpec;
use grit_trace::Json;

fn scratch_dir(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("grit-chaos-{label}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

const EXP_FLAGS: [&str; 6] = ["--scale", "0.02", "--intensity", "0.5", "--seed", "4919"];

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

/// `repro submit --local`: the uninterrupted reference rendering.
fn submit_local(jobs: &str, apps: &str) -> String {
    let out = repro()
        .arg("submit")
        .arg("--local")
        .args(["--jobs", jobs])
        .args(["--apps", apps])
        .args(["--policies", "grit,on-touch"])
        .args(EXP_FLAGS)
        .output()
        .expect("run repro submit --local");
    assert!(
        out.status.success(),
        "submit --local failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("stdout utf8")
}

fn spawn_server(port: u16, port_file: &PathBuf, store: &PathBuf, jobs: &str) -> Child {
    repro()
        .arg("serve")
        .args(["--port", &port.to_string()])
        .arg("--port-file")
        .arg(port_file)
        .arg("--store")
        .arg(store)
        .args(["--jobs", jobs])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn repro serve")
}

fn wait_for_port(port_file: &PathBuf, server: &mut Child) -> String {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Ok(text) = std::fs::read_to_string(port_file) {
            let addr = text.trim().to_string();
            if !addr.is_empty() {
                return addr;
            }
        }
        if let Some(status) = server.try_wait().expect("poll server") {
            panic!("server exited early: {status}");
        }
        assert!(
            Instant::now() < deadline,
            "server never wrote {port_file:?}"
        );
        thread::sleep(Duration::from_millis(50));
    }
}

/// An OS-assigned free port the next bind can (racily but reliably in
/// practice) reuse — needed so a killed server can be restarted at the
/// address the chaos proxy targets.
fn free_port() -> u16 {
    TcpListener::bind(("127.0.0.1", 0))
        .expect("probe bind")
        .local_addr()
        .unwrap()
        .port()
}

fn shutdown_server(addr: &str, server: &mut Child) {
    let out = repro()
        .arg("submit")
        .args(["--connect", addr])
        .arg("--shutdown")
        .output()
        .expect("run repro submit --shutdown");
    assert!(
        out.status.success(),
        "shutdown failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let _ = server.wait();
}

/// SIGKILL a campaign server after it persisted part of the campaign,
/// restart it on the same port and store, and finish the whole campaign
/// with `repro submit --retry` through a chaos proxy that severs the
/// first connection mid-submission and duplicates every response line
/// of the second. The table must match the uninterrupted run byte for
/// byte, with the pre-kill cells arriving as store hits.
fn kill_retry_scenario(jobs: &str) {
    let scratch = scratch_dir(&format!("kill-retry-{jobs}"));
    let store = scratch.join("store");
    let reference = submit_local(jobs, "GEMM,BFS");
    assert!(
        reference.contains("campaign total cycles"),
        "unexpected table: {reference}"
    );

    let port = free_port();
    let port_file_a = scratch.join("port-a.txt");
    let mut server_a = spawn_server(port, &port_file_a, &store, jobs);
    let addr = wait_for_port(&port_file_a, &mut server_a);

    // Half the campaign lands in the store...
    let out = repro()
        .arg("submit")
        .args(["--connect", &addr])
        .args(["--apps", "GEMM"])
        .args(["--policies", "grit,on-touch"])
        .args(EXP_FLAGS)
        .output()
        .expect("run repro submit");
    assert!(
        out.status.success(),
        "partial submit failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // ... then the server dies without cleanup and is restarted on the
    // same port over the same store.
    server_a.kill().expect("SIGKILL server");
    let _ = server_a.wait();
    let port_file_b = scratch.join("port-b.txt");
    let mut server_b = spawn_server(port, &port_file_b, &store, jobs);
    let addr_b = wait_for_port(&port_file_b, &mut server_b);
    assert_eq!(addr_b, addr, "restart did not reuse the port");

    // Attempt 1 is severed after 64 request bytes (mid first submit
    // line); attempt 2 goes through but every response line arrives
    // twice, so resolution must be idempotent.
    let target: SocketAddr = addr.parse().expect("server addr");
    let proxy = ChaosProxy::start(
        target,
        vec![
            ChaosFault::CloseAfterRequestBytes(64),
            ChaosFault::DuplicateResponseLines,
        ],
    )
    .expect("start chaos proxy");

    let out = repro()
        .arg("submit")
        .arg("--retry")
        .args(["--connect", &proxy.local_addr().to_string()])
        .args(["--apps", "GEMM,BFS"])
        .args(["--policies", "grit,on-touch"])
        .args(EXP_FLAGS)
        .env("GRIT_SUBMIT_RETRY_BASE_MS", "50")
        .output()
        .expect("run repro submit --retry");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "retry submit failed: {stderr}");
    let table = String::from_utf8(out.stdout).expect("stdout utf8");
    assert_eq!(
        table, reference,
        "kill-and-retry table differs from the uninterrupted run"
    );
    assert!(
        stderr.contains("retrying in"),
        "expected a retry on stderr, got: {stderr}"
    );
    assert!(
        stderr.contains("2 store hits"),
        "expected the pre-kill cells as store hits, got: {stderr}"
    );

    drop(proxy);
    shutdown_server(&addr, &mut server_b);
    let _ = std::fs::remove_dir_all(&scratch);
}

#[test]
fn sigkilled_server_plus_retry_renders_byte_identical_table_jobs_1() {
    kill_retry_scenario("1");
}

#[test]
fn sigkilled_server_plus_retry_renders_byte_identical_table_jobs_4() {
    kill_retry_scenario("4");
}

/// Store files in the top-level store directory (quarantined files are
/// moved into `quarantine/` and must not be counted here).
fn store_entries(store: &PathBuf) -> Vec<PathBuf> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(store)
        .expect("read store dir")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_file())
        .collect();
    entries.sort();
    entries
}

#[test]
fn corrupt_store_entries_are_quarantined_once_and_rerun() {
    let scratch = scratch_dir("quarantine");
    let store = scratch.join("store");
    let port_file = scratch.join("port.txt");
    let mut server = spawn_server(0, &port_file, &store, "2");
    let addr = wait_for_port(&port_file, &mut server);

    let campaign = |label: &str| -> (String, String) {
        let out = repro()
            .arg("submit")
            .args(["--connect", &addr])
            .args(["--apps", "GEMM"])
            .args(["--policies", "grit,on-touch"])
            .args(EXP_FLAGS)
            .output()
            .expect("run repro submit");
        assert!(
            out.status.success(),
            "{label} submit failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        (
            String::from_utf8(out.stdout).expect("stdout utf8"),
            String::from_utf8(out.stderr).expect("stderr utf8"),
        )
    };

    let (table1, status1) = campaign("first");
    assert!(
        status1.contains("2 cells, 0 store hits"),
        "fresh run hit the store: {status1}"
    );

    // Flip one digit inside a persisted payload; the checksum no longer
    // matches, so serving this file would return altered results.
    let entries = store_entries(&store);
    assert_eq!(
        entries.len(),
        2,
        "expected 2 store entries, got {entries:?}"
    );
    let victim = &entries[0];
    let text = std::fs::read_to_string(victim).expect("read store entry");
    let corrupted = text.replacen("\"total_cycles\":", "\"total_cycles\":9", 1);
    assert_ne!(text, corrupted, "corruption had no effect on {victim:?}");
    std::fs::write(victim, corrupted).expect("write corrupted entry");

    let (table2, status2) = campaign("corrupted");
    assert!(
        status2.contains("server quarantined 1 corrupt store files"),
        "expected one quarantine, got: {status2}"
    );
    assert!(
        status2.contains("2 cells, 1 store hits"),
        "expected 1 hit + 1 re-run: {status2}"
    );
    assert_eq!(table2, table1, "re-run after quarantine changed the table");
    let quarantine = store.join("quarantine");
    assert_eq!(
        store_entries(&quarantine).len(),
        1,
        "quarantine dir should hold the bad file"
    );

    // The re-run refilled the slot: a third pass is all hits and
    // quarantines nothing more.
    let (table3, status3) = campaign("healed");
    assert!(
        status3.contains("2 cells, 2 store hits"),
        "expected all hits: {status3}"
    );
    assert!(
        !status3.contains("quarantined"),
        "no second quarantine expected: {status3}"
    );
    assert_eq!(table3, table1);
    assert_eq!(store_entries(&quarantine).len(), 1);

    shutdown_server(&addr, &mut server);
    let _ = std::fs::remove_dir_all(&scratch);
}

/// A stub runner: instant results, `total_cycles` echoing the spec seed
/// and, for the `STALL` app, a multi-megabyte trace payload that will
/// wedge any client that stops reading.
fn stub_runner() -> (SpecRunner, Arc<AtomicU64>) {
    let ran = Arc::new(AtomicU64::new(0));
    let ran2 = Arc::clone(&ran);
    let runner: SpecRunner = Arc::new(move |spec: &RunSpec| {
        ran2.fetch_add(1, Ordering::SeqCst);
        let mut res = SpecResult::default();
        res.total_cycles = spec.seed;
        if spec.app == "STALL" {
            // ~4 MiB of valid trace JSON per cell: far past any socket
            // buffer, so a non-reading client forces the write timeout.
            res.trace_lines = vec![format!("{{\"pad\":\"{}\"}}", "x".repeat(1024)); 4096];
        }
        Ok(res)
    });
    (runner, ran)
}

/// One client stops reading mid-campaign; the write timeout + bounded
/// sink cut it loose, and the three healthy clients still get complete,
/// declaration-ordered campaigns. The server draining to completion is
/// itself the proof: an unbounded sink would leave `run()` waiting on
/// the wedged connection forever.
fn stalled_reader_scenario(jobs: usize) {
    let (runner, _ran) = stub_runner();
    let server = Server::start(
        &ServeOptions::new().jobs(jobs).max_sink_bytes(256 * 1024).write_timeout_ms(250),
        runner,
    )
    .expect("start server");
    let addr = server.local_addr();
    let handle = server.shutdown_handle();
    let server_thread = thread::spawn(move || server.run());

    // The stalled client: submits traced cells, then never reads.
    let mut stalled = TcpStream::connect(addr).expect("stalled connect");
    for id in 0..2u64 {
        let spec = RunSpec::new("STALL", "grit").seed(7).trace(true);
        let line = format!("{}\n", Request::Submit { id, spec }.to_json());
        stalled.write_all(line.as_bytes()).expect("stalled submit");
    }

    let clients: Vec<_> = (0..3)
        .map(|c| {
            thread::spawn(move || {
                let mut client = ServeClient::connect(addr).expect("connect");
                for id in 0..20u64 {
                    let spec = RunSpec::new("FAST", "grit").seed(1000 + id * 10 + c);
                    client.submit(id, &spec).expect("submit");
                }
                let outcome = client.finish().expect("finish");
                assert_eq!(outcome.errors, Vec::<String>::new());
                assert_eq!(outcome.results.len(), 20, "client {c} lost results");
                for (i, r) in outcome.results.iter().enumerate() {
                    assert_eq!(r.id, i as u64, "client {c}: result {i} out of order");
                    assert_eq!(
                        r.total_cycles,
                        1000 + r.id * 10 + c,
                        "client {c}: wrong payload"
                    );
                }
            })
        })
        .collect();
    for c in clients {
        c.join().expect("client thread");
    }

    // All healthy clients are done; drain. This hangs (and the test
    // harness times out) if the stalled connection can pin the server.
    handle.shutdown();
    let summary = server_thread.join().expect("server thread");
    drop(stalled);
    assert_eq!(summary.errors, 0);
    assert!(
        summary.cells >= 60,
        "healthy campaigns incomplete: {summary:?}"
    );
}

#[test]
fn stalled_reader_is_cut_loose_while_others_keep_order_jobs_1() {
    stalled_reader_scenario(1);
}

#[test]
fn stalled_reader_is_cut_loose_while_others_keep_order_jobs_4() {
    stalled_reader_scenario(4);
}

#[test]
fn queue_overflow_answers_busy_and_resubmission_succeeds() {
    // One worker, one queue slot. The worker is parked on a gated cell,
    // a second cell fills the queue, and the third submission must be
    // answered `busy` — then succeed once the gate opens.
    let (gate_tx, gate_rx) = mpsc::channel::<()>();
    let gate = Mutex::new(gate_rx);
    let runner: SpecRunner = Arc::new(move |spec: &RunSpec| {
        if spec.app == "GATE" {
            gate.lock().unwrap().recv().expect("gate");
        }
        let mut res = SpecResult::default();
        res.total_cycles = spec.seed;
        Ok(res)
    });
    let server =
        Server::start(&ServeOptions::new().jobs(1).max_queued(1), runner).expect("start server");
    let addr = server.local_addr();
    let server_thread = thread::spawn(move || server.run());

    let mut a = ServeClient::connect(addr).expect("connect a");
    a.submit(0, &RunSpec::new("GATE", "grit").seed(1)).expect("submit gate");
    // `progress` proves the worker holds cell 0 (the queue is empty).
    loop {
        match a.next_response().expect("read a") {
            Some(Response::Progress { id: 0, .. }) => break,
            Some(_) => continue,
            None => panic!("server closed early"),
        }
    }
    a.submit(1, &RunSpec::new("FAST", "grit").seed(2)).expect("submit filler");
    loop {
        match a.next_response().expect("read a") {
            Some(Response::Accepted { id: 1 }) => break,
            Some(_) => continue,
            None => panic!("server closed early"),
        }
    }

    // The queue is provably full now; a third submission bounces.
    let mut b = ServeClient::connect(addr).expect("connect b");
    b.submit(0, &RunSpec::new("FAST", "grit").seed(3)).expect("submit over budget");
    let retry_after = match b.next_response().expect("read b") {
        Some(Response::Busy {
            id: 0,
            retry_after_ms,
        }) => retry_after_ms,
        Some(other) => panic!("expected busy, got {other:?}"),
        None => panic!("server closed early"),
    };
    assert_eq!(
        retry_after, 2_000,
        "busy must carry the documented backoff hint"
    );

    // Open the gate and resubmit: same id, same connection. The gate
    // only unblocks the worker — the queue slot frees when the worker
    // pops the filler cell, so the resubmission may still bounce a few
    // times first. Backing off and retrying is exactly the documented
    // client protocol.
    gate_tx.send(()).expect("open gate");
    let mut rejections = 1u64;
    'resubmit: loop {
        b.submit(0, &RunSpec::new("FAST", "grit").seed(3)).expect("resubmit");
        match b.next_response().expect("read b") {
            Some(Response::Busy { id: 0, .. }) => {
                rejections += 1;
                thread::sleep(Duration::from_millis(20));
            }
            Some(Response::Accepted { id: 0 }) => break 'resubmit,
            Some(other) => panic!("expected busy or accepted, got {other:?}"),
            None => panic!("server closed early"),
        }
    }
    let outcome_b = b.finish().expect("finish b");
    assert_eq!(outcome_b.results.len(), 1);
    assert_eq!(outcome_b.results[0].total_cycles, 3);

    let outcome_a = a.finish().expect("finish a");
    assert_eq!(outcome_a.results.len(), 2);
    assert_eq!(outcome_a.results[0].total_cycles, 1);
    assert_eq!(outcome_a.results[1].total_cycles, 2);

    let mut closer = ServeClient::connect(addr).expect("connect closer");
    closer.shutdown_server().expect("shutdown");
    drop(closer.finish());
    let summary = server_thread.join().expect("server thread");
    assert_eq!(summary.rejected, rejections, "every bounce was counted");
    assert_eq!(summary.cells, 3);
}

/// End-to-end flavor of the overflow scenario: a real campaign against
/// `repro serve --max-queued 1` finishes under `--retry` and renders
/// the reference table, however many submissions bounced along the way.
#[test]
fn bounded_queue_campaign_succeeds_under_retry() {
    let scratch = scratch_dir("busy-retry");
    let store = scratch.join("store");
    let port_file = scratch.join("port.txt");
    let reference = submit_local("1", "GEMM,BFS");
    let mut server = repro()
        .arg("serve")
        .args(["--port", "0"])
        .arg("--port-file")
        .arg(&port_file)
        .arg("--store")
        .arg(&store)
        .args(["--jobs", "1"])
        .args(["--max-queued", "1"])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn repro serve");
    let addr = wait_for_port(&port_file, &mut server);

    let out = repro()
        .arg("submit")
        .arg("--retry")
        .args(["--connect", &addr])
        .args(["--apps", "GEMM,BFS"])
        .args(["--policies", "grit,on-touch"])
        .args(EXP_FLAGS)
        .env("GRIT_SUBMIT_RETRY_BASE_MS", "100")
        .output()
        .expect("run repro submit --retry");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "retry submit failed: {stderr}");
    let table = String::from_utf8(out.stdout).expect("stdout utf8");
    assert_eq!(
        table, reference,
        "bounded-queue campaign diverged from the reference"
    );

    shutdown_server(&addr, &mut server);
    let _ = std::fs::remove_dir_all(&scratch);
}

#[test]
fn truncated_request_line_gets_error_and_server_keeps_serving() {
    let (runner, _ran) = stub_runner();
    let server = Server::start(&ServeOptions::new().jobs(1), runner).expect("start server");
    let addr = server.local_addr();
    let handle = server.shutdown_handle();
    let server_thread = thread::spawn(move || server.run());

    // 10 bytes of a submit line, then EOF (responses keep flowing).
    let proxy =
        ChaosProxy::start(addr, vec![ChaosFault::TruncateRequestAfterBytes(10)]).expect("proxy");
    let stream = TcpStream::connect(proxy.local_addr()).expect("connect proxy");
    stream.set_read_timeout(Some(Duration::from_secs(30))).expect("read timeout");
    let mut write = stream.try_clone().expect("clone");
    let spec = RunSpec::new("FAST", "grit").seed(1);
    let line = format!("{}\n", Request::Submit { id: 0, spec }.to_json());
    write.write_all(line.as_bytes()).expect("write truncated submit");
    let mut kinds = Vec::new();
    for raw in BufReader::new(stream).lines() {
        let raw = raw.expect("read response line");
        let v = Json::parse(&raw).expect("response is JSON");
        let resp = Response::from_json(&v).expect("response parses");
        kinds.push(match resp {
            Response::Hello { .. } => "hello",
            Response::Error { id: None, .. } => "error",
            Response::Done { results: 0 } => "done",
            other => panic!("unexpected response {other:?}"),
        });
    }
    assert_eq!(
        kinds,
        ["hello", "error", "done"],
        "torn line must get a per-line error"
    );
    drop(proxy);

    // The mangled connection cost the server nothing: a normal campaign
    // on a fresh connection completes.
    let mut client = ServeClient::connect(addr).expect("connect");
    client.submit(0, &RunSpec::new("FAST", "grit").seed(42)).expect("submit");
    let outcome = client.finish().expect("finish");
    assert_eq!(outcome.results.len(), 1);
    assert_eq!(outcome.results[0].total_cycles, 42);

    handle.shutdown();
    let summary = server_thread.join().expect("server thread");
    assert_eq!(summary.cells, 1);
}
