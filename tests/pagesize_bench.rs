//! Writes `BENCH_pagesize.json` (committed at the repo root): the
//! headline numbers of the `ext-pagesize` study at the default
//! experiment configuration. Unlike the wall-clock benches this
//! document is fully deterministic — same config, same bytes — so a
//! regeneration diff means the large-page model itself changed.
//!
//! Regenerate with:
//! `cargo test --release --test pagesize_bench -- --ignored`

use std::path::PathBuf;

use grit::experiments::{ext_pagesize, ExpConfig};
use grit_metrics::Table;

fn cell(t: &Table, row: &str, col: &str) -> f64 {
    t.cell(row, col).unwrap_or_else(|| panic!("missing table cell ({row}, {col})"))
}

#[test]
#[ignore = "full study: ~70 enlarged-input cells; run with --ignored and commit BENCH_pagesize.json"]
fn pagesize_study_benchmark() {
    let exp = ExpConfig::default();
    let s = ext_pagesize::run(&exp);
    let mut doc = format!(
        "{{\"schema\":\"grit-pagesize-bench/v1\",\"scale\":{},\"intensity\":{},\"seed\":{},\
         \"input_enlargement\":{}",
        exp.scale,
        exp.intensity,
        exp.seed,
        ext_pagesize::INPUT_ENLARGEMENT
    );
    for mode in ["uniform2m", "mixed"] {
        doc.push_str(&format!(
            ",\"speedup_{mode}\":{{\"on-touch\":{:.4},\"access-counter\":{:.4},\"grit\":{:.4}}}",
            cell(&s.speedup, mode, "on-touch"),
            cell(&s.speedup, mode, "access-counter"),
            cell(&s.speedup, mode, "grit"),
        ));
        doc.push_str(&format!(
            ",\"activity_{mode}\":{{\"coalesces\":{},\"splinters\":{},\"trips_base\":{},\
             \"trips_2m\":{},\"aliased_groups\":{}}}",
            cell(&s.activity, mode, "coalesces"),
            cell(&s.activity, mode, "splinters"),
            cell(&s.activity, mode, "trips-base"),
            cell(&s.activity, mode, "trips-2m"),
            cell(&s.activity, mode, "aliased-groups"),
        ));
    }
    doc.push_str(&format!(
        ",\"tlb_2m\":{{\"l1_hit_uniform2m\":{:.4},\"l2_hit_uniform2m\":{:.4}}}}}\n",
        cell(&s.tlb, "uniform2m", "l1-2m"),
        cell(&s.tlb, "uniform2m", "l2-2m"),
    ));

    // The study must have real large-page traffic at the default config,
    // or the committed numbers are vacuous.
    assert!(cell(&s.activity, "mixed", "coalesces") > 0.0);
    assert!(cell(&s.activity, "mixed", "splinters") > 0.0);

    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("BENCH_pagesize.json");
    std::fs::write(&path, &doc).expect("write BENCH_pagesize.json");
    eprintln!("wrote {}: {doc}", path.display());
}
