//! Wire-schema pins for `grit-serve/v1`.
//!
//! The golden fixture `tests/golden/serve_v1.jsonl` holds one line per
//! protocol message. Each line must (a) parse into the typed message,
//! (b) re-serialize byte-identically, so the on-the-wire encoding can
//! never drift silently. Re-bless after an intentional protocol change:
//! `GRIT_BLESS=1 cargo test --test serve_wire`.

use std::fs;
use std::path::PathBuf;

use grit_serve::{CellResult, Request, Response};
use grit_sim::RunSpec;
use grit_trace::Json;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/serve_v1.jsonl")
}

/// One of every message, exercising both sparse and fully-loaded specs.
fn exemplar_lines() -> Vec<String> {
    let plain = RunSpec::new("GEMM", "grit");
    let loaded = RunSpec::new("BFS", "on-touch")
        .scale(0.25)
        .intensity(1.5)
        .seed(42)
        .gpus(8)
        .page_size(2 * 1024 * 1024)
        .topology("nvswitch")
        .inject("retire@10:gpu=0:frames=1")
        .check_invariants(true)
        .sim_threads(2)
        .timeout_secs(30.0)
        .trace(true)
        .trace_filter("fault,migration")
        .trace_sample(16)
        .profile(true);
    let requests = [
        Request::Submit { id: 0, spec: plain },
        Request::Submit {
            id: 1,
            spec: loaded,
        },
        Request::Ping,
        Request::Shutdown,
    ];
    let responses = [
        Response::Hello {
            version: "0.1.0".into(),
        },
        Response::Accepted { id: 0 },
        Response::Progress {
            id: 0,
            state: "running".into(),
        },
        Response::Trace {
            id: 1,
            event: Json::Obj(vec![
                ("type".into(), Json::Str("fault".into())),
                ("cycle".into(), Json::UInt(1024)),
            ]),
        },
        Response::Result({
            let mut r = CellResult::default();
            r.status = "ok".into();
            r.store_hit = true;
            r.total_cycles = 140_740;
            r.accesses = 65_536;
            r.local_faults = 128;
            r.migrations = 32;
            r.sim_seconds = 0.125;
            r
        }),
        Response::Result({
            let mut r = CellResult::default();
            r.id = 1;
            r.status = "timed-out".into();
            r.error = Some("cell exceeded its 30s budget".into());
            r
        }),
        Response::Pong,
        Response::Error {
            id: Some(7),
            message: "unknown app 'quake'".into(),
        },
        Response::Done { results: 2 },
    ];
    requests
        .iter()
        .map(|r| r.to_json().to_string())
        .chain(responses.iter().map(|r| r.to_json().to_string()))
        .collect()
}

#[test]
fn golden_v1_lines_parse_and_reserialize_byte_identically() {
    let actual: String = exemplar_lines().iter().map(|l| format!("{l}\n")).collect();
    let path = golden_path();
    if std::env::var_os("GRIT_BLESS").is_some() {
        fs::write(&path, &actual).expect("write golden");
        return;
    }
    let expected = fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden fixture {}: {e}", path.display()));
    assert_eq!(
        actual, expected,
        "the grit-serve/v1 encoding drifted from tests/golden/serve_v1.jsonl"
    );
    // Every fixture line must survive a full parse -> reserialize loop.
    for line in expected.lines() {
        let v = Json::parse(line).expect("fixture line is JSON");
        let reserialized = match Request::from_json(&v) {
            Ok(req) => req.to_json().to_string(),
            Err(_) => Response::from_json(&v)
                .unwrap_or_else(|e| panic!("unparseable fixture line {line}: {e}"))
                .to_json()
                .to_string(),
        };
        assert_eq!(reserialized, line, "round trip changed the bytes");
    }
}

#[test]
fn unknown_fields_from_a_newer_peer_are_ignored() {
    // A hypothetical v1.1 server/client may add fields; v1 must parse
    // the line and drop what it does not know.
    let future_result = r#"{"schema":"grit-serve/v1","type":"result","id":3,"status":"ok",
        "store_hit":false,"total_cycles":9,"accesses":9,"local_faults":0,"migrations":0,
        "sim_seconds":0.5,"energy_joules":12.5,"carbon_grams":0.01}"#;
    let resp = Response::from_json(&Json::parse(future_result).unwrap()).unwrap();
    let Response::Result(r) = resp else {
        panic!("parsed as {resp:?}")
    };
    assert_eq!((r.id, r.total_cycles), (3, 9));

    let future_submit = r#"{"schema":"grit-serve/v1","type":"submit","id":1,"priority":"high",
        "spec":{"app":"FIR","policy":"ideal","scale":0.5,"gpu_clock_mhz":1410}}"#;
    let req = Request::from_json(&Json::parse(future_submit).unwrap()).unwrap();
    let Request::Submit { spec, .. } = req else {
        panic!("parsed as {req:?}")
    };
    assert_eq!(spec.app, "FIR");
    assert_eq!(spec.scale, 0.5);
    // Unknown spec fields fall back to defaults, not errors.
    assert_eq!(spec.seed, grit_sim::spec::DEFAULT_SEED);
}

#[test]
fn missing_required_fields_are_rejected_with_field_names() {
    let no_spec = r#"{"schema":"grit-serve/v1","type":"submit","id":1}"#;
    let err = Request::from_json(&Json::parse(no_spec).unwrap()).unwrap_err();
    assert!(err.contains("spec"), "unhelpful error: {err}");
    let no_policy = r#"{"schema":"grit-serve/v1","type":"submit","id":1,"spec":{"app":"BFS"}}"#;
    let err = Request::from_json(&Json::parse(no_policy).unwrap()).unwrap_err();
    assert!(err.contains("policy"), "unhelpful error: {err}");
}
