//! End-to-end check of the `repro` observability flags: the trace stream,
//! `run_report.json`, and `BENCH_run.json` must be valid and agree with
//! each other.

use std::collections::HashMap;
use std::fs;
use std::path::PathBuf;
use std::process::Command;

use grit_trace::{BenchSummary, EventCategory, Json, RunReport, TraceEvent};

/// Per-test scratch directory: tests run concurrently, so each owns a
/// distinct tree it can wipe freely.
fn scratch_dir_for(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("grit-repro-cli-{}-{label}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

#[test]
fn trace_and_reports_agree() {
    let dir = scratch_dir_for("trace");
    let trace = dir.join("trace.jsonl");
    let metrics = dir.join("metrics");
    let status = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args([
            "fig18",
            "--quick",
            "--jobs",
            "2",
            "--trace",
            trace.to_str().unwrap(),
            "--metrics-out",
            metrics.to_str().unwrap(),
            "--emit-bench-json",
        ])
        .output()
        .expect("repro runs");
    assert!(
        status.status.success(),
        "repro failed: {}",
        String::from_utf8_lossy(&status.stderr)
    );

    // Every trace line parses; events are grouped under cell headers.
    let text = fs::read_to_string(&trace).expect("trace file written");
    let mut per_cell: Vec<HashMap<EventCategory, u64>> = Vec::new();
    let mut declared_events: Vec<u64> = Vec::new();
    let mut seen_in_cell = 0u64;
    for line in text.lines() {
        let v = Json::parse(line).expect("trace line is valid JSON");
        let ty = v.get("type").and_then(Json::as_str).expect("line has a type");
        if ty == "cell" {
            if let Some(expected) = declared_events.last() {
                assert_eq!(seen_in_cell, *expected, "cell header event count");
            }
            let seq = v.get("seq").and_then(Json::as_u64).expect("cell seq");
            assert_eq!(
                seq,
                per_cell.len() as u64,
                "cell sequence numbers are dense"
            );
            declared_events.push(v.get("events").and_then(Json::as_u64).expect("cell events"));
            per_cell.push(HashMap::new());
            seen_in_cell = 0;
        } else {
            let event = TraceEvent::from_json(&v).expect("event line round-trips");
            *per_cell
                .last_mut()
                .expect("events follow a header")
                .entry(event.category())
                .or_insert(0) += 1;
            seen_in_cell += 1;
        }
    }
    if let Some(expected) = declared_events.last() {
        assert_eq!(seen_in_cell, *expected, "last cell header event count");
    }
    assert!(!per_cell.is_empty(), "trace holds at least one cell");

    // The run report agrees with the trace, cell by cell.
    let report_text = fs::read_to_string(metrics.join("run_report.json")).expect("run report");
    let report = RunReport::from_json(&Json::parse(&report_text).expect("report is valid JSON"))
        .expect("report matches schema");
    assert_eq!(
        report.cells.len(),
        per_cell.len(),
        "report and trace cell counts"
    );
    assert_eq!(report.jobs, 2);
    assert!(
        !report.targets.is_empty(),
        "per-target time: lines recorded"
    );
    assert!(!report.batches.is_empty(), "batch profiles recorded");
    assert!(!report.system.is_empty(), "system parameters recorded");
    for (cell, counts) in report.cells.iter().zip(&per_cell) {
        let f = &cell.metrics.faults;
        let get = |c: EventCategory| counts.get(&c).copied().unwrap_or(0);
        assert_eq!(
            get(EventCategory::Fault),
            f.total_faults(),
            "cell {} faults",
            cell.seq
        );
        assert_eq!(
            get(EventCategory::Migration),
            f.migrations,
            "cell {} migrations",
            cell.seq
        );
        assert_eq!(get(EventCategory::Duplication), f.duplications);
        assert_eq!(get(EventCategory::Collapse), f.collapses);
        assert_eq!(get(EventCategory::Eviction), f.evictions);
        assert_eq!(get(EventCategory::SchemeChange), f.scheme_changes);
        let total: u64 = counts.values().sum();
        assert_eq!(total, cell.events_recorded, "cell {} event total", cell.seq);
    }

    // The bench summary parses and its totals line up with the report.
    let bench_text = fs::read_to_string(metrics.join("BENCH_run.json")).expect("bench json");
    let bench = BenchSummary::from_json(&Json::parse(&bench_text).expect("bench is valid JSON"))
        .expect("bench matches schema");
    assert_eq!(bench.cells_run, report.cells.len() as u64);
    assert!(
        bench.fig18_fault_geomean.is_some(),
        "fig18 ran, so its geomean is recorded"
    );
    let report_faults: u64 = report.cells.iter().map(|c| c.metrics.faults.total_faults()).sum();
    assert_eq!(bench.fault_totals.total_faults(), report_faults);
    assert!(bench.total_seconds > 0.0);

    let _ = fs::remove_dir_all(&dir);
}

/// `--profile` / `--profile-out` end to end: the report gains a `profile`
/// object, the span trace is Chrome-trace JSON, `repro profile` renders
/// it, and `--metrics-out` refuses to overwrite without `--force`.
#[test]
fn profile_flags_end_to_end() {
    let dir = scratch_dir_for("profile");
    fs::create_dir_all(&dir).expect("create profile scratch dir");
    let prof = dir.join("prof.json");
    let run = |extra: &[&str]| {
        let mut args = vec!["fig4", "--quick", "--jobs", "1"];
        args.extend_from_slice(extra);
        Command::new(env!("CARGO_BIN_EXE_repro"))
            .args(&args)
            .output()
            .expect("repro runs")
    };

    let dir_s = dir.to_str().unwrap().to_string();
    let out = run(&[
        "--profile",
        "--profile-out",
        prof.to_str().unwrap(),
        "--metrics-out",
        &dir_s,
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // run_report.json carries the v5 profile object.
    let report_text = fs::read_to_string(dir.join("run_report.json")).expect("run report");
    let report = RunReport::from_json(&Json::parse(&report_text).expect("valid JSON"))
        .expect("report matches schema");
    let profile = report.profile.expect("--profile adds the profile object");
    assert!(!profile.wall.is_empty(), "phase totals recorded");
    assert!(
        profile.cycle.fault_occupancy.samples > 0,
        "cycle-domain histograms populated"
    );

    // The span trace is well-formed Chrome trace-event JSON.
    let trace = Json::parse(&fs::read_to_string(&prof).expect("profile trace written"))
        .expect("trace is valid JSON");
    let events = trace.get("traceEvents").expect("traceEvents key");
    match events {
        Json::Arr(evs) => assert!(!evs.is_empty(), "span events recorded"),
        _ => panic!("traceEvents is not an array"),
    }

    // The text renderer accepts the report.
    let rendered = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["profile", dir.join("run_report.json").to_str().unwrap()])
        .output()
        .expect("repro profile runs");
    assert!(rendered.status.success());
    let text = String::from_utf8_lossy(&rendered.stdout);
    assert!(text.contains("wall-clock phases"), "{text}");
    assert!(text.contains("fault_occupancy"), "{text}");

    // Overwrite guard: same --metrics-out dir fails without --force.
    let refused = run(&["--metrics-out", &dir_s]);
    assert!(!refused.status.success(), "overwrite must be refused");
    assert!(
        String::from_utf8_lossy(&refused.stderr).contains("--force"),
        "refusal names the escape hatch"
    );
    let forced = run(&["--metrics-out", &dir_s, "--force"]);
    assert!(forced.status.success(), "--force overwrites");

    let _ = fs::remove_dir_all(&dir);
}

/// `bench-diff` flags regressions past the threshold and passes clean runs.
#[test]
fn bench_diff_gates_on_threshold() {
    use grit_trace::TargetTiming;
    let dir = scratch_dir_for("bench-diff");
    fs::create_dir_all(&dir).expect("create bench-diff scratch dir");
    let summary = |seconds: f64| BenchSummary {
        scale: 0.25,
        intensity: 1.0,
        seed: 7,
        jobs: 1,
        sim_threads: 1,
        total_seconds: seconds,
        cells_run: 8,
        targets: vec![TargetTiming {
            name: "fig4".into(),
            seconds,
        }],
        ..BenchSummary::default()
    };
    let a = dir.join("a.json");
    let b = dir.join("b.json");
    fs::write(&a, summary(1.0).to_json().to_string()).unwrap();
    fs::write(&b, summary(3.0).to_json().to_string()).unwrap();

    let diff = |x: &PathBuf, y: &PathBuf, threshold: &str| {
        Command::new(env!("CARGO_BIN_EXE_repro"))
            .args([
                "bench-diff",
                x.to_str().unwrap(),
                y.to_str().unwrap(),
                "--threshold",
                threshold,
            ])
            .output()
            .expect("bench-diff runs")
    };

    let regressed = diff(&a, &b, "50");
    assert!(
        !regressed.status.success(),
        "3x slowdown past 50% must fail"
    );
    assert!(String::from_utf8_lossy(&regressed.stdout).contains("REGRESSED"));

    let tolerated = diff(&a, &b, "500");
    assert!(tolerated.status.success(), "500% threshold tolerates 3x");

    let identical = diff(&a, &a, "50");
    assert!(identical.status.success(), "identical summaries pass");

    let _ = fs::remove_dir_all(&dir);
}
