//! End-to-end check of the `repro` observability flags: the trace stream,
//! `run_report.json`, and `BENCH_run.json` must be valid and agree with
//! each other.

use std::collections::HashMap;
use std::fs;
use std::path::PathBuf;
use std::process::Command;

use grit_trace::{BenchSummary, EventCategory, Json, RunReport, TraceEvent};

fn scratch_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("grit-repro-cli-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

#[test]
fn trace_and_reports_agree() {
    let dir = scratch_dir();
    let trace = dir.join("trace.jsonl");
    let metrics = dir.join("metrics");
    let status = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args([
            "fig18",
            "--quick",
            "--jobs",
            "2",
            "--trace",
            trace.to_str().unwrap(),
            "--metrics-out",
            metrics.to_str().unwrap(),
            "--emit-bench-json",
        ])
        .output()
        .expect("repro runs");
    assert!(
        status.status.success(),
        "repro failed: {}",
        String::from_utf8_lossy(&status.stderr)
    );

    // Every trace line parses; events are grouped under cell headers.
    let text = fs::read_to_string(&trace).expect("trace file written");
    let mut per_cell: Vec<HashMap<EventCategory, u64>> = Vec::new();
    let mut declared_events: Vec<u64> = Vec::new();
    let mut seen_in_cell = 0u64;
    for line in text.lines() {
        let v = Json::parse(line).expect("trace line is valid JSON");
        let ty = v.get("type").and_then(Json::as_str).expect("line has a type");
        if ty == "cell" {
            if let Some(expected) = declared_events.last() {
                assert_eq!(seen_in_cell, *expected, "cell header event count");
            }
            let seq = v.get("seq").and_then(Json::as_u64).expect("cell seq");
            assert_eq!(
                seq,
                per_cell.len() as u64,
                "cell sequence numbers are dense"
            );
            declared_events.push(v.get("events").and_then(Json::as_u64).expect("cell events"));
            per_cell.push(HashMap::new());
            seen_in_cell = 0;
        } else {
            let event = TraceEvent::from_json(&v).expect("event line round-trips");
            *per_cell
                .last_mut()
                .expect("events follow a header")
                .entry(event.category())
                .or_insert(0) += 1;
            seen_in_cell += 1;
        }
    }
    if let Some(expected) = declared_events.last() {
        assert_eq!(seen_in_cell, *expected, "last cell header event count");
    }
    assert!(!per_cell.is_empty(), "trace holds at least one cell");

    // The run report agrees with the trace, cell by cell.
    let report_text = fs::read_to_string(metrics.join("run_report.json")).expect("run report");
    let report = RunReport::from_json(&Json::parse(&report_text).expect("report is valid JSON"))
        .expect("report matches schema");
    assert_eq!(
        report.cells.len(),
        per_cell.len(),
        "report and trace cell counts"
    );
    assert_eq!(report.jobs, 2);
    assert!(
        !report.targets.is_empty(),
        "per-target time: lines recorded"
    );
    assert!(!report.batches.is_empty(), "batch profiles recorded");
    assert!(!report.system.is_empty(), "system parameters recorded");
    for (cell, counts) in report.cells.iter().zip(&per_cell) {
        let f = &cell.metrics.faults;
        let get = |c: EventCategory| counts.get(&c).copied().unwrap_or(0);
        assert_eq!(
            get(EventCategory::Fault),
            f.total_faults(),
            "cell {} faults",
            cell.seq
        );
        assert_eq!(
            get(EventCategory::Migration),
            f.migrations,
            "cell {} migrations",
            cell.seq
        );
        assert_eq!(get(EventCategory::Duplication), f.duplications);
        assert_eq!(get(EventCategory::Collapse), f.collapses);
        assert_eq!(get(EventCategory::Eviction), f.evictions);
        assert_eq!(get(EventCategory::SchemeChange), f.scheme_changes);
        let total: u64 = counts.values().sum();
        assert_eq!(total, cell.events_recorded, "cell {} event total", cell.seq);
    }

    // The bench summary parses and its totals line up with the report.
    let bench_text = fs::read_to_string(metrics.join("BENCH_run.json")).expect("bench json");
    let bench = BenchSummary::from_json(&Json::parse(&bench_text).expect("bench is valid JSON"))
        .expect("bench matches schema");
    assert_eq!(bench.cells_run, report.cells.len() as u64);
    assert!(
        bench.fig18_fault_geomean.is_some(),
        "fig18 ran, so its geomean is recorded"
    );
    let report_faults: u64 = report.cells.iter().map(|c| c.metrics.faults.total_faults()).sum();
    assert_eq!(bench.fault_totals.total_faults(), report_faults);
    assert!(bench.total_seconds > 0.0);

    let _ = fs::remove_dir_all(&dir);
}
