//! Oversubscription, GPU-count and page-size behaviour of the full system
//! (the §III-B capacity model and the §VI-B sensitivity studies).

use grit::experiments::{run_cell, run_cell_with, ExpConfig, PolicyKind};
use grit::prelude::*;

fn exp() -> ExpConfig {
    ExpConfig::quick()
}

#[test]
fn replication_oversubscribes_where_single_copies_fit() {
    // The 70 %-of-footprint memory (§III-B) fits one copy of everything
    // comfortably across four GPUs, but replication-heavy placement must
    // evict (§II-B3: duplication "is subject to memory oversubscription").
    let ot = run_cell(App::Bfs, PolicyKind::Static(Scheme::OnTouch), &exp()).metrics;
    let dup = run_cell(App::Bfs, PolicyKind::Static(Scheme::Duplication), &exp()).metrics;
    assert_eq!(ot.faults.evictions, 0, "single copies must fit");
    assert!(
        dup.faults.evictions > 0,
        "replicating a >70% working set on every GPU must evict"
    );
    assert!(dup.oversubscription_rate > ot.oversubscription_rate);
}

#[test]
fn gps_oversubscribes_more_than_grit() {
    // §VI-C2: GPS subscribes every accessor, GRIT replicates selectively.
    let gps = run_cell(App::Bfs, PolicyKind::Gps, &exp()).metrics;
    let grit = run_cell(App::Bfs, PolicyKind::GRIT, &exp()).metrics;
    assert!(
        gps.oversubscription_rate > grit.oversubscription_rate,
        "GPS {} vs GRIT {}",
        gps.oversubscription_rate,
        grit.oversubscription_rate
    );
}

#[test]
fn tighter_capacity_hurts_duplication() {
    let tight = SimConfig {
        capacity_ratio: 0.35,
        ..SimConfig::default()
    };
    let loose = run_cell(App::Gemm, PolicyKind::Static(Scheme::Duplication), &exp())
        .metrics
        .total_cycles;
    let squeezed = run_cell_with(
        App::Gemm,
        PolicyKind::Static(Scheme::Duplication),
        &exp(),
        tight,
        None,
    )
    .metrics
    .total_cycles;
    assert!(
        squeezed > loose,
        "halving memory must slow replication: {squeezed} vs {loose}"
    );
}

#[test]
fn grit_works_at_every_gpu_count() {
    for gpus in [2usize, 8, 16] {
        let cfg = SimConfig::with_gpus(gpus);
        let ot = run_cell_with(
            App::Gemm,
            PolicyKind::Static(Scheme::OnTouch),
            &exp(),
            cfg.clone(),
            None,
        )
        .metrics;
        let grit = run_cell_with(App::Gemm, PolicyKind::GRIT, &exp(), cfg, None).metrics;
        assert!(ot.total_cycles > 0 && grit.total_cycles > 0);
        // At 2 GPUs GEMM's replicas sit right at the capacity edge, so
        // GRIT's duplication choice can re-fault evicted pages; beyond
        // that it must raise strictly fewer faults than on-touch.
        let limit = if gpus == 2 {
            ot.faults.total_faults() * 3 / 2
        } else {
            ot.faults.total_faults()
        };
        assert!(
            grit.faults.total_faults() <= limit,
            "{gpus} GPUs: GRIT faults {} vs on-touch {}",
            grit.faults.total_faults(),
            ot.faults.total_faults()
        );
    }
}

#[test]
fn more_gpus_mean_more_sharing() {
    // §VI-B2: pages become more frequently shared as GPUs are added
    // (input size held constant).
    let few = run_cell_with(
        App::St,
        PolicyKind::Static(Scheme::OnTouch),
        &exp(),
        SimConfig::with_gpus(2),
        None,
    )
    .page_attrs;
    let many = run_cell_with(
        App::St,
        PolicyKind::Static(Scheme::OnTouch),
        &exp(),
        SimConfig::with_gpus(8),
        None,
    )
    .page_attrs;
    assert!(
        many.shared_page_frac() >= few.shared_page_frac(),
        "sharing must not shrink with more GPUs: {} vs {}",
        many.shared_page_frac(),
        few.shared_page_frac()
    );
}

#[test]
fn large_pages_coarsen_the_footprint() {
    let cfg = SimConfig {
        page_size: PAGE_SIZE_2M,
        ..SimConfig::default()
    };
    let big = ExpConfig {
        scale: 0.8,
        ..exp()
    };
    let out = run_cell_with(App::St, PolicyKind::GRIT, &big, cfg, None);
    // 33 MB x 0.8 at 2 MB pages = ~14 pages minimum footprint guard (64).
    assert!(out.metrics.total_cycles > 0);
    assert!(
        out.page_attrs.total_pages <= 128,
        "2MB pages collapse the page count"
    );
}

#[test]
fn large_pages_shrink_grits_edge() {
    // §VI-B3: 2 MB pages mix read and read-write data in one translation
    // unit; GRIT's relative gain over on-touch must shrink vs 4 KB pages.
    let exp_big = ExpConfig {
        scale: 0.6,
        ..exp()
    };
    let gain = |page_size: u64| {
        let cfg = SimConfig {
            page_size,
            ..SimConfig::default()
        };
        let ot = run_cell_with(
            App::Gemm,
            PolicyKind::Static(Scheme::OnTouch),
            &exp_big,
            cfg.clone(),
            None,
        )
        .metrics
        .total_cycles;
        let grit = run_cell_with(App::Gemm, PolicyKind::GRIT, &exp_big, cfg, None)
            .metrics
            .total_cycles;
        ot as f64 / grit as f64
    };
    let gain_4k = gain(PAGE_SIZE_4K);
    let gain_2m = gain(PAGE_SIZE_2M);
    assert!(
        gain_2m < gain_4k,
        "2MB-page gain ({gain_2m}) must trail 4KB-page gain ({gain_4k})"
    );
}

#[test]
fn prefetching_cuts_cold_faults_without_breaking_invariants() {
    let cfg = SimConfig::default();
    let base = {
        let w = WorkloadBuilder::new(App::Sc).scale(0.04).intensity(1.5).build();
        let p = PolicyKind::Static(Scheme::OnTouch).build(&cfg, w.footprint_pages);
        Simulation::try_new(cfg.clone(), w, p)
            .unwrap()
            .try_run()
            .unwrap()
            .metrics
            .faults
            .local_faults
    };
    let with_pf = {
        let w = WorkloadBuilder::new(App::Sc).scale(0.04).intensity(1.5).build();
        let p = PolicyKind::Static(Scheme::OnTouch).build(&cfg, w.footprint_pages);
        let sim = SimulationBuilder::new(cfg.clone(), w, p)
            .prefetcher(Box::new(TreePrefetcher::new()))
            .build()
            .unwrap();
        sim.try_run().unwrap().metrics.faults.local_faults
    };
    assert!(
        with_pf < base,
        "prefetching must absorb faults: {with_pf} vs {base}"
    );
}
