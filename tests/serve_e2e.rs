//! End-to-end campaign-server tests: a real `Server` on an ephemeral
//! port, the production `spec_runner`, and `ServeClient` over TCP.

use std::path::PathBuf;
use std::thread;

use grit::service::spec_runner;
use grit_serve::{ServeClient, ServeOptions, Server};
use grit_sim::RunSpec;

fn scratch_dir(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("grit-serve-e2e-{label}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn tiny_spec(app: &str, policy: &str) -> RunSpec {
    RunSpec::new(app, policy).scale(0.02).intensity(0.5).seed(0x5E12)
}

fn campaign() -> Vec<RunSpec> {
    ["GEMM", "BFS"]
        .into_iter()
        .flat_map(|app| ["grit", "on-touch"].map(|p| tiny_spec(app, p)))
        .collect()
}

/// Runs `specs` through a fresh client connection, in declaration
/// order, and returns the per-cell results.
fn run_campaign(addr: std::net::SocketAddr, specs: &[RunSpec]) -> Vec<grit_serve::CellResult> {
    let mut client = ServeClient::connect(addr).expect("connect");
    for (id, spec) in specs.iter().enumerate() {
        client.submit(id as u64, spec).expect("submit");
    }
    let outcome = client.finish().expect("finish");
    assert_eq!(outcome.errors, Vec::<String>::new(), "protocol errors");
    assert_eq!(outcome.done_results, Some(specs.len() as u64));
    outcome.results
}

#[test]
fn campaign_round_trip_hits_the_shared_store_and_keeps_declaration_order() {
    let store = scratch_dir("roundtrip");
    let server = Server::start(
        &ServeOptions::new().jobs(4),
        spec_runner(Some(store.clone()), None),
    )
    .expect("start server");
    let addr = server.local_addr();
    let handle = thread::spawn(move || server.run());

    let specs = campaign();
    // Fresh campaign: every cell simulates, nothing hits the store.
    let first = run_campaign(addr, &specs);
    assert_eq!(first.len(), specs.len());
    for (i, r) in first.iter().enumerate() {
        assert_eq!(r.id, i as u64, "results must arrive in submission order");
        assert_eq!(r.status, "ok", "cell {i}: {:?}", r.error);
        assert!(!r.store_hit, "cell {i} hit a store that should be cold");
        assert!(r.total_cycles > 0);
    }

    // The same campaign again, at the same jobs: everything is served
    // from the store with identical cycles, still in declaration order.
    let second = run_campaign(addr, &specs);
    for (i, (a, b)) in first.iter().zip(&second).enumerate() {
        assert_eq!(b.id, i as u64);
        assert!(b.store_hit, "cell {i} missed the warm store");
        assert_eq!(
            a.total_cycles, b.total_cycles,
            "cell {i} changed cycles between a fresh and a resumed run"
        );
    }

    // A ping on a fresh connection still round-trips while idle.
    let mut prober = ServeClient::connect(addr).expect("connect prober");
    prober.ping().expect("ping");
    prober.shutdown_server().expect("shutdown");
    drop(prober.finish());
    let summary = handle.join().expect("server thread");
    assert_eq!(summary.cells, 2 * specs.len() as u64);
    assert_eq!(summary.store_hits, specs.len() as u64);
    assert_eq!(summary.errors, 0);
    let _ = std::fs::remove_dir_all(&store);
}

#[test]
fn invalid_specs_become_error_results_not_dead_connections() {
    let server =
        Server::start(&ServeOptions::new().jobs(2), spec_runner(None, None)).expect("start server");
    let addr = server.local_addr();
    let handle = thread::spawn(move || server.run());

    let specs = [
        tiny_spec("GEMM", "grit"),
        tiny_spec("QUAKE", "grit"),   // unknown app
        tiny_spec("BFS", "belady"),   // unknown policy
        tiny_spec("BFS", "on-touch"), // healthy again
    ];
    let results = run_campaign(addr, &specs);
    assert_eq!(results.len(), 4);
    assert_eq!(results[0].status, "ok");
    assert_eq!(results[1].status, "invalid-spec");
    assert!(results[1].error.as_deref().unwrap_or("").contains("QUAKE"));
    assert_eq!(results[2].status, "invalid-spec");
    assert!(results[2].error.as_deref().unwrap_or("").contains("belady"));
    assert_eq!(results[3].status, "ok");

    let mut closer = ServeClient::connect(addr).expect("connect");
    closer.shutdown_server().expect("shutdown");
    drop(closer.finish());
    let summary = handle.join().expect("server thread");
    assert_eq!(summary.errors, 2);
}

#[test]
fn traced_cells_stream_their_events_before_the_result() {
    let server =
        Server::start(&ServeOptions::new().jobs(2), spec_runner(None, None)).expect("start server");
    let addr = server.local_addr();
    let handle = thread::spawn(move || server.run());

    let specs = [
        tiny_spec("FIR", "grit").trace(true).trace_filter("fault"),
        tiny_spec("FIR", "on-touch"),
    ];
    let mut client = ServeClient::connect(addr).expect("connect");
    for (id, spec) in specs.iter().enumerate() {
        client.submit(id as u64, spec).expect("submit");
    }
    client.shutdown_server().expect("shutdown");
    let outcome = client.finish().expect("finish");
    assert_eq!(outcome.results.len(), 2);
    assert!(
        !outcome.traces.is_empty(),
        "a traced cell must stream events"
    );
    // Only the traced submission may emit trace lines.
    assert!(outcome.traces.iter().all(|(id, _)| *id == 0));
    for (_, ev) in &outcome.traces {
        assert_eq!(
            ev.get("type").and_then(grit_trace::Json::as_str),
            Some("fault"),
            "the fault filter leaked another category"
        );
    }
    handle.join().expect("server thread");
}
