//! Resilient batch execution: a failing cell becomes a structured
//! `CellError` row instead of killing the campaign, zero-budget timeouts
//! fire deterministically, and an interrupted campaign resumed from the
//! on-disk result store renders byte-identical tables at any worker count.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use grit::prelude::*;
use grit_trace::MetricsReport;
use grit_workloads::App;

fn exp(seed: u64) -> ExpConfig {
    ExpConfig {
        scale: 0.02,
        intensity: 0.5,
        seed,
    }
}

fn tmp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("grit-resilience-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// Canonical byte representation of a successful cell's result.
fn fingerprint(r: &Result<RunOutput, CellError>) -> String {
    let out = r.as_ref().expect("cell must succeed");
    MetricsReport::from_metrics(&out.metrics).to_json().to_string()
}

#[test]
fn panicking_cell_does_not_abort_the_batch() {
    let e = exp(0xFA11);
    let boom: PolicySpec = PolicySpec::Factory(Arc::new(|_, _| panic!("injected factory failure")));
    let cells = vec![
        CellSpec::new(App::Bfs, PolicyKind::GRIT, &e),
        CellSpec::new(App::Fir, boom, &e),
        CellSpec::new(App::Gemm, PolicyKind::GRIT, &e),
    ];
    let results = run_batch_with(&cells, &BatchOptions::new().jobs(2));
    assert_eq!(results.len(), 3);
    assert!(results[0].is_ok(), "healthy cell before the panic survives");
    assert!(results[2].is_ok(), "healthy cell after the panic survives");
    match &results[1] {
        Err(CellError::Panicked { message }) => {
            assert!(
                message.contains("injected factory failure"),
                "panic payload must be preserved: {message}"
            );
        }
        other => panic!("expected CellError::Panicked, got {other:?}"),
    }
}

#[test]
fn zero_budget_times_out_with_partial_counters() {
    let e = exp(0x71ED);
    let cells = vec![CellSpec::new(App::Bfs, PolicyKind::GRIT, &e)];
    let opts = BatchOptions::new().jobs(1).timeout(Duration::ZERO);
    let results = run_batch_with(&cells, &opts);
    match &results[0] {
        Err(CellError::TimedOut {
            budget_seconds,
            accesses,
            ..
        }) => {
            assert_eq!(*budget_seconds, 0.0);
            assert_eq!(
                *accesses, 0,
                "a zero budget must expire at the first cancellation poll"
            );
        }
        other => panic!("expected CellError::TimedOut, got {other:?}"),
    }
    // The NaN bridge: a failed cell renders as the error marker, never as
    // a number.
    assert!(results[0].cycles().is_nan());
    let mut t = Table::new("timeout", vec!["grit".into()]);
    t.push_row("BFS", vec![results[0].cycles()]);
    assert!(t.to_text().contains(Table::ERROR_MARKER));
}

#[test]
fn fail_fast_cancels_the_rest_of_the_batch() {
    let e = exp(0xFF57);
    let boom: PolicySpec = PolicySpec::Factory(Arc::new(|_, _| panic!("fail-fast trigger")));
    let cells = vec![
        CellSpec::new(App::Bfs, boom, &e),
        CellSpec::new(App::Fir, PolicyKind::GRIT, &e),
        CellSpec::new(App::Gemm, PolicyKind::GRIT, &e),
    ];
    let results = run_batch_with(&cells, &BatchOptions::new().jobs(1).fail_fast(true));
    assert!(matches!(&results[0], Err(CellError::Panicked { .. })));
    for r in &results[1..] {
        assert!(
            matches!(r, Err(CellError::Cancelled)),
            "unstarted cells must report Cancelled under fail-fast, got {r:?}"
        );
    }
    assert!(grit::experiments::fail_fast_triggered());
}

#[test]
fn interrupted_campaign_resumes_byte_identical_at_any_jobs() {
    let e = exp(0x2E5);
    let cells: Vec<CellSpec> = [App::Bfs, App::Fir, App::Gemm]
        .into_iter()
        .map(|a| CellSpec::new(a, PolicyKind::GRIT, &e))
        .collect();

    // The uninterrupted reference campaign.
    let fresh = run_batch_with(&cells, &BatchOptions::new().jobs(1));
    let reference: Vec<String> = fresh.iter().map(fingerprint).collect();

    let dir = tmp_dir("resume");
    let with_store = |jobs: usize| BatchOptions::new().jobs(jobs).resume_dir(&dir);

    // "Interrupt" the campaign: only the first cell completes and lands in
    // the store.
    let partial = run_batch_with(&cells[..1], &with_store(1));
    assert!(partial[0].is_ok());

    // Resume serially and in parallel: same bytes as the fresh run, and
    // the pre-completed cell is served from the store.
    for jobs in [1, 4] {
        let resumed = run_batch_with(&cells, &with_store(jobs));
        let got: Vec<String> = resumed.iter().map(fingerprint).collect();
        assert_eq!(got, reference, "--jobs {jobs} resume diverged");
        assert!(
            resumed[0].as_ref().unwrap().timing.resumed,
            "--jobs {jobs}: first cell must come from the store"
        );
    }

    // The rendered table — what `repro` actually prints — is identical too.
    let render = |rs: &[Result<RunOutput, CellError>]| {
        let mut t = Table::new("resume", vec!["grit".into()]);
        let base = rs[0].cycles();
        for (r, app) in rs.iter().zip([App::Bfs, App::Fir, App::Gemm]) {
            t.push_row(app.abbr(), vec![base / r.cycles()]);
        }
        t.to_text()
    };
    let resumed = run_batch_with(&cells, &with_store(4));
    assert_eq!(render(&fresh), render(&resumed));

    let _ = std::fs::remove_dir_all(&dir);
}
