//! Smoke test for every figure driver: at a tiny scale each one must
//! produce a well-formed table — correct row/column arity, finite values,
//! positive normalization columns. Catches regressions in any driver
//! without asserting specific magnitudes.

use grit::experiments as ex;
use grit::experiments::ExpConfig;
use grit_metrics::Table;

fn tiny() -> ExpConfig {
    ExpConfig {
        scale: 0.02,
        intensity: 0.5,
        seed: 0xABCD,
    }
}

fn check(table: &Table, min_rows: usize) {
    assert!(
        table.rows().len() >= min_rows,
        "{}: {} rows",
        table.title(),
        table.rows().len()
    );
    let cols = table.columns().len();
    assert!(cols > 0, "{}: no columns", table.title());
    for (label, row) in table.rows() {
        assert_eq!(row.len(), cols, "{}: row {label} arity", table.title());
        for (c, v) in row.iter().enumerate() {
            assert!(
                v.is_finite(),
                "{}: {label}/{} is not finite: {v}",
                table.title(),
                table.columns()[c]
            );
        }
    }
}

#[test]
fn fig01_shape() {
    let t = ex::fig01_schemes::run(&tiny());
    check(&t, 9); // 8 apps + geomean
    assert_eq!(t.columns().len(), 4);
}

#[test]
fn fig03_shape() {
    let t = ex::fig03_breakdown::run(&tiny());
    check(&t, 24); // 8 apps x 3 schemes
    assert_eq!(t.columns().len(), 7); // 6 classes + total
}

#[test]
fn fig04_and_fig09_shapes() {
    check(&ex::fig04_sharing::run(&tiny()), 8);
    check(&ex::fig09_rw::run(&tiny()), 8);
}

#[test]
fn fig05_and_fig10_shapes() {
    for t in ex::fig05_page_timeline::run(&tiny()) {
        check(&t, 1);
    }
    check(&ex::fig10_rw_timeline::run(&tiny()), 1);
}

#[test]
fn fig06_grids_shape() {
    check(&ex::fig06_attr_grids::run(&tiny()), 3);
}

#[test]
fn fig17_to_fig21_shapes() {
    let t17 = ex::fig17_grit::run(&tiny());
    check(&t17, 9);
    // Every speedup is positive.
    for (_, row) in t17.rows() {
        assert!(row.iter().all(|&v| v > 0.0));
    }
    check(&ex::fig18_faults::run(&tiny()), 9);
    check(&ex::fig19_scheme_mix::run(&tiny()), 8);
    check(&ex::fig20_ablation::run(&tiny()), 9);
    check(&ex::fig21_threshold::run(&tiny()), 9);
}

#[test]
fn fig22_shape() {
    let (perf, faults) = ex::fig22_gpu_scaling::run_gpus(2, &tiny());
    check(&perf, 9);
    check(&faults, 9);
}

#[test]
fn fig25_to_fig31_shapes() {
    check(&ex::fig25_large_pages::run(&tiny()), 9);
    check(&ex::fig26_griffin::run(&tiny()), 9);
    check(&ex::fig27_gps::run(&tiny()), 8);
    check(&ex::fig28_transfw::run(&tiny()), 9);
    check(&ex::fig29_first_touch::run(&tiny()), 9);
    check(&ex::fig30_prefetch::run(&tiny()), 9);
    check(&ex::fig31_dnn::run(&tiny()), 2);
}

#[test]
fn extension_shapes() {
    check(&ex::ext_oracle::run(&tiny()), 9);
    check(&ex::ext_pa_cache::run(&tiny()), 9);
    check(&ex::ext_workloads::run(&tiny()), 2);
    for t in ex::ext_adaptation::run(&tiny()) {
        check(&t, 1);
    }
    check(&ex::ext_sweeps::run_capacity(&tiny()), 5);
    check(&ex::ext_sweeps::run_remote_gap(&tiny()), 5);
    check(&ex::ext_sweeps::run_mlp(&tiny()), 5);
}
