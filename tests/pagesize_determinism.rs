//! Determinism pin for large-page modes: coalescing and splintering run
//! only on the driver's serial paths, so `uniform2m`/`mixed` cells must
//! stay byte-identical — metrics, page attributes and the JSONL trace
//! stream (including `page-coalesced`/`page-splintered` events) — at
//! any `--jobs` × `--sim-threads` combination (DESIGN.md §17).

use grit::experiments::{run_batch_with, BatchOptions, CellSpec, ExpConfig, PolicyKind};
use grit::runner::RunOutput;
use grit_sim::{PageSizeMode, Scheme, SimConfig};
use grit_trace::{events_to_jsonl, MetricsReport, TraceConfig};
use grit_workloads::App;

/// Large enough that ST and FIR span several whole 2 MB frames, so the
/// runs being compared actually coalesce and splinter.
fn exp() -> ExpConfig {
    ExpConfig {
        scale: 0.25,
        intensity: 0.5,
        seed: 0x2A9E,
    }
}

/// Mixed- and uniform2m-mode cells across the policies that exercise all
/// large-page paths: counter trips (access-counter), migrations and
/// duplications (grit).
fn grid() -> Vec<CellSpec> {
    let mut cells = Vec::new();
    for (app, mode) in [
        (App::St, PageSizeMode::Mixed),
        (App::St, PageSizeMode::Uniform2m),
        (App::Fir, PageSizeMode::Mixed),
    ] {
        for policy in [PolicyKind::Static(Scheme::AccessCounter), PolicyKind::GRIT] {
            let cfg = SimConfig {
                page_size_mode: mode,
                ..SimConfig::default()
            };
            cells.push(
                CellSpec::new(app, policy, &exp()).with_cfg(cfg).traced(TraceConfig::default()),
            );
        }
    }
    cells
}

/// Order-stable digest of everything a cell reports, plus its full
/// event stream.
fn digest(out: &RunOutput) -> String {
    let metrics = MetricsReport::from_metrics(&out.metrics).to_json().to_string();
    let events = events_to_jsonl(out.events.as_deref().expect("tracing was enabled"));
    format!("{metrics}\n{events}")
}

fn run(cells: &[CellSpec], jobs: usize, sim_threads: usize) -> Vec<String> {
    run_batch_with(
        cells,
        &BatchOptions::new().jobs(jobs).sim_threads(sim_threads),
    )
    .into_iter()
    .map(|r| digest(&r.expect("cell must succeed")))
    .collect()
}

#[test]
fn mixed_mode_is_byte_identical_at_any_jobs_and_sim_threads() {
    let cells = grid();
    let baseline = run(&cells, 1, 1);
    // The baseline really exercised the machinery under test.
    assert!(
        baseline.iter().any(|d| d.contains("page-coalesced")),
        "grid must coalesce at least one frame"
    );
    assert!(
        baseline.iter().any(|d| d.contains("page-splintered")),
        "grid must splinter at least one frame"
    );
    for jobs in [2usize, 4] {
        for threads in [1usize, 2, 4] {
            let got = run(&cells, jobs, threads);
            for (i, (b, g)) in baseline.iter().zip(got.iter()).enumerate() {
                assert_eq!(
                    b, g,
                    "cell {i} diverges at --jobs {jobs} --sim-threads {threads}"
                );
            }
        }
    }
}
