//! Reproducibility: every figure in the reproduction must be re-runnable
//! bit-for-bit, so full-system runs are pure functions of (workload seed,
//! configuration, policy).

use grit::experiments::{run_cell, ExpConfig, PolicyKind};
use grit::prelude::*;

fn tiny() -> ExpConfig {
    ExpConfig {
        scale: 0.02,
        intensity: 0.5,
        seed: 0x5EED,
    }
}

fn fingerprint(app: App, p: PolicyKind, exp: &ExpConfig) -> (u64, u64, u64, u64, u64, u64) {
    let m = run_cell(app, p, exp).metrics;
    (
        m.total_cycles,
        m.accesses,
        m.faults.total_faults(),
        m.faults.migrations,
        m.remote_accesses,
        m.nvlink_bytes,
    )
}

#[test]
fn identical_seeds_identical_metrics() {
    for p in [
        PolicyKind::Static(Scheme::OnTouch),
        PolicyKind::Static(Scheme::Duplication),
        PolicyKind::GRIT,
        PolicyKind::Gps,
        PolicyKind::GriffinDpc,
    ] {
        for app in [App::Gemm, App::St, App::Bfs] {
            let a = fingerprint(app, p, &tiny());
            let b = fingerprint(app, p, &tiny());
            assert_eq!(a, b, "{app}/{}: runs must be deterministic", p.label());
        }
    }
}

#[test]
fn different_seeds_change_random_apps() {
    let a = fingerprint(App::Bfs, PolicyKind::Static(Scheme::OnTouch), &tiny());
    let b = fingerprint(
        App::Bfs,
        PolicyKind::Static(Scheme::OnTouch),
        &ExpConfig {
            seed: 0xFACE,
            ..tiny()
        },
    );
    assert_ne!(a, b, "different seeds must change BFS's random trace");
}

#[test]
fn policies_share_the_same_trace() {
    // The access count is a property of the workload, not the policy.
    let base = run_cell(App::Mm, PolicyKind::Static(Scheme::OnTouch), &tiny()).metrics.accesses;
    for p in [
        PolicyKind::Static(Scheme::AccessCounter),
        PolicyKind::Static(Scheme::Duplication),
        PolicyKind::GRIT,
        PolicyKind::Ideal,
        PolicyKind::FirstTouch,
    ] {
        let acc = run_cell(App::Mm, p, &tiny()).metrics.accesses;
        assert_eq!(
            acc,
            base,
            "{}: trace must not depend on the policy",
            p.label()
        );
    }
}

#[test]
fn serialized_traces_simulate_identically() {
    use grit_workloads::{read_trace, write_trace, WorkloadBuilder};
    let build = || WorkloadBuilder::new(App::Gemm).scale(0.02).seed(11).build();
    let cfg = SimConfig::default();

    let direct = {
        let w = build();
        let p = PolicyKind::GRIT.build(&cfg, w.footprint_pages);
        Simulation::try_new(cfg.clone(), w, p).unwrap().try_run().unwrap().metrics
    };
    let via_disk = {
        let mut buf = Vec::new();
        write_trace(&build(), &mut buf).unwrap();
        let w = read_trace(buf.as_slice()).unwrap();
        let p = PolicyKind::GRIT.build(&cfg, w.footprint_pages);
        Simulation::try_new(cfg.clone(), w, p).unwrap().try_run().unwrap().metrics
    };
    assert_eq!(direct.total_cycles, via_disk.total_cycles);
    assert_eq!(direct.faults.total_faults(), via_disk.faults.total_faults());
    assert_eq!(direct.remote_accesses, via_disk.remote_accesses);
}

#[test]
fn page_attributes_are_policy_invariant() {
    // Private/shared and read/RW classification is a property of the trace.
    let a = run_cell(App::C2d, PolicyKind::Static(Scheme::OnTouch), &tiny()).page_attrs;
    let b = run_cell(App::C2d, PolicyKind::Static(Scheme::Duplication), &tiny()).page_attrs;
    assert_eq!(a.total_pages, b.total_pages);
    assert_eq!(a.shared_pages, b.shared_pages);
    assert_eq!(a.read_write_pages, b.read_write_pages);
}
