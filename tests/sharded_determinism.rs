//! Determinism pin for the sharded event loop: `--sim-threads N` must be
//! byte-identical to the serial engine for every cell shape we ship —
//! any GPU count, any policy, under fault injection and non-default
//! topologies alike (DESIGN.md §14).
//!
//! Comparisons go through [`MetricsReport`], which sorts aux series by
//! name, so the digests are order-stable; raw `Debug` of `RunMetrics`
//! is not (its `aux` map hashes differently per process).

use grit::experiments::{run_batch_with, BatchOptions, CellSpec, ExpConfig, PolicyKind};
use grit::runner::RunOutput;
use grit_sim::{InjectConfig, Scheme, SimConfig, TopologyConfig};
use grit_trace::{events_to_jsonl, MetricsReport, TraceConfig};
use grit_workloads::App;

fn exp() -> ExpConfig {
    ExpConfig {
        scale: 0.02,
        intensity: 0.5,
        seed: 0x5AAD,
    }
}

/// Order-stable digest of everything a cell reports.
fn digest(out: &RunOutput) -> String {
    MetricsReport::from_metrics(&out.metrics).to_json().to_string()
}

fn run(cells: &[CellSpec], sim_threads: usize) -> Vec<RunOutput> {
    run_batch_with(cells, &BatchOptions::new().jobs(1).sim_threads(sim_threads))
        .into_iter()
        .map(|r| r.expect("cell must succeed"))
        .collect()
}

/// GPU counts x policies (plus a ring-topology variant), the ISSUE
/// acceptance matrix: sharded runs at 2 and 4 threads must reproduce the
/// serial engine exactly.
#[test]
fn sharded_matches_serial_across_gpus_policies_and_threads() {
    let policies = [
        PolicyKind::GRIT,
        PolicyKind::Static(Scheme::OnTouch),
        PolicyKind::FirstTouch,
    ];
    let mut cells = Vec::new();
    for gpus in [2usize, 4, 8] {
        for p in policies {
            cells.push(CellSpec::new(App::Bfs, p, &exp()).with_cfg(SimConfig::with_gpus(gpus)));
        }
    }
    // A non-default topology rides along at every policy.
    let ring = TopologyConfig::parse("ring").unwrap();
    for p in policies {
        let mut cfg = SimConfig::with_gpus(4);
        cfg.topology = ring;
        cells.push(CellSpec::new(App::Bfs, p, &exp()).with_cfg(cfg));
    }

    let serial = run(&cells, 1);
    for threads in [2usize, 4] {
        let sharded = run(&cells, threads);
        for (i, (s, p)) in serial.iter().zip(sharded.iter()).enumerate() {
            assert_eq!(
                digest(s),
                digest(p),
                "cell {i} metrics diverge at --sim-threads {threads}"
            );
            assert_eq!(
                s.page_attrs, p.page_attrs,
                "cell {i} page attrs diverge at --sim-threads {threads}"
            );
        }
    }
}

fn injected_traced_grid() -> Vec<CellSpec> {
    let inject =
        InjectConfig::parse("outage@50000:wire=*:for=150000;retire@30000:gpu=1:pct=20").unwrap();
    let nvswitch = TopologyConfig::parse("nvswitch").unwrap();
    [App::Bfs, App::Fir]
        .into_iter()
        .map(|app| {
            let mut cfg = SimConfig::with_gpus(4);
            cfg.topology = nvswitch;
            cfg.inject = inject.clone();
            CellSpec::new(app, PolicyKind::GRIT, &exp())
                .with_cfg(cfg)
                .traced(TraceConfig::default())
        })
        .collect()
}

/// Concatenated JSONL of the injected NVSwitch grid, in declaration order.
fn stream(sim_threads: usize) -> String {
    run(&injected_traced_grid(), sim_threads)
        .iter()
        .map(|out| events_to_jsonl(out.events.as_deref().expect("tracing was enabled")))
        .collect()
}

/// The full event stream — not just the final counters — must be
/// byte-for-byte identical, even with hardware faults injected mid-run
/// on an NVSwitch fabric.
#[test]
fn sharded_trace_stream_is_byte_identical_under_injection() {
    let serial = stream(1);
    assert!(!serial.is_empty(), "the grid must emit events");
    for threads in [2usize, 4] {
        assert_eq!(
            serial,
            stream(threads),
            "trace streams diverge between --sim-threads 1 and --sim-threads {threads}"
        );
    }
}
