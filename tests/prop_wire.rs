//! Property tests for the `grit-serve/v1` wire protocol under hostile
//! input: random garbage, truncated submit lines, and structured
//! mutations of valid requests. Two invariants, checked against both
//! the parser in isolation and a live server:
//!
//! * parsing never panics — every malformed line becomes an `Err`;
//! * a malformed line costs exactly one `error` response, and the
//!   connection (and server) keep working: a valid submission on the
//!   same connection still runs to an ordered `result` + `done`.

use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use grit_serve::{Request, Response, ServeOptions, Server, SpecResult, SpecRunner};
use grit_sim::RunSpec;
use grit_trace::Json;
use proptest::prelude::*;

/// One stub-backed server shared by every generated case; it is never
/// shut down (the test process exit reaps it), which is itself part of
/// the property — hundreds of malformed lines must not wedge it.
fn shared_server() -> SocketAddr {
    static ADDR: OnceLock<SocketAddr> = OnceLock::new();
    *ADDR.get_or_init(|| {
        let runner: SpecRunner = Arc::new(|spec: &RunSpec| {
            let mut res = SpecResult::default();
            res.total_cycles = spec.seed;
            Ok(res)
        });
        let server = Server::start(&ServeOptions::new().jobs(2), runner).expect("start server");
        let addr = server.local_addr();
        std::thread::spawn(move || server.run());
        addr
    })
}

fn valid_submit_line(id: u64) -> String {
    let spec = RunSpec::new("GEMM", "grit").seed(id);
    format!("{}\n", Request::Submit { id, spec }.to_json())
}

/// Does this byte sequence parse as a well-formed request line? Such
/// (astronomically unlikely for garbage, by construction for the
/// mutation corpus) cases are assumed away: they would be *accepted*,
/// not answered with an error.
fn parses_as_request(bytes: &[u8]) -> bool {
    let text = String::from_utf8_lossy(bytes);
    let text = text.trim();
    !text.is_empty() && Json::parse(text).ok().is_some_and(|v| Request::from_json(&v).is_ok())
}

/// Lines that the server ignores outright (blank after trimming) get no
/// error response and are assumed away too.
fn trims_empty(bytes: &[u8]) -> bool {
    String::from_utf8_lossy(bytes).trim().is_empty()
}

fn garbage_line() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(any::<u8>(), 0..64).prop_map(|mut bytes| {
        bytes.retain(|&b| b != b'\n');
        bytes.push(b'\n');
        bytes
    })
}

/// A valid submit line cut to a proper prefix — the torn final write of
/// a dying client.
fn truncated_line() -> impl Strategy<Value = Vec<u8>> {
    (0u64..1000, 0.0f64..1.0).prop_map(|(id, frac)| {
        let line = valid_submit_line(id);
        let body = line.trim_end();
        let cut = 1 + ((body.len() - 2) as f64 * frac) as usize;
        let mut bytes = body.as_bytes()[..cut].to_vec();
        bytes.push(b'\n');
        bytes
    })
}

/// Well-formed JSON that violates the request schema in one targeted
/// way: unknown or mistyped `type`, wrong or null `schema`, mistyped
/// `id` or `spec`.
fn mutated_line() -> impl Strategy<Value = Vec<u8>> {
    (0u64..1000, 0usize..6).prop_map(|(id, kind)| {
        let line = valid_submit_line(id);
        let mutated = match kind {
            0 => line.replacen("\"type\":\"submit\"", "\"type\":\"frobnicate\"", 1),
            1 => line.replacen("\"type\":\"submit\"", "\"type\":42", 1),
            2 => line.replacen("grit-serve/v1", "grit-serve/v9", 1),
            3 => line.replacen("\"grit-serve/v1\"", "null", 1),
            4 => line.replacen(&format!("\"id\":{id}"), &format!("\"id\":\"{id}\""), 1),
            _ => line.replacen("\"spec\":", "\"spec\":7,\"junk\":", 1),
        };
        mutated.into_bytes()
    })
}

/// Sends `bad` followed by a valid submission on one connection and
/// asserts the canonical reaction: one `error` (before the valid cell's
/// acknowledgement), the valid cell's `result`, and a `done` for
/// exactly one accepted submission.
fn assert_survives(bad: &[u8]) -> Result<(), TestCaseError> {
    let stream = TcpStream::connect(shared_server()).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).expect("read timeout");
    let mut write = stream.try_clone().expect("clone");
    write.write_all(bad).expect("write bad line");
    write.write_all(valid_submit_line(77).as_bytes()).expect("write valid line");
    write.shutdown(Shutdown::Write).expect("half-close");

    let mut errors = 0usize;
    let mut seen = Vec::new();
    let mut result_cycles = None;
    let mut done = None;
    for raw in BufReader::new(stream).lines() {
        let raw = raw.expect("read response line");
        let v = Json::parse(&raw).expect("response line is JSON");
        let resp = Response::from_json(&v).expect("response parses");
        match resp {
            Response::Error { id: None, .. } => errors += 1,
            Response::Result(r) => {
                prop_assert_eq!(r.id, 77u64, "result for the wrong cell");
                result_cycles = Some(r.total_cycles);
            }
            Response::Done { results } => {
                done = Some(results);
                break;
            }
            _ => {}
        }
        seen.push(raw);
    }
    prop_assert_eq!(
        errors,
        1usize,
        "malformed line must cost exactly one error: {:?}",
        seen
    );
    prop_assert_eq!(
        result_cycles,
        Some(77u64),
        "valid cell after the bad line must still run"
    );
    prop_assert_eq!(
        done,
        Some(1u64),
        "done must count only the accepted submission"
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn garbage_parses_to_error_not_panic(bytes in garbage_line()) {
        // The parse itself must not panic, whatever the bytes.
        let _ = Json::parse(&String::from_utf8_lossy(&bytes)).map(|v| Request::from_json(&v));
        prop_assume!(!trims_empty(&bytes) && !parses_as_request(&bytes));
        assert_survives(&bytes)?;
    }

    #[test]
    fn truncated_submit_parses_to_error_not_panic(bytes in truncated_line()) {
        prop_assert!(!parses_as_request(&bytes), "a proper prefix must not parse");
        assert_survives(&bytes)?;
    }

    #[test]
    fn schema_violations_parse_to_error_not_panic(bytes in mutated_line()) {
        prop_assert!(!parses_as_request(&bytes), "every mutation must break the schema");
        assert_survives(&bytes)?;
    }
}
