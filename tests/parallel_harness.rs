//! The parallel experiment harness must be invisible in the output: a
//! batched figure returns a byte-identical table no matter how many
//! workers run it, and the shared workload cache builds each distinct
//! trace exactly once however many cells request it.

use grit::experiments::{
    fig17_grit, run_batch_with, set_jobs, table2_apps, workload_cache, BatchOptions, CellSpec,
    ExpConfig, PolicyKind,
};
use grit_sim::SimConfig;

#[test]
fn fig17_table_is_identical_serial_and_parallel() {
    let exp = ExpConfig::quick();
    set_jobs(1);
    let serial = fig17_grit::run(&exp);
    set_jobs(4);
    let parallel = fig17_grit::run(&exp);
    set_jobs(0);
    assert_eq!(
        serial, parallel,
        "worker count must not change a figure's table"
    );
    assert_eq!(serial.to_text(), parallel.to_text());
    assert_eq!(serial.to_csv(), parallel.to_csv());
}

#[test]
fn fig17_grid_builds_each_app_trace_exactly_once() {
    // A seed no other test uses, so this test owns its cache entries even
    // though the cache is global to the test binary.
    let exp = ExpConfig {
        seed: 0xB111D,
        ..ExpConfig::quick()
    };
    let _ = fig17_grit::run(&exp);
    let cfg = SimConfig::default();
    for app in table2_apps() {
        let key = workload_cache::WorkloadKey::new(app, &exp, &cfg);
        assert_eq!(
            workload_cache::global().build_count(key),
            1,
            "{app:?}: five policies share one trace, built once"
        );
    }
}

#[test]
fn batch_outputs_preserve_declaration_order() {
    // Unique seed for the same reason as above.
    let exp = ExpConfig {
        seed: 0x0DE2,
        ..ExpConfig::quick()
    };
    let apps = [
        grit_workloads::App::Fir,
        grit_workloads::App::Bfs,
        grit_workloads::App::Gemm,
    ];
    let cells: Vec<CellSpec> =
        apps.iter().map(|&a| CellSpec::new(a, PolicyKind::GRIT, &exp)).collect();
    let serial = run_batch_with(&cells, &BatchOptions::new().jobs(1));
    let parallel = run_batch_with(&cells, &BatchOptions::new().jobs(3));
    for ((s, p), app) in serial.iter().zip(&parallel).zip(apps) {
        let s = s.as_ref().expect("cell must succeed");
        let p = p.as_ref().expect("cell must succeed");
        assert_eq!(s.metrics.accesses, p.metrics.accesses, "{app:?}");
        assert_eq!(s.metrics.total_cycles, p.metrics.total_cycles, "{app:?}");
    }
}
