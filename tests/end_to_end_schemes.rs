//! End-to-end scheme-ordering tests: the qualitative results of Fig. 1
//! must hold on full system runs — which uniform scheme wins depends on
//! each application's page-sharing pattern, and the Ideal bounds them all.

use grit::experiments::{run_cell, ExpConfig, PolicyKind};
use grit::prelude::*;

fn cycles(app: App, p: PolicyKind) -> u64 {
    run_cell(app, p, &ExpConfig::quick()).metrics.total_cycles
}

const OT: PolicyKind = PolicyKind::Static(Scheme::OnTouch);
const AC: PolicyKind = PolicyKind::Static(Scheme::AccessCounter);
const DUP: PolicyKind = PolicyKind::Static(Scheme::Duplication);

#[test]
fn on_touch_wins_private_streaming_apps() {
    // FIR and SC are almost entirely private (Fig. 4): migrating each page
    // once to its only user beats both remote access and replication.
    for app in [App::Fir, App::Sc] {
        let ot = cycles(app, OT);
        let dup = cycles(app, DUP);
        assert!(ot < dup, "{app}: on-touch {ot} must beat duplication {dup}");
    }
}

#[test]
fn on_touch_wins_producer_consumer_c2d() {
    let ot = cycles(App::C2d, OT);
    let ac = cycles(App::C2d, AC);
    let dup = cycles(App::C2d, DUP);
    assert!(ot < ac, "C2D: on-touch {ot} must beat access-counter {ac}");
    assert!(ot < dup, "C2D: on-touch {ot} must beat duplication {dup}");
}

#[test]
fn duplication_wins_read_shared_apps() {
    // BFS, GEMM and MM have substantial read-shared data: local replicas
    // beat both migration ping-pong and counter-based remote access.
    for app in [App::Bfs, App::Gemm, App::Mm] {
        let ot = cycles(app, OT);
        let ac = cycles(app, AC);
        let dup = cycles(app, DUP);
        assert!(dup < ot, "{app}: duplication {dup} must beat on-touch {ot}");
        assert!(
            dup < ac,
            "{app}: duplication {dup} must beat access-counter {ac}"
        );
    }
}

#[test]
fn access_counter_wins_interleaved_read_write_bs() {
    let ot = cycles(App::Bs, OT);
    let ac = cycles(App::Bs, AC);
    let dup = cycles(App::Bs, DUP);
    assert!(ac < ot, "BS: access-counter {ac} must beat on-touch {ot}");
    assert!(
        ac < dup,
        "BS: access-counter {ac} must beat duplication {dup}"
    );
}

#[test]
fn duplication_loses_on_write_heavy_shared_apps() {
    // BS and ST collapse and re-duplicate constantly (§IV-A reports 45-46 %
    // of their pages experiencing the cycle): duplication must be the
    // worst way to handle their shared read-write pages — behind on-touch
    // for BS and behind access-counter for both.
    let bs_ot = cycles(App::Bs, OT);
    let bs_dup = cycles(App::Bs, DUP);
    assert!(
        bs_dup > bs_ot,
        "BS: duplication {bs_dup} must lose to on-touch {bs_ot}"
    );
    for app in [App::Bs, App::St] {
        let ac = cycles(app, AC);
        let dup = cycles(app, DUP);
        assert!(
            dup > ac,
            "{app}: duplication {dup} must lose to access-counter {ac}"
        );
    }
}

#[test]
fn ideal_bounds_every_scheme_on_every_app() {
    for app in App::TABLE2 {
        let ideal = cycles(app, PolicyKind::Ideal);
        for p in [OT, AC, DUP, PolicyKind::GRIT] {
            let c = cycles(app, p);
            assert!(
                ideal <= c,
                "{app}: ideal {ideal} must lower-bound {} {c}",
                p.label()
            );
        }
    }
}

#[test]
fn write_collapse_only_under_duplication_semantics() {
    for app in App::TABLE2 {
        let ot = run_cell(app, OT, &ExpConfig::quick()).metrics;
        let ac = run_cell(app, AC, &ExpConfig::quick()).metrics;
        assert_eq!(
            ot.faults.collapses, 0,
            "{app}: on-touch must never collapse"
        );
        assert_eq!(
            ac.faults.collapses, 0,
            "{app}: access-counter must never collapse"
        );
        assert_eq!(
            ot.faults.duplications, 0,
            "{app}: on-touch must never duplicate"
        );
    }
}

#[test]
fn remote_traffic_only_under_counter_semantics() {
    for app in [App::Bfs, App::St] {
        let ot = run_cell(app, OT, &ExpConfig::quick()).metrics;
        let dup = run_cell(app, DUP, &ExpConfig::quick()).metrics;
        let ac = run_cell(app, AC, &ExpConfig::quick()).metrics;
        assert_eq!(
            ot.remote_accesses, 0,
            "{app}: on-touch never reads remotely"
        );
        assert_eq!(
            dup.remote_accesses, 0,
            "{app}: duplication never reads remotely"
        );
        assert!(
            ac.remote_accesses > 0,
            "{app}: access-counter must read remotely"
        );
    }
}

#[test]
fn fault_counts_track_scheme_behaviour() {
    // §VI-A: fault counts correlate with performance. The migration
    // ping-pong of on-touch must raise more faults than counter-based
    // placement on the all-shared apps.
    for app in [App::Bfs, App::Bs, App::St] {
        let ot = run_cell(app, OT, &ExpConfig::quick()).metrics.faults;
        let ac = run_cell(app, AC, &ExpConfig::quick()).metrics.faults;
        assert!(
            ot.total_faults() > ac.total_faults(),
            "{app}: OT faults {} vs AC faults {}",
            ot.total_faults(),
            ac.total_faults()
        );
    }
}
