//! Backward-compatibility pin for the topology-driven fabric: with the
//! default `AllToAll` topology, figure tables and JSONL trace streams must
//! be byte-identical to the pre-topology code at `--jobs 1` and `--jobs 4`.
//!
//! The `tests/golden/` fixtures were captured from the tree *before*
//! `grit-topo` landed (same commit series, one commit earlier), so a diff
//! here means the refactor changed observable behaviour of the default
//! fabric. Re-bless only for an intentional model change:
//! `GRIT_BLESS=1 cargo test --test topology_compat`.

use std::fs;
use std::path::PathBuf;

use grit::experiments as ex;
use grit::experiments::{run_batch_with, BatchOptions, CellSpec, ExpConfig, PolicyKind};
use grit_sim::Scheme;
use grit_trace::{events_to_jsonl, TraceConfig};
use grit_workloads::App;

fn tiny() -> ExpConfig {
    ExpConfig {
        scale: 0.02,
        intensity: 0.5,
        seed: 0xABCD,
    }
}

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// Compares `actual` against the checked-in fixture, or rewrites the
/// fixture when `GRIT_BLESS` is set.
fn check_golden(name: &str, actual: &str) {
    let path = golden_dir().join(name);
    if std::env::var_os("GRIT_BLESS").is_some() {
        fs::create_dir_all(golden_dir()).expect("create golden dir");
        fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden fixture {}: {e}", path.display()));
    assert_eq!(
        actual, expected,
        "{name} diverged from the pre-topology golden output"
    );
}

/// All pinned figure tables rendered at the current global jobs setting.
fn render_tables() -> String {
    let exp = tiny();
    let mut out = String::new();
    out.push_str(&ex::fig17_grit::run(&exp).to_text());
    out.push('\n');
    out.push_str(&ex::fig18_faults::run(&exp).to_text());
    out.push('\n');
    for gpus in [2, 8] {
        let (perf, faults) = ex::fig22_gpu_scaling::run_gpus(gpus, &exp);
        out.push_str(&perf.to_text());
        out.push('\n');
        out.push_str(&faults.to_text());
        out.push('\n');
    }
    out
}

fn traced_grid() -> Vec<CellSpec> {
    let exp = ExpConfig {
        scale: 0.02,
        intensity: 0.5,
        seed: 0x70B0,
    };
    [App::Bfs, App::Fir]
        .into_iter()
        .flat_map(|app| {
            [PolicyKind::Static(Scheme::OnTouch), PolicyKind::GRIT]
                .map(|p| CellSpec::new(app, p, &exp).traced(TraceConfig::default()))
        })
        .collect()
}

/// Concatenated JSONL of the traced grid, in declaration order.
fn stream(jobs: usize) -> String {
    run_batch_with(&traced_grid(), &BatchOptions::new().jobs(jobs))
        .iter()
        .map(|out| {
            let out = out.as_ref().expect("cell must succeed");
            events_to_jsonl(out.events.as_deref().expect("tracing was enabled"))
        })
        .collect()
}

#[test]
fn default_topology_tables_match_pre_topology_goldens_at_any_jobs() {
    ex::set_jobs(1);
    let serial = render_tables();
    ex::set_jobs(4);
    let parallel = render_tables();
    ex::set_jobs(0);
    assert_eq!(
        serial, parallel,
        "tables diverge between --jobs 1 and --jobs 4"
    );
    check_golden("fig_tables_alltoall.txt", &serial);
}

#[test]
fn explicit_all_to_all_override_is_identical_to_the_default() {
    // `--topology all-to-all` must be a no-op: the override path through
    // `set_override_spec` renders the very same tables as no override at
    // all.
    let baseline = render_tables();
    ex::set_override_spec(Some(grit_sim::RunSpec::default().topology("all-to-all")));
    let explicit = render_tables();
    ex::set_override_spec(None);
    assert_eq!(
        baseline, explicit,
        "an explicit all-to-all override changed the default output"
    );
}

#[test]
fn default_topology_trace_stream_matches_pre_topology_golden_at_any_jobs() {
    let serial = stream(1);
    assert!(!serial.is_empty(), "the grid must emit events");
    let parallel = stream(4);
    assert_eq!(
        serial, parallel,
        "trace streams diverge between --jobs 1 and --jobs 4"
    );
    check_golden("trace_stream_alltoall.jsonl", &serial);
}
