//! Crash-safety of the served store: SIGKILL a campaign server after it
//! has persisted part of a campaign, then finish the campaign through
//! the in-process engine pointed at the same store. The final table
//! must be byte-identical to a never-interrupted run — the store's
//! write-temp-then-rename discipline guarantees no torn entries.

use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn scratch_dir(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("grit-serve-kill-{label}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

const EXP_FLAGS: [&str; 6] = ["--scale", "0.02", "--intensity", "0.5", "--seed", "4919"];

fn submit_local(store: Option<&PathBuf>, jobs: &str, apps: &str) -> (String, String) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_repro"));
    cmd.arg("submit")
        .arg("--local")
        .args(["--jobs", jobs])
        .args(["--apps", apps])
        .args(["--policies", "grit,on-touch"])
        .args(EXP_FLAGS);
    if let Some(dir) = store {
        cmd.arg("--store").arg(dir);
    }
    let out = cmd.output().expect("run repro submit --local");
    assert!(
        out.status.success(),
        "submit --local failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    (
        String::from_utf8(out.stdout).expect("stdout utf8"),
        String::from_utf8(out.stderr).expect("stderr utf8"),
    )
}

fn wait_for_port(port_file: &PathBuf, server: &mut Child) -> String {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Ok(text) = std::fs::read_to_string(port_file) {
            let addr = text.trim().to_string();
            if !addr.is_empty() {
                return addr;
            }
        }
        if let Some(status) = server.try_wait().expect("poll server") {
            panic!("server exited early: {status}");
        }
        assert!(
            Instant::now() < deadline,
            "server never wrote {port_file:?}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn sigkilled_server_leaves_a_store_that_resumes_byte_identically() {
    let scratch = scratch_dir("resume");
    let store = scratch.join("store");
    let port_file = scratch.join("port.txt");

    // Reference: the full campaign, never interrupted, no store at all.
    let (reference, _) = submit_local(None, "1", "GEMM,BFS");
    assert!(
        reference.contains("campaign total cycles"),
        "unexpected table: {reference}"
    );

    // A server fills the store with half the campaign...
    let mut server = Command::new(env!("CARGO_BIN_EXE_repro"))
        .arg("serve")
        .args(["--port", "0"])
        .arg("--port-file")
        .arg(&port_file)
        .arg("--store")
        .arg(&store)
        .args(["--jobs", "2"])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn repro serve");
    let addr = wait_for_port(&port_file, &mut server);

    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .arg("submit")
        .args(["--connect", &addr])
        .args(["--apps", "GEMM"])
        .args(["--policies", "grit,on-touch"])
        .args(EXP_FLAGS)
        .output()
        .expect("run repro submit");
    assert!(
        out.status.success(),
        "submit failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // ... and dies without any chance to clean up.
    server.kill().expect("SIGKILL server");
    let _ = server.wait();

    // Finishing the campaign against the survivor store reuses the two
    // persisted cells and renders the exact reference bytes — at a
    // different worker count, for good measure.
    let (resumed, status) = submit_local(Some(&store), "4", "GEMM,BFS");
    assert_eq!(
        resumed, reference,
        "resumed table differs from the uninterrupted run"
    );
    assert!(
        status.contains("2 store hits"),
        "expected 2 store hits after the kill, got: {status}"
    );
    let _ = std::fs::remove_dir_all(&scratch);
}
