//! Backward-compatibility pin for multi-page-size memory: with the
//! default `uniform4k` mode, figure tables and JSONL trace streams must
//! be byte-identical to the pre-pagesize code — the large-page machinery
//! must be invisible when disabled (no new aux series, no new trace
//! events, no timing drift).
//!
//! This reuses the `tests/golden/` fixtures captured before the
//! large-page subsystem landed: a diff here means `uniform4k` stopped
//! being a faithful reproduction of the old single-page-size model.
//! Re-bless only for an intentional model change:
//! `GRIT_BLESS=1 cargo test --test topology_compat`.

use std::fs;
use std::path::PathBuf;

use grit::experiments as ex;
use grit::experiments::{run_batch_with, BatchOptions, CellSpec, ExpConfig, PolicyKind};
use grit_sim::Scheme;
use grit_trace::{events_to_jsonl, MetricsReport, TraceConfig};
use grit_workloads::App;

fn tiny() -> ExpConfig {
    ExpConfig {
        scale: 0.02,
        intensity: 0.5,
        seed: 0xABCD,
    }
}

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// Compares `actual` against the checked-in fixture. Unlike the
/// topology pin this never blesses: the fixtures belong to
/// `topology_compat.rs`, and this test only proves `uniform4k` still
/// reproduces them.
fn check_golden(name: &str, actual: &str) {
    if std::env::var_os("GRIT_BLESS").is_some() {
        return; // topology_compat.rs owns re-blessing these fixtures
    }
    let path = golden_dir().join(name);
    let expected = fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden fixture {}: {e}", path.display()));
    assert_eq!(
        actual, expected,
        "{name}: uniform4k diverged from the pre-pagesize golden output"
    );
}

/// The same figure tables `topology_compat.rs` pins, rendered under the
/// default (uniform4k) page-size mode.
fn render_tables() -> String {
    let exp = tiny();
    let mut out = String::new();
    out.push_str(&ex::fig17_grit::run(&exp).to_text());
    out.push('\n');
    out.push_str(&ex::fig18_faults::run(&exp).to_text());
    out.push('\n');
    for gpus in [2, 8] {
        let (perf, faults) = ex::fig22_gpu_scaling::run_gpus(gpus, &exp);
        out.push_str(&perf.to_text());
        out.push('\n');
        out.push_str(&faults.to_text());
        out.push('\n');
    }
    out
}

fn traced_grid() -> Vec<CellSpec> {
    let exp = ExpConfig {
        scale: 0.02,
        intensity: 0.5,
        seed: 0x70B0,
    };
    [App::Bfs, App::Fir]
        .into_iter()
        .flat_map(|app| {
            [PolicyKind::Static(Scheme::OnTouch), PolicyKind::GRIT]
                .map(|p| CellSpec::new(app, p, &exp).traced(TraceConfig::default()))
        })
        .collect()
}

#[test]
fn default_mode_tables_match_pre_pagesize_goldens() {
    check_golden("fig_tables_alltoall.txt", &render_tables());
}

#[test]
fn explicit_uniform4k_override_is_identical_to_the_default() {
    // `--page-size-mode uniform4k` must be a no-op: the override path
    // through `set_override_spec` renders the very same tables as no
    // override at all.
    let baseline = render_tables();
    ex::set_override_spec(Some(
        grit_sim::RunSpec::default().page_size_mode("uniform4k"),
    ));
    let explicit = render_tables();
    ex::set_override_spec(None);
    assert_eq!(
        baseline, explicit,
        "an explicit uniform4k override changed the default output"
    );
}

#[test]
fn default_mode_trace_stream_matches_pre_pagesize_golden() {
    let outputs = run_batch_with(&traced_grid(), &BatchOptions::new().jobs(1));
    let stream: String = outputs
        .iter()
        .map(|out| {
            let out = out.as_ref().expect("cell must succeed");
            events_to_jsonl(out.events.as_deref().expect("tracing was enabled"))
        })
        .collect();
    assert!(!stream.is_empty(), "the grid must emit events");
    check_golden("trace_stream_alltoall.jsonl", &stream);

    // uniform4k runs must not leak large-page artifacts into reports:
    // no pagesize aux series, no 2 MB TLB series.
    for out in &outputs {
        let report = MetricsReport::from_metrics(&out.as_ref().unwrap().metrics)
            .to_json()
            .to_string();
        for leaked in [
            "pagesize_counters",
            "tlb_l1_hit_rate_2m",
            "tlb_l2_hit_rate_2m",
        ] {
            assert!(
                !report.contains(leaked),
                "uniform4k report leaked the {leaked} series"
            );
        }
    }
}
