//! Load tests for the campaign server: several concurrent clients
//! pumping queued cells through one shared worker pool and one shared
//! store, with per-client declaration-order delivery asserted on every
//! connection.
//!
//! The default test is CI-sized. The `#[ignore]`d variant queues ~2000
//! cells from 4 clients and writes `BENCH_serve.json` (committed as the
//! throughput reference):
//! `cargo test --release --test serve_load -- --ignored`.

use std::path::PathBuf;
use std::thread;
use std::time::Instant;

use grit::service::spec_runner;
use grit_serve::{ServeClient, ServeOptions, Server};
use grit_sim::RunSpec;

fn scratch_dir(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("grit-serve-load-{label}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// A pool of 16 distinct cheap specs; campaigns cycle through it so
/// most submissions repeat an earlier spec and exercise the store-hit
/// path while the first occurrence of each spec still simulates.
fn spec_pool() -> Vec<RunSpec> {
    let mut pool = Vec::new();
    for app in ["GEMM", "FIR", "BFS", "ST"] {
        for policy in ["grit", "on-touch"] {
            for seed in [0x10AD_u64, 0x10AE] {
                pool.push(RunSpec::new(app, policy).scale(0.02).intensity(0.5).seed(seed));
            }
        }
    }
    pool
}

/// Runs `clients` concurrent campaigns of `cells_each` submissions and
/// returns (total store hits, wall seconds). Every client asserts its
/// own declaration order before returning.
fn hammer(clients: usize, cells_each: usize, jobs: usize, label: &str) -> (u64, f64) {
    let store = scratch_dir(label);
    let server = Server::start(
        &ServeOptions::new().jobs(jobs),
        spec_runner(Some(store.clone()), None),
    )
    .expect("start server");
    let addr = server.local_addr();
    let server_handle = thread::spawn(move || server.run());

    let pool = spec_pool();
    let t0 = Instant::now();
    let client_handles: Vec<_> = (0..clients)
        .map(|c| {
            let pool = pool.clone();
            thread::spawn(move || {
                let mut client = ServeClient::connect(addr).expect("connect");
                for id in 0..cells_each {
                    // Offset per client so clients collide on specs at
                    // different times (mixed hit/miss traffic).
                    let spec = &pool[(id + c * 7) % pool.len()];
                    client.submit(id as u64, spec).expect("submit");
                }
                let outcome = client.finish().expect("finish");
                assert_eq!(outcome.errors, Vec::<String>::new());
                assert_eq!(outcome.results.len(), cells_each, "client {c} lost results");
                for (i, r) in outcome.results.iter().enumerate() {
                    assert_eq!(
                        r.id, i as u64,
                        "client {c}: result {i} out of declaration order"
                    );
                    assert_eq!(r.status, "ok", "client {c} cell {i}: {:?}", r.error);
                    assert!(r.total_cycles > 0);
                }
                outcome.results.iter().filter(|r| r.store_hit).count() as u64
            })
        })
        .collect();
    let hits: u64 = client_handles.into_iter().map(|h| h.join().expect("client thread")).sum();
    let wall = t0.elapsed().as_secs_f64();

    let mut closer = ServeClient::connect(addr).expect("connect closer");
    closer.shutdown_server().expect("shutdown");
    drop(closer.finish());
    let summary = server_handle.join().expect("server thread");
    assert_eq!(summary.cells, (clients * cells_each) as u64);
    assert_eq!(summary.errors, 0);
    assert_eq!(summary.store_hits, hits);
    let _ = std::fs::remove_dir_all(&store);
    (hits, wall)
}

#[test]
fn four_concurrent_clients_keep_declaration_order_under_mixed_traffic() {
    let (hits, _) = hammer(4, 48, 4, "small");
    // 192 submissions over 16 distinct specs: the vast majority must be
    // store hits (at most one miss per distinct spec, racing aside).
    assert!(
        hits >= 128,
        "expected mostly store hits over a 16-spec pool, got {hits}/192"
    );
}

#[test]
#[ignore = "load benchmark: ~2000 cells; run with --ignored and commit BENCH_serve.json"]
fn two_thousand_cell_campaign_benchmark() {
    let clients = 4;
    let cells_each = 500;
    let jobs = 8;
    let (hits, wall) = hammer(clients, cells_each, jobs, "bench");
    let cells = (clients * cells_each) as f64;
    let doc = format!(
        "{{\"schema\":\"grit-serve-bench/v1\",\"clients\":{clients},\"cells\":{},\"jobs\":{jobs},\
         \"distinct_specs\":16,\"store_hits\":{hits},\"wall_seconds\":{wall:.3},\
         \"cells_per_second\":{:.1}}}\n",
        clients * cells_each,
        cells / wall
    );
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("BENCH_serve.json");
    std::fs::write(&path, &doc).expect("write BENCH_serve.json");
    eprintln!("wrote {}: {doc}", path.display());
    assert!(
        hits as f64 >= cells * 0.9,
        "store hit rate collapsed: {hits}"
    );
}
