//! Determinism pin for the profiler's cycle-domain sections: the
//! `prof_*` aux series (fault-handler occupancy, migration latency,
//! fabric queue wait, MLP stall cycles) and the merged `CycleProfile`
//! they roll up into must be byte-identical at any `--sim-threads` and
//! any `--jobs`. Wall-clock phase timers and speculation telemetry are
//! thread-count-dependent by design and live outside this surface.

use grit::experiments::{run_batch_with, BatchOptions, CellSpec, ExpConfig, PolicyKind};
use grit::runner::RunOutput;
use grit_sim::{Scheme, SimConfig};
use grit_trace::{CycleProfile, MetricsReport, ProfileReport};
use grit_workloads::App;

fn exp() -> ExpConfig {
    ExpConfig {
        scale: 0.02,
        intensity: 0.5,
        seed: 0x0B5E,
    }
}

fn grid() -> Vec<CellSpec> {
    let mut cells = Vec::new();
    for app in [App::Bfs, App::Gemm] {
        for p in [PolicyKind::GRIT, PolicyKind::Static(Scheme::OnTouch)] {
            cells.push(CellSpec::new(app, p, &exp()).with_cfg(SimConfig::with_gpus(4)));
        }
    }
    cells
}

const PROF_AUX: &[&str] = &[
    "prof_fault_occupancy_hist",
    "prof_migration_latency_hist",
    "prof_fabric_queue_hist",
    "prof_mlp_stall_cycles",
];

/// The cell's `prof_*` aux series in sorted-aux (`MetricsReport`) form.
fn prof_aux(out: &RunOutput) -> Vec<(String, Vec<f64>)> {
    MetricsReport::from_metrics(&out.metrics)
        .aux
        .iter()
        .filter(|(k, _)| PROF_AUX.contains(&k.as_str()))
        .cloned()
        .collect()
}

/// The report-level byte-identity surface: every cell's cycle histograms
/// merged in sequence order, serialized exactly as `run_report.json`
/// serializes the `profile.cycle` object.
fn merged_cycle_json(outs: &[RunOutput]) -> String {
    let mut cycle = CycleProfile::default();
    for out in outs {
        cycle.absorb_aux(&prof_aux(out));
    }
    ProfileReport {
        wall: Vec::new(),
        speculation: None,
        cycle,
    }
    .to_json()
    .to_string()
}

fn run(cells: &[CellSpec], jobs: usize, sim_threads: usize) -> Vec<RunOutput> {
    run_batch_with(
        cells,
        &BatchOptions::new().jobs(jobs).sim_threads(sim_threads),
    )
    .into_iter()
    .map(|r| r.expect("cell must succeed"))
    .collect()
}

#[test]
fn cycle_profile_byte_identical_across_sim_threads() {
    let cells = grid();
    let serial = run(&cells, 1, 1);
    for out in &serial {
        assert_eq!(
            prof_aux(out).len(),
            PROF_AUX.len(),
            "every cell must record all cycle-domain profile series"
        );
    }
    for threads in [2usize, 4] {
        let sharded = run(&cells, 1, threads);
        for (i, (s, p)) in serial.iter().zip(sharded.iter()).enumerate() {
            assert_eq!(
                prof_aux(s),
                prof_aux(p),
                "cell {i} prof_* aux diverge at --sim-threads {threads}"
            );
        }
        assert_eq!(
            merged_cycle_json(&serial),
            merged_cycle_json(&sharded),
            "merged cycle profile diverges at --sim-threads {threads}"
        );
    }
}

#[test]
fn cycle_profile_byte_identical_across_jobs() {
    let cells = grid();
    let one = run(&cells, 1, 1);
    let four = run(&cells, 4, 1);
    for (i, (a, b)) in one.iter().zip(four.iter()).enumerate() {
        assert_eq!(
            prof_aux(a),
            prof_aux(b),
            "cell {i} prof_* aux diverge between --jobs 1 and --jobs 4"
        );
    }
    assert_eq!(
        merged_cycle_json(&one),
        merged_cycle_json(&four),
        "merged cycle profile diverges between --jobs 1 and --jobs 4"
    );
}

/// With profiling enabled, a sharded run must deposit speculation
/// telemetry and wall-clock spans into the process-wide accumulators —
/// the source of the report's `speculation` and `wall` sections.
#[test]
fn profiled_sharded_run_records_speculation_and_spans() {
    grit_prof::set_enabled(true);
    let cells =
        vec![CellSpec::new(App::Bfs, PolicyKind::GRIT, &exp()).with_cfg(SimConfig::with_gpus(4))];
    let _ = run(&cells, 1, 4);
    grit_prof::set_enabled(false);
    let spec = grit_prof::spec_stats();
    assert!(spec.rounds > 0, "sharded run must count optimistic rounds");
    assert!(
        spec.committed > 0,
        "sharded run must commit speculated events"
    );
    assert_eq!(spec.per_gpu_committed.len(), 4);
    assert!(
        spec.rollback_rate() >= 0.0 && spec.rollback_rate() <= 1.0,
        "rollback rate must be a fraction, got {}",
        spec.rollback_rate()
    );
    let totals = grit_prof::phase_totals();
    assert!(
        totals.iter().any(|t| t.count > 0),
        "profiled run must record at least one wall-clock span"
    );
}
