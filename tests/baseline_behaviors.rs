//! Per-baseline semantic contracts, asserted on full system runs: each
//! comparator must exhibit exactly the mechanism it models.

use grit::experiments::{run_cell, ExpConfig, PolicyKind};
use grit::prelude::*;
use grit_baselines::OraclePolicy;
use grit_workloads::WorkloadBuilder;

fn exp() -> ExpConfig {
    ExpConfig::quick()
}

#[test]
fn first_touch_never_migrates_a_page_twice() {
    for app in [App::Bfs, App::St, App::Gemm] {
        let out = run_cell(app, PolicyKind::FirstTouch, &exp());
        // One migration per page maximum (the first touch); capacity
        // evictions can re-home a page, adding at most one more.
        let pages = out.page_attrs.total_pages;
        let budget = pages + out.metrics.faults.evictions;
        assert!(
            out.metrics.faults.migrations <= budget,
            "{app}: {} migrations for {pages} pages (+{} evictions)",
            out.metrics.faults.migrations,
            out.metrics.faults.evictions
        );
        assert_eq!(
            out.metrics.faults.collapses, 0,
            "{app}: first-touch never collapses"
        );
    }
}

#[test]
fn gps_never_collapses_and_replicates_aggressively() {
    for app in [App::Bfs, App::Bs] {
        let out = run_cell(app, PolicyKind::Gps, &exp());
        assert_eq!(
            out.metrics.faults.collapses, 0,
            "{app}: GPS broadcasts, never collapses"
        );
        assert_eq!(
            out.metrics.faults.protection_faults, 0,
            "{app}: replicas stay writable"
        );
        assert!(
            out.metrics.faults.duplications > 0,
            "{app}: GPS must subscribe with replicas"
        );
    }
}

#[test]
fn griffin_dpc_migrates_between_epochs_not_on_faults() {
    let out = run_cell(App::St, PolicyKind::GriffinDpc, &exp());
    // Fault-path migrations are only first touches; page movement beyond
    // that comes from epoch directives, so total migrations exceed the
    // page count only through DPC's interval decisions.
    assert!(out.metrics.faults.migrations > 0);
    assert_eq!(out.metrics.faults.duplications, 0, "DPC never replicates");
    assert_eq!(out.metrics.faults.collapses, 0);
}

#[test]
fn ideal_never_moves_pages() {
    for app in App::TABLE2 {
        let out = run_cell(app, PolicyKind::Ideal, &exp());
        assert_eq!(out.metrics.faults.migrations, 0, "{app}");
        assert_eq!(out.metrics.faults.duplications, 0, "{app}");
        assert_eq!(out.metrics.faults.collapses, 0, "{app}");
        assert_eq!(
            out.metrics.remote_accesses, 0,
            "{app}: ideal reads are local"
        );
        assert_eq!(
            out.metrics.faults.evictions, 0,
            "{app}: ideal has no pressure"
        );
    }
}

#[test]
fn oracle_beats_every_uniform_scheme_on_static_apps() {
    // On workloads whose page behaviour never changes (GEMM: inputs stay
    // read-shared, outputs stay private), perfect offline classification
    // must dominate every uniform choice.
    let profile = run_cell(App::Gemm, PolicyKind::Static(Scheme::OnTouch), &exp());
    let oracle_policy = OraclePolicy::from_profile(&profile.attrs);
    let cfg = SimConfig::default();
    let e = exp();
    let w = WorkloadBuilder::new(App::Gemm)
        .scale(e.scale)
        .intensity(e.intensity)
        .seed(e.seed)
        .build();
    let oracle = Simulation::try_new(cfg, w, Box::new(oracle_policy))
        .unwrap()
        .try_run()
        .unwrap()
        .metrics
        .total_cycles;
    for scheme in Scheme::ALL {
        let uniform = run_cell(App::Gemm, PolicyKind::Static(scheme), &exp()).metrics.total_cycles;
        assert!(
            oracle <= uniform,
            "oracle {oracle} must beat uniform {scheme} {uniform}"
        );
    }
}

#[test]
fn transfw_speeds_up_fault_bound_runs() {
    use grit_baselines::apply_transfw;
    let base = run_cell(App::Fir, PolicyKind::Static(Scheme::OnTouch), &exp())
        .metrics
        .total_cycles;
    let mut cfg = SimConfig::default();
    apply_transfw(&mut cfg);
    let accelerated = grit::experiments::run_cell_with(
        App::Fir,
        PolicyKind::Static(Scheme::OnTouch),
        &exp(),
        cfg,
        None,
    )
    .metrics
    .total_cycles;
    assert!(
        accelerated < base,
        "Trans-FW must accelerate the fault-bound FIR: {accelerated} vs {base}"
    );
}

#[test]
fn acud_speeds_up_migration_heavy_runs() {
    use grit_baselines::apply_acud;
    let base = run_cell(App::Bs, PolicyKind::Static(Scheme::OnTouch), &exp())
        .metrics
        .total_cycles;
    let mut cfg = SimConfig::default();
    apply_acud(&mut cfg);
    let accelerated = grit::experiments::run_cell_with(
        App::Bs,
        PolicyKind::Static(Scheme::OnTouch),
        &exp(),
        cfg,
        None,
    )
    .metrics
    .total_cycles;
    assert!(
        accelerated < base,
        "ACUD must accelerate ping-pong-heavy BS: {accelerated} vs {base}"
    );
}

#[test]
fn prefetcher_is_neutral_or_better_for_every_policy() {
    use grit_baselines::TreePrefetcher;
    for policy in [PolicyKind::Static(Scheme::OnTouch), PolicyKind::GRIT] {
        let cfg = SimConfig::default();
        let e = exp();
        let build = || {
            WorkloadBuilder::new(App::Sc)
                .scale(e.scale)
                .intensity(e.intensity)
                .seed(e.seed)
                .build()
        };
        let w = build();
        let p = policy.build(&cfg, w.footprint_pages);
        let plain = Simulation::try_new(cfg.clone(), w, p).unwrap().try_run().unwrap().metrics;
        let w = build();
        let p = policy.build(&cfg, w.footprint_pages);
        let sim = SimulationBuilder::new(cfg.clone(), w, p)
            .prefetcher(Box::new(TreePrefetcher::new()))
            .build()
            .unwrap();
        let fetched = sim.try_run().unwrap().metrics;
        assert!(
            fetched.faults.local_faults < plain.faults.local_faults,
            "{}: prefetching must absorb cold faults",
            policy.label()
        );
    }
}
